"""Build script: optionally mypyc-compile the hot-path kernel modules.

The default build (``pip install .``) is pure Python — no compiler, no build
dependencies beyond setuptools.  Setting ``REPRO_COMPILE=1`` compiles the
kernel modules of :mod:`repro._speedups` with mypyc::

    pip install 'repro[compiled]'          # pulls in mypy (which ships mypyc)
    REPRO_COMPILE=1 pip install -e .       # or: python setup.py build_ext --inplace

The kernels are authored as ``_tsops_py.py`` / ``_varint_py.py`` and the
runtime selector in ``repro/_speedups/__init__.py`` prefers the compiled
``_tsops_c`` / ``_varint_c`` modules when they exist.  The build therefore
**copies** each ``*_py`` source to its ``*_c`` name and compiles the copy:
the pure-Python fallback is never shadowed, both cores stay importable in
one environment, and ``REPRO_PURE_PYTHON=1`` always wins at runtime.

If mypyc is requested but unavailable (or fails), the build degrades to the
pure-Python package with a warning — a missing compiler must never make the
library uninstallable.
"""

import os
import shutil
import sys

from setuptools import find_packages, setup

KERNELS = ["_tsops", "_varint"]
SPEEDUPS_DIR = os.path.join("src", "repro", "_speedups")


def _compiled_modules():
    if os.environ.get("REPRO_COMPILE", "") in ("", "0"):
        return {}
    try:
        from mypyc.build import mypycify
    except ImportError:
        sys.stderr.write(
            "REPRO_COMPILE=1 but mypyc is not installed; building the "
            "pure-Python package (install the 'compiled' extra first).\n"
        )
        return {}
    sources = []
    for kernel in KERNELS:
        src = os.path.join(SPEEDUPS_DIR, f"{kernel}_py.py")
        dst = os.path.join(SPEEDUPS_DIR, f"{kernel}_c.py")
        shutil.copyfile(src, dst)
        sources.append(dst)
    try:
        return {"ext_modules": mypycify(sources, opt_level="3")}
    except Exception as exc:  # pragma: no cover - compiler environment issues
        sys.stderr.write(f"mypyc compilation failed ({exc}); building pure.\n")
        return {}


# The explicit package map keeps ``build_ext --inplace`` honest about the
# src layout: the compiled extensions must land in ``src/repro/_speedups``
# (where the runtime selector looks), not a phantom ``./repro`` tree.
setup(
    packages=find_packages("src"),
    package_dir={"": "src"},
    **_compiled_modules(),
)
