"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so the package can be installed in editable mode on machines whose
setuptools/wheel combination predates PEP 660 support (legacy
``pip install -e . --no-use-pep517`` path).
"""

from setuptools import setup

setup()
