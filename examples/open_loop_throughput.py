"""Open-loop traffic: Poisson vs bursty arrivals on both architectures.

Drives the Figure 5 system with open-loop client traffic — arrivals at
simulated timestamps drawn from an arrival process, independent of the
system's progress — and prints the unified metrics pipeline: throughput
over time, apply-latency percentiles and per-replica queue depths.

Run with::

    PYTHONPATH=src python examples/open_loop_throughput.py
"""

from __future__ import annotations

from repro import ShareGraph, build_cluster, figure5_placement
from repro.clientserver import ClientServerCluster
from repro.sim import (
    UniformDelay,
    bursty_workload,
    poisson_workload,
    render_latency_summary,
    run_open_loop,
)


def describe(title: str, result) -> None:
    print(f"--- {title} ---")
    print(result.summary())
    print(render_latency_summary("apply latency", result.apply_latency))
    print("throughput (applies per 20 time units):")
    for bucket_start, count in result.throughput:
        print(f"  t={bucket_start:6.1f}  {'#' * count}{'' if count else '.'} {count}")
    peak = max(result.max_pending.values(), default=0)
    print(f"peak pending-buffer depth across replicas: {peak}")
    print()


def main() -> None:
    graph = ShareGraph.from_placement(figure5_placement())
    print("Open-loop workloads on the Figure 5 share graph")
    print()

    poisson = poisson_workload(graph, rate=1.5, duration=120.0, seed=21)
    bursty = bursty_workload(
        graph,
        burst_rate=6.0,
        idle_rate=0.3,
        burst_length=20.0,
        idle_length=20.0,
        duration=120.0,
        seed=21,
    )

    all_consistent = True
    for workload in (poisson, bursty):
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=21)
        result = run_open_loop(
            cluster, workload, queue_sample_interval=5.0, throughput_bucket=20.0
        )
        describe(f"peer-to-peer, {workload.name} arrivals", result)
        all_consistent &= result.consistent

    # The same bursty schedule through the client-server architecture.
    cs_cluster = ClientServerCluster.with_colocated_clients(
        graph, delay_model=UniformDelay(1, 10), seed=21
    )
    result = run_open_loop(
        cs_cluster, bursty, queue_sample_interval=5.0, throughput_bucket=20.0
    )
    describe("client-server, bursty arrivals", result)
    all_consistent &= result.consistent

    print("All three runs drained and passed the consistency checker."
          if all_consistent else "CONSISTENCY VIOLATION — see above")


if __name__ == "__main__":
    main()
