"""Chaos engineering on the simulator: crashes, partitions, lossy channels.

Demonstrates the fault-injection subsystem (``repro.sim.faults``) end to
end on the Figure 5 system:

1. a **crash/restart** — replica 3 goes down mid-run, loses every delivery
   addressed to it, then restores its durable snapshot and catches up via
   the transport's anti-entropy resync;
2. a **partition/heal** — the replicas split into two islands; cross-island
   updates wait out the partition (staleness) and fly on heal;
3. a **lossy, duplicating network** — every channel drops and duplicates
   messages, and the transport's ack + resend reliability layer plus the
   replicas' duplicate suppression keep delivery exactly-once at the
   protocol layer.

Causal consistency (checked from the traces, independent of the protocol
metadata) holds through all of it.

Run with::

    PYTHONPATH=src python examples/chaos_recovery.py
"""

from __future__ import annotations

from repro import ShareGraph, build_cluster, figure5_placement
from repro.sim import (
    DuplicatingDelay,
    FaultInjector,
    FaultSchedule,
    LossyDelay,
    ReliabilityConfig,
    UniformDelay,
    crash,
    heal,
    latency_spike,
    partition,
    poisson_workload,
    restart,
    run_open_loop,
)


def timeline(host) -> None:
    print("fault timeline:")
    for record in host.metrics.fault_timeline:
        print(f"  t={record.time:6.1f}  {record.kind:<9} {record.detail}")


def crash_and_recover(graph) -> bool:
    print("--- Crash and recovery (replica 3 down from t=30 to t=70) ---")
    cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=42)
    injector = FaultInjector(cluster)
    injector.install(FaultSchedule("crash-3", (crash(30.0, 3), restart(70.0, 3))))

    workload = poisson_workload(graph, rate=1.5, duration=120.0, seed=42)
    result = run_open_loop(cluster, workload)
    timeline(cluster)

    metrics = cluster.metrics
    stats = cluster.network.stats
    availability = metrics.availability(result.makespan, graph.replica_ids)
    print(f"operations rejected while down: {metrics.rejected_operations}")
    print(f"deliveries lost to the crash:   {stats.messages_lost_to_crash}")
    print(f"updates re-sent by the resync:  {stats.retransmissions}")
    print(f"recovery latency (restart -> caught up): "
          f"{metrics.recovery_latencies[0]:.1f} time units")
    print("availability: " + ", ".join(
        f"r{rid}={availability[rid]:.2f}" for rid in sorted(availability)))
    print(f"consistency after recovery: "
          f"{'OK' if result.consistent else 'VIOLATED'}")
    print()
    return result.consistent


def partition_and_heal(graph) -> bool:
    print("--- Partition and heal ({1,2} | {3,4} from t=40 to t=90) ---")
    cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=7)
    injector = FaultInjector(cluster)
    injector.install(FaultSchedule("split", (
        partition(40.0, {1, 2}, {3, 4}),
        heal(90.0),
        latency_spike(100.0, 15.0, 5.0),   # an aftershock: 5x latency
    )))

    workload = poisson_workload(graph, rate=1.5, duration=120.0, seed=7)
    result = run_open_loop(cluster, workload)
    timeline(cluster)

    print(f"peak staleness (apply latency max): {result.apply_latency.max:.1f} "
          f"(cross-island updates waited out the 50-unit partition)")
    print(f"apply latency p50/p99: {result.apply_latency.p50:.1f} / "
          f"{result.apply_latency.p99:.1f}")
    print(f"consistency through the partition: "
          f"{'OK' if result.consistent else 'VIOLATED'}")
    print()
    return result.consistent


def lossy_network(graph) -> bool:
    print("--- Lossy + duplicating channels (30% drop, 20% duplicate) ---")
    model = DuplicatingDelay(
        inner=LossyDelay(inner=UniformDelay(1, 10), drop_probability=0.3),
        duplicate_probability=0.2,
    )
    cluster = build_cluster(graph, delay_model=model, seed=11)
    FaultInjector(
        cluster, reliability=ReliabilityConfig(resend_timeout=20.0, max_retries=6)
    )

    workload = poisson_workload(graph, rate=1.5, duration=120.0, seed=11)
    result = run_open_loop(cluster, workload)

    stats = cluster.network.stats
    suppressed = sum(r.duplicates_ignored for r in cluster.replicas.values())
    double_applied = sum(
        len(r.applied) - len({u.uid for u in r.applied})
        for r in cluster.replicas.values()
    )
    print(f"messages sent {stats.messages_sent}, dropped {stats.messages_dropped}, "
          f"duplicated {stats.messages_duplicated}, "
          f"retransmitted {stats.retransmissions}")
    print(f"duplicate deliveries suppressed at the protocol layer: {suppressed}")
    print(f"updates applied twice anywhere: {double_applied} (exactly-once holds)")
    print(f"consistency over the lossy network: "
          f"{'OK' if result.consistent else 'VIOLATED'}")
    print()
    return result.consistent and double_applied == 0


def main() -> None:
    graph = ShareGraph.from_placement(figure5_placement())
    print("Chaos recovery on the Figure 5 share graph")
    print()
    ok = crash_and_recover(graph)
    ok &= partition_and_heal(graph)
    ok &= lossy_network(graph)
    print("All three chaos scenarios passed the consistency checker."
          if ok else "CONSISTENCY VIOLATION — see above")


if __name__ == "__main__":
    main()
