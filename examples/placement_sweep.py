"""Placement sweep: policies × measured topologies, scored and simulated.

Walks the whole topology/placement layer end to end:

1. **static sweep** — for every bundled topology
   (:func:`repro.topo.catalog`) and every placement policy, map 10
   replicas and 16 registers onto the topology, and score the emitted
   share graph *without running anything*: mean counters per timestamp
   (|E_i|), algorithm bytes against the Theorem 15 closed-form bound
   (closed forms exist only for trees, cycles and cliques — general
   graphs report ``nan``, as in E16), shortest-path edge latencies, and
   the worst-case region-kill survival score;

2. **dynamic run** — on the GEANT-like map, drive the same seeded
   Poisson workload through the discrete-event simulator for the
   ``random`` and ``availability-aware`` placements, with every channel
   delayed by the topology's shortest-path latency
   (``result.delay_model()``).  The availability-aware placement should
   win on *both* measured timestamp bytes per message and apply p99 —
   the gate `benchmarks/bench_placement.py` enforces.

Run with::

    PYTHONPATH=src python examples/placement_sweep.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.placement import PlacementSpec, placement_policies, score_placement
from repro.sim import Cluster, poisson_workload, run_open_loop
from repro.topo import catalog, geant_like


def static_sweep() -> None:
    rows = []
    for topo_name in sorted(catalog()):
        topology = catalog()[topo_name]()
        spec = PlacementSpec.make(
            topology, num_replicas=min(10, topology.num_nodes),
            num_registers=16, replication_factor=2,
        )
        for policy_name, policy in placement_policies().items():
            score = score_placement(policy.place(spec, seed=21))
            rows.append((
                topo_name,
                policy_name,
                score.share_edges,
                f"{score.counters_mean:.1f}",
                f"{score.algorithm_bytes_mean:.1f}",
                ("-" if score.bound_bytes_mean is None
                 else f"{score.bound_bytes_mean:.1f}"),
                f"{score.edge_latency_mean:.1f}",
                f"{score.edge_latency_p99:.1f}",
                f"{score.region_survival_min:.2f}",
            ))
    print(render_table(
        ["topology", "policy", "edges", "counters", "algB",
         "boundB", "lat mean", "lat p99", "survival"],
        rows,
    ))


def dynamic_run() -> None:
    topology = geant_like()
    spec = PlacementSpec.make(
        topology, num_replicas=10, num_registers=16,
        replication_factor=2, capacity=6,
    )
    print(f"\nGEANT-like dynamic run ({topology.describe()}):")
    for policy_name in ("random", "availability-aware"):
        result = placement_policies()[policy_name].place(spec, seed=21)
        graph = result.share_graph
        workload = poisson_workload(
            graph, rate=4.0, duration=40.0, write_fraction=0.5, seed=21
        )
        host = Cluster(
            graph,
            delay_model=result.delay_model(jitter=0.1),
            seed=21,
            wire_accounting=True,
        )
        run = run_open_loop(host, workload)
        stats = host.network.stats
        bytes_per_msg = (
            stats.timestamp_bytes_sent / stats.messages_sent
            if stats.messages_sent else 0.0
        )
        print(f"  {policy_name:>18}: {stats.messages_sent} msgs, "
              f"{bytes_per_msg:.1f} timestamp B/msg, "
              f"apply p99 {run.apply_latency.p99:.1f} ms, "
              f"consistent={run.consistent}")


def main() -> None:
    static_sweep()
    dynamic_run()


if __name__ == "__main__":
    main()
