"""Quickstart: a live multi-process causal store on localhost.

Boots a real 8-replica cluster co-hosted on 2 multi-tenant nodes — four
replicas per OS process, channels between co-hosted replicas delivered
in process, inter-node traffic multiplexed onto one TCP stream per node
pair carrying the binary wire format — and walks the full lifecycle the
test suite exercises:

1. **open-loop load** through the live client (writes multicast over the
   channels, reads served locally);
2. **chaos**: SIGKILL the node hosting replica 2 mid-run (taking all its
   tenants down), watch operations addressed to them get rejected,
   restart it from its write-ahead log (checkpoint + tail replay) and
   let the SYNC resync catch it up;
3. **verification**: drain the cluster, collect every node's event trace,
   and run the *same* consistency checker the simulator uses over the live
   execution — the simulator is the executable spec, the checker is the
   shared oracle.

Run with::

    PYTHONPATH=src python examples/live_cluster.py

(The ``__main__`` guard is required: nodes are spawned processes, and the
spawn start method re-imports this module in each child.)
"""

from __future__ import annotations

import tempfile

from repro.core.share_graph import ShareGraph
from repro.net import LiveCluster
from repro.net.client import OpenLoopClient
from repro.sim.topologies import pairwise_clique_placement
from repro.sim.workloads import single_writer_workload


def main() -> None:
    graph = ShareGraph.from_placement(pairwise_clique_placement(8))
    print("share graph:", graph.describe())

    with tempfile.TemporaryDirectory() as durable_dir:
        # nodes=2 co-hosts the 8 replicas four-per-process; kill/restart
        # below address the *node* hosting replica 2.
        with LiveCluster(graph, nodes=2, durable_dir=durable_dir) as cluster:
            # ----------------------------------------------------------
            # Phase 1: healthy open-loop traffic
            # ----------------------------------------------------------
            workload = single_writer_workload(
                graph, rate=4.0, duration=40.0, seed=1
            )
            healthy = OpenLoopClient(cluster).run(workload, time_scale=0.001)
            print(f"phase 1: {healthy.completed}/{healthy.submitted} ops "
                  f"completed, {healthy.rejected} rejected")

            # ----------------------------------------------------------
            # Phase 2: SIGKILL replica 2, run degraded, restart, recover
            # ----------------------------------------------------------
            cluster.kill(2)
            print("killed the node hosting replica 2 "
                  "(SIGKILL — no flush, no goodbye)")
            degraded = OpenLoopClient(cluster).run(
                single_writer_workload(graph, rate=4.0, duration=40.0, seed=2),
                time_scale=0.001,
            )
            print(f"phase 2: {degraded.completed} completed, "
                  f"{degraded.rejected} rejected at the dead node's tenants")

            cluster.restart(2)
            print("restarted the node from its write-ahead log")
            recovered = OpenLoopClient(cluster).run(
                single_writer_workload(graph, rate=4.0, duration=40.0, seed=3),
                time_scale=0.001,
            )
            print(f"phase 3: {recovered.completed}/{recovered.submitted} "
                  "ops completed after recovery")

            # ----------------------------------------------------------
            # Phase 3: drain and verify against the shared oracle
            # ----------------------------------------------------------
            cluster.drain(timeout=60.0)
            result = cluster.collect(
                operation_latencies=(healthy.latencies + degraded.latencies
                                     + recovered.latencies),
                rejected_operations=degraded.rejected,
            )

    report = result.check_consistency()
    latency = result.operation_latency_summary()
    print()
    print(f"causally consistent: {report.is_causally_consistent}")
    print(f"remote applies:      {result.metrics.applies}")
    print(f"restarts recovered:  {result.metrics.restarts}")
    print(f"op latency p50/p99:  {latency.p50 * 1000:.2f} / "
          f"{latency.p99 * 1000:.2f} ms")
    print(f"open connections:    {result.open_connections()} "
          f"(vs {len(graph.edges)} share-graph channels)")
    diverged = {
        register: values
        for register, values in result.final_state().items()
        if len(set(values.values())) > 1
    }
    print(f"diverged registers:  {diverged or 'none — resync converged'}")


if __name__ == "__main__":
    main()
