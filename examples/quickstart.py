#!/usr/bin/env python3
"""Quickstart: a partially replicated, causally consistent shared memory.

Builds the paper's Figure 5 system (four replicas, partially overlapping
register sets), runs the edge-indexed timestamp algorithm over a simulated
asynchronous network, shows the timestamp graphs (the per-replica metadata),
performs a few causally related writes, and verifies with the independent
checker that the execution is causally consistent.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ShareGraph, build_cluster, figure5_placement
from repro.analysis import edge_label, render_table
from repro.core.timestamp_graph import build_all_timestamp_graphs
from repro.sim.delays import UniformDelay


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Describe the placement: which replica stores which registers.
    # ------------------------------------------------------------------
    placement = figure5_placement()
    graph = ShareGraph.from_placement(placement)
    print("Register placement (the paper's Figure 5 example)")
    print(placement.describe())
    print()
    print("Derived share graph")
    print(graph.describe())
    print()

    # ------------------------------------------------------------------
    # 2. The metadata each replica must keep: its timestamp graph E_i.
    # ------------------------------------------------------------------
    tgraphs = build_all_timestamp_graphs(graph)
    rows = [
        (rid, tg.num_counters, ", ".join(edge_label(e) for e in sorted(tg.edges)))
        for rid, tg in sorted(tgraphs.items())
    ]
    print("Timestamp graphs (one integer counter per edge)")
    print(render_table(["replica", "counters", "tracked edges"], rows))
    print()
    print("Note e_43 is tracked by replica 1 while e_34 is not — exactly the")
    print("asymmetry the paper highlights in Figure 5(b).")
    print()

    # ------------------------------------------------------------------
    # 3. Run the protocol over an asynchronous (non-FIFO) network.
    # ------------------------------------------------------------------
    cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=7)

    # A small causal chain: replica 4 posts, replica 1 reacts, replica 2 relays.
    cluster.write(4, "w", "photo uploaded by replica 4")
    cluster.run_until_quiescent()
    print("replica 1 reads w:", cluster.read(1, "w"))

    cluster.write(1, "y", "replica 1 comments on the photo")
    cluster.run_until_quiescent()
    print("replica 2 reads y:", cluster.read(2, "y"))

    cluster.write(2, "x", "replica 2 shares the comment")
    cluster.run_until_quiescent()
    print("replica 3 reads x:", cluster.read(3, "x"))
    print()

    # ------------------------------------------------------------------
    # 4. Verify causal consistency with the independent checker.
    # ------------------------------------------------------------------
    report = cluster.check_consistency()
    print("Checker verdict:", report.summary())
    assert report.is_causally_consistent
    print()
    print("Messages sent:", cluster.network.stats.messages_sent)
    print("Metadata counters shipped:", cluster.total_metadata_counters_sent())
    print("Per-replica metadata (counters):", cluster.metadata_sizes())


if __name__ == "__main__":
    main()
