#!/usr/bin/env python3
"""Client–server geo-store: clients roaming across replicas (Section 6 / Appendix E).

A storage service is deployed as four partially replicated servers arranged in
a chain (the paper's Figure 3 placement).  Mobile clients attach to *several*
servers — a client may write at one datacenter and read at another — which is
exactly the situation the augmented share graph models: the client itself
becomes a channel that propagates causal dependencies between servers that
share no registers.

The example shows:

* how the augmented timestamp graphs grow compared to the peer-to-peer
  deployment (servers must track loop edges created by client mobility),
* the per-client timestamp sizes,
* a roaming session whose reads always respect the client's own writes and
  their causal dependencies,
* and the checker's verdict over the full execution.

Run with::

    python examples/geo_store_client_server.py
"""

from __future__ import annotations

from repro import ShareGraph, figure3_placement
from repro.analysis import edge_label, render_table
from repro.clientserver import (
    AugmentedShareGraph,
    ClientAssignment,
    ClientServerCluster,
    build_all_augmented_timestamp_edges,
)
from repro.core.timestamp_graph import timestamp_edges
from repro.sim.delays import UniformDelay


def main() -> None:
    placement = figure3_placement()
    graph = ShareGraph.from_placement(placement)

    # Three clients: a roaming user touching the two end datacenters, a
    # regional user, and a user pinned between the first two datacenters.
    clients = ClientAssignment.from_dict(
        {"roaming": {1, 4}, "regional": {2, 3}, "local": {1, 2}}
    )
    augmented = AugmentedShareGraph(graph, clients)

    # ------------------------------------------------------------------
    # Metadata: peer-to-peer E_i vs client-server Ê_i.
    # ------------------------------------------------------------------
    augmented_edges = build_all_augmented_timestamp_edges(augmented)
    rows = []
    for rid in graph.replica_ids:
        p2p = timestamp_edges(graph, rid)
        aug = augmented_edges[rid]
        rows.append(
            (
                rid,
                len(p2p),
                len(aug),
                ", ".join(edge_label(e) for e in sorted(aug - p2p)),
            )
        )
    print("Server metadata: peer-to-peer vs client-server")
    print(render_table(
        ["server", "|E_i| peer-to-peer", "|Ê_i| with clients", "extra edges due to clients"],
        rows,
    ))
    print()
    print("The chain topology needs no loop tracking on its own; the roaming")
    print("client closes a cycle through all four servers, so every server now")
    print("tracks the whole chain's edges.")
    print()

    # ------------------------------------------------------------------
    # A roaming session.
    # ------------------------------------------------------------------
    cluster = ClientServerCluster(graph, clients, delay_model=UniformDelay(1, 8), seed=11)

    print("Roaming client session:")
    cluster.client_write("roaming", "x", "cart: [book]", replica_id=1)
    print("  wrote shopping cart at DC 1")
    cluster.client_write("roaming", "z", "order placed for cart", replica_id=4)
    print("  placed the order at DC 4 (causally after the cart write)")

    cluster.client_write("regional", "y", "warehouse stock updated", replica_id=2)
    value = cluster.client_read("regional", "z", replica_id=3)
    print("  regional client reads the order state at DC 3:", value)

    cluster.client_write("local", "x", "cart: [book, lamp]", replica_id=2)
    cart_seen = cluster.client_read("local", "x", replica_id=1)
    print("  local client reads its own cart update back at DC 1:", cart_seen)
    assert cart_seen == "cart: [book, lamp]"

    for round_index in range(4):
        cluster.client_write("roaming", "x", f"cart v{round_index}", replica_id=1)
        cluster.client_write("roaming", "z", f"order v{round_index}", replica_id=4)
        cluster.client_read("regional", "y", replica_id=2)
        cluster.client_write("regional", "y", f"stock v{round_index}", replica_id=3)

    cluster.run_until_quiescent()
    report = cluster.check_consistency()
    print()
    print("Checker verdict:", report.summary())
    assert report.is_causally_consistent

    print()
    print("Client timestamp sizes (counters):", cluster.client_metadata_sizes())
    print("Server timestamp sizes (counters):", cluster.server_metadata_sizes())
    print("Inter-server messages:", cluster.network.stats.messages_sent)


if __name__ == "__main__":
    main()
