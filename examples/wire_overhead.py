"""Bytes on the wire: codecs, per-channel delta frames and batching windows.

Walks the wire-format layer end to end on the Figure 5 system:

1. one update message serialized by hand — the header/timestamp/payload
   byte split, and the exact ``encode ∘ decode = id`` round trip;
2. the same workload with and without the batching transport — fewer,
   larger envelopes, per-channel delta frames, and the per-channel byte
   table from the byte-accurate network statistics;
3. the E16 comparison: measured timestamp bytes vs. the paper's
   counter-based metadata measure vs. the closed-form lower bound.

Run with::

    PYTHONPATH=src python examples/wire_overhead.py
"""

from __future__ import annotations

from repro import ShareGraph, figure5_placement
from repro.analysis.experiments import (
    exp_wire_overhead,
    render_wire_channels,
    render_wire_overhead,
)
from repro.core.protocol import UpdateMessage
from repro.sim import BatchingConfig, UniformDelay
from repro.sim.cluster import Cluster
from repro.sim.topologies import ring_placement
from repro.sim.workloads import run_workload, uniform_workload


def one_message_anatomy() -> None:
    print("=== Anatomy of one update message on the wire ===")
    graph = ShareGraph.from_placement(figure5_placement())
    cluster = Cluster(graph, seed=1)
    messages = cluster.replica(4).write("z", "hello-wire")
    message = messages[0]
    data = message.to_wire()
    sizes = message.encoded_size()
    print(f"message: {message}")
    print(f"encoded: {len(data)} bytes = {sizes.header_bytes} header "
          f"+ {sizes.timestamp_bytes} timestamp + {sizes.payload_bytes} payload")
    decoded = UpdateMessage.from_wire(data)
    assert decoded == message
    print("round trip: decode(encode(message)) == message")
    print()


def batching_and_delta_frames() -> None:
    print("=== Batching windows and per-channel delta frames (ring6) ===")
    graph = ShareGraph.from_placement(ring_placement(6))
    workload = uniform_workload(graph, 150, seed=21)

    plain = Cluster(graph, delay_model=UniformDelay(1, 10), seed=21,
                    wire_accounting=True)
    plain_result = run_workload(plain, workload)
    batched = Cluster(graph, delay_model=UniformDelay(1, 10), seed=21,
                      batching=BatchingConfig(max_messages=8, max_delay=4.0))
    batched_result = run_workload(batched, workload)

    for name, cluster, result in (
        ("unbatched", plain, plain_result),
        ("batched", batched, batched_result),
    ):
        stats = cluster.network.stats
        print(f"{name:>10}: {stats.messages_sent} msgs in "
              f"{stats.batches_sent or stats.messages_sent} envelopes, "
              f"{stats.bytes_sent} bytes "
              f"({stats.header_bytes_sent} hdr / {stats.timestamp_bytes_sent} ts / "
              f"{stats.payload_bytes_sent} payload), "
              f"delta frames {stats.delta_frames_sent}, "
              f"consistency {'OK' if result.consistent else 'VIOLATED'}")
    saved = 1 - (batched.network.stats.bytes_sent / plain.network.stats.bytes_sent)
    delta_saved = batched.network.stats.timestamp_delta_savings
    print(f"batching + delta encoding saved {100 * saved:.0f}% of total bytes "
          f"({100 * delta_saved:.0f}% of timestamp bytes vs full encoding)")
    print()
    print("per-channel bytes (batched run):")
    print(render_wire_channels(batched.network.stats))
    print()


def e16_table() -> None:
    print("=== E16: topology x protocol family x batching window ===")
    rows = exp_wire_overhead(ops=100, windows=(None, (8, 4.0)))
    print(render_wire_overhead(rows))
    assert all(row.consistent for row in rows)
    print()
    print("Reading the table: 'ts B' is measured timestamp bytes (delta frames")
    print("on in windowed cells); 'ctrs sent' is the paper's counter measure")
    print("(E7); 'bound B/msg' converts the closed-form Theorem-15 lower bound")
    print("to bytes per message where one applies (trees, cycles, cliques).")


def main() -> None:
    one_message_anatomy()
    batching_and_delta_frames()
    e16_table()
    print()
    print("All wire-layer runs passed the consistency checker.")


if __name__ == "__main__":
    main()
