#!/usr/bin/env python3
"""A geo-partitioned social network on causally consistent partial replication.

This is the classic motivating scenario for causal consistency (the "remove
boss from ACL, then post" example) played out on a *partially replicated*
deployment: three datacenters each store only their local users' data plus a
couple of globally replicated control registers.

The example shows:

* the storage saving of partial replication versus full replication,
* the metadata (timestamp) each datacenter must maintain,
* that the causally dependent pair (ACL change ↪ post) is never observed out
  of order, even under heavy message reordering,
* and that the independent checker agrees the whole execution is causally
  consistent.

Run with::

    python examples/social_network.py
"""

from __future__ import annotations

from repro import ShareGraph, build_cluster
from repro.analysis import render_table
from repro.core.registers import RegisterPlacement
from repro.sim.delays import UniformDelay
from repro.sim.metrics import edge_indexed_profile, full_replication_profile


def build_placement() -> RegisterPlacement:
    """Three datacenters; walls are regional, the ACL and feed index are global.

    * DC 1 (eu) hosts Alice's wall and profile.
    * DC 2 (us) hosts Bob's (the boss's) wall and profile.
    * DC 3 (ap) hosts Carol's wall and profile.
    * ``acl_alice`` and ``feed_index`` are replicated everywhere.
    * Neighbouring regions additionally share a "regional timeline".
    """
    return RegisterPlacement.from_dict(
        {
            1: {"wall_alice", "profile_alice", "timeline_eu_us", "acl_alice", "feed_index"},
            2: {"wall_bob", "profile_bob", "timeline_eu_us", "timeline_us_ap", "acl_alice", "feed_index"},
            3: {"wall_carol", "profile_carol", "timeline_us_ap", "acl_alice", "feed_index"},
        }
    )


def main() -> None:
    placement = build_placement()
    graph = ShareGraph.from_placement(placement)

    print("Storage and metadata: partial replication vs full replication")
    partial = edge_indexed_profile(graph)
    full = full_replication_profile(graph)
    rows = [
        (
            partial.protocol,
            partial.total_storage,
            f"{partial.mean_counters:.1f}",
            partial.max_counters,
        ),
        (
            full.protocol,
            full.total_storage,
            f"{full.mean_counters:.1f}",
            full.max_counters,
        ),
    ]
    print(render_table(["scheme", "register copies", "mean counters", "max counters"], rows))
    print()

    cluster = build_cluster(graph, delay_model=UniformDelay(1, 25), seed=42)

    # ------------------------------------------------------------------
    # The anomaly causal consistency exists to prevent:
    # Alice removes her boss from the ACL, *then* posts a complaint.
    # Whoever sees the post must already have seen the ACL change.
    # ------------------------------------------------------------------
    print("Scenario: Alice removes her boss from the ACL, then posts.")
    cluster.write(1, "acl_alice", {"friends": ["carol"], "blocked": ["bob"]})
    cluster.write(1, "wall_alice", "My boss is the worst!  (visible to friends only)")
    cluster.write(1, "feed_index", {"latest": "wall_alice"})

    # Meanwhile the other datacenters generate unrelated traffic.
    cluster.write(2, "wall_bob", "Quarterly numbers look great.")
    cluster.write(3, "wall_carol", "Holiday photos!")
    cluster.write(2, "timeline_us_ap", "bob+carol shared timeline entry")

    cluster.run_until_quiescent()

    # Every datacenter that stores the ACL sees the blocked list before (or
    # together with) the feed index entry that references Alice's post.
    acl_at_dc2 = cluster.read(2, "acl_alice")
    feed_at_dc2 = cluster.read(2, "feed_index")
    print("DC 2 (boss's datacenter) sees ACL:", acl_at_dc2)
    print("DC 2 sees feed index:", feed_at_dc2)
    assert acl_at_dc2 is not None and "bob" in acl_at_dc2["blocked"]
    print("=> the ACL change is visible wherever the post announcement is visible")
    print()

    # A longer causally chained conversation across regions.
    cluster.write(3, "acl_alice", {"friends": ["carol", "dave"], "blocked": ["bob"]})
    cluster.write(3, "timeline_us_ap", "carol comments on alice's situation")
    cluster.run_until_quiescent()
    cluster.write(2, "timeline_eu_us", "bob (unaware) posts to the eu/us timeline")
    cluster.run_until_quiescent()

    report = cluster.check_consistency()
    print("Checker verdict:", report.summary())
    assert report.is_causally_consistent

    print()
    print("Network traffic:", cluster.network.stats.messages_sent, "messages,",
          cluster.total_metadata_counters_sent(), "metadata counters shipped")
    print("Per-datacenter metadata (counters):", cluster.metadata_sizes())


if __name__ == "__main__":
    main()
