"""Closed-loop adaptive reconfiguration on a drifting hotspot.

Demonstrates the ``repro.adapt`` controller end to end on the GEANT-like
continental topology:

1. a **drifting hotspot** — the hot writer set rotates across regions
   every quarter of the run, so any *static* placement is wrong for most
   of it;
2. the **sense → plan → act loop** — an :class:`AdaptiveController`
   attached to the running cluster samples mid-run signals (hot-region
   write share, timestamp bytes per message, apply latency), arms
   through hysteresis, and installs bounded placement diffs as ordinary
   reconfiguration schedules — plus the one-shot compression lever when
   timestamp bytes per message stay above budget;
3. the **same workload without the controller** first, as the static
   baseline the adaptive run is judged against;
4. the **per-epoch bytes-vs-bound table** — every configuration the
   controller installs still respects its own closed-form worst-sender
   counter bound (the table ``tools/trace_report.py --metrics`` prints).

Run with::

    PYTHONPATH=src python examples/adaptive_controller.py
"""

from __future__ import annotations

from repro.adapt import AdaptiveController, ControllerConfig
from repro.analysis.experiments import _home_map, drifting_writer_groups
from repro.obs import MetricsRegistry, epoch_byte_table, publish_epoch_segments
from repro.placement import PlacementSpec, placement_policies
from repro.sim.cluster import Cluster, edge_indexed_factory
from repro.sim.workloads import drifting_hotspot_workload, run_open_loop
from repro.topo import geant_like

SEED = 22


def build_cell(result, home):
    workload = drifting_hotspot_workload(
        home, drifting_writer_groups(result), rate=2.0, duration=120.0,
        rotations=4, seed=SEED,
    )
    host = Cluster(
        result.share_graph,
        replica_factory=edge_indexed_factory,
        delay_model=result.delay_model(jitter=0.05),
        seed=SEED,
        wire_accounting=True,
    )
    return host, workload


def report(label, host, run_result):
    stats = host.network.stats
    per_message = (stats.timestamp_bytes_sent / stats.messages_sent
                   if stats.messages_sent else 0.0)
    print(f"  {label:<10} ts B/msg={per_message:6.1f}  "
          f"apply p99={run_result.apply_latency.p99:5.2f}  "
          f"reconfigs={host.metrics.reconfigs:<3} "
          f"consistent={run_result.consistent}")
    return per_message, run_result.apply_latency.p99


def main() -> None:
    spec = PlacementSpec.make(
        geant_like(), num_replicas=8, num_registers=12,
        replication_factor=2, capacity=6,
    )
    result = placement_policies()["latency-greedy"].place(spec, seed=SEED)
    home = _home_map(result)
    print("Drifting hotspot on the GEANT-like topology "
          f"({spec.num_replicas} replicas, {len(spec.registers)} registers, "
          "writers rotate regions every 30s):")
    print()

    # Static baseline: the best offline placement, left alone.
    host, workload = build_cell(result, home)
    static_run = run_open_loop(host, workload)
    static = report("static", host, static_run)

    # Adaptive: the same placement with the controller attached.
    host, workload = build_cell(result, home)
    controller = AdaptiveController(
        host, result,
        pinned={register: rid for rid, register in home.items()},
        config=ControllerConfig(
            interval=1.5, window=2, cooldown=5.0, margin=0.02,
            max_moves=3, min_writes=3, arm=2, dominance_rise=0.4,
            dominance_fall=0.25, compress_bytes_per_msg=18.0,
            reconfig_window=0.15,
        ),
    ).attach()
    adaptive_run = run_open_loop(host, workload)
    adaptive = report("adaptive", host, adaptive_run)

    print()
    print(f"controller decisions ({len(controller.decisions)} installed, "
          f"compression lever pulled: {controller.compressed}):")
    for decision in controller.decisions[:6]:
        print(f"  {decision.describe()}")
    if len(controller.decisions) > 6:
        print(f"  ... and {len(controller.decisions) - 6} more")

    print()
    print("per-epoch metadata traffic vs. each epoch's own counter bound:")
    registry = MetricsRegistry()
    publish_epoch_segments(registry, controller.manager.epoch_segments())
    rows = epoch_byte_table(registry.snapshot())
    shown = [row for row in rows if row["messages"]]
    for row in shown[:8]:
        print(f"  epoch {row['epoch']:<3} msgs={row['messages']:<5} "
              f"ts B/msg={row['ts_bytes_per_message']:6.1f}  "
              f"ctrs/msg={row['counters_per_message']:4.1f}  "
              f"bound={int(row['bound_counters']):<3} "
              f"ctr/bound={row['counters_vs_bound']:.2f}")
    if len(shown) > 8:
        print(f"  ... and {len(shown) - 8} more epochs")
    assert all(row["counters_vs_bound"] <= 1.0 for row in shown), (
        "an epoch exceeded its closed-form counter bound"
    )

    print()
    print(f"adaptive vs static: timestamp bytes/msg {adaptive[0]:.1f} vs "
          f"{static[0]:.1f}, apply p99 {adaptive[1]:.2f} vs {static[1]:.2f}")
    assert adaptive_run.consistent and static_run.consistent
    assert adaptive[0] < static[0], "adaptive must win on metadata bytes"
    print("both runs passed the consistency checker; "
          "the adaptive cell shipped less metadata per message.")


if __name__ == "__main__":
    main()
