"""Dynamic membership under open-loop load: join, leave, edge change.

Demonstrates the reconfiguration subsystem (``repro.sim.reconfig``) end to
end on a growing tree:

1. a **join** — replica 7 attaches to the tree mid-run through a fresh
   shared register; every surviving replica recomputes its timestamp graph
   for the new share graph and projects its timestamp across the epoch;
2. a **group join with state transfer** — replica 8 joins the replication
   group of an *existing* register, and the coordinator replays that
   register's update history to it as a gated bootstrap stream through the
   transport;
3. a **leave** — a replica exits; its trace stays part of the checked
   execution and survivors garbage-collect the edges that left with it;
4. an **edge change** — an existing register is placed at a second replica,
   which receives its history the same way a joiner would.

Throughout, client operations keep arriving open-loop against the changing
replica set; operations addressed to a replica inside a migration window
are rejected (the availability cost the E17 experiment measures), and the
epoch-aware consistency checker validates the whole multi-epoch execution.

Run with::

    PYTHONPATH=src python examples/reconfiguration.py
"""

from __future__ import annotations

from repro import ShareGraph
from repro.sim import (
    Cluster,
    ReconfigManager,
    ReconfigSchedule,
    UniformDelay,
    add_edge,
    join,
    leave,
    poisson_workload_dynamic,
    run_open_loop,
)
from repro.sim.topologies import tree_placement


def timeline(host) -> None:
    print("reconfiguration timeline:")
    for record in host.metrics.reconfig_timeline:
        print(f"  t={record.time:6.1f}  {record.kind:<18} {record.detail}")


def main() -> None:
    placement = tree_placement(6)
    graph = ShareGraph.from_placement(placement)
    print(graph.describe())
    print()

    cluster = Cluster(graph, delay_model=UniformDelay(1, 10), seed=42,
                      wire_accounting=True)
    manager = ReconfigManager(cluster, window=4.0)

    schedule = ReconfigSchedule(
        "join-leave-edge",
        (
            # Leaf join through a fresh register granted to the anchor.
            join(40.0, 7, {"wing_7"}, grants={3: {"wing_7"}}),
            # Group join: replica 8 also joins tree_1_2's replication
            # group, so it receives that register's history.
            join(80.0, 8, {"wing_8", "tree_1_2"}, grants={5: {"wing_8"}}),
            # A leaf leaves; its registers' other copies survive.
            leave(120.0, 6),
            # Edge change: replica 4 starts storing tree_1_3 as well.
            add_edge(150.0, 3, 4, register="tree_1_3"),
        ),
    )
    manager.install(schedule)

    placements = schedule.placements_over(placement, window=4.0)
    workload = poisson_workload_dynamic(placements, rate=0.6, duration=200.0,
                                        seed=42)
    result = run_open_loop(cluster, workload)

    timeline(cluster)
    print()
    print(f"epochs committed : {cluster.metrics.reconfigs} "
          f"(final epoch {cluster.epoch})")
    print(f"final members    : {list(cluster.share_graph.replica_ids)}")
    print(f"rejected ops     : {cluster.metrics.rejected_operations} "
          f"(inside migration windows)")
    print(f"forced applies   : {cluster.metrics.reconfig_forced_applies}")
    print(f"stale frames     : "
          f"{cluster.network.stats.messages_rejected_stale_epoch}")
    print()
    print("per-epoch traffic (timestamp bytes follow the configuration):")
    for segment in manager.epoch_segments():
        graph_r = segment["share_graph"].num_replicas
        messages = segment["messages"]
        ts_bytes = segment["timestamp_bytes"]
        per_message = ts_bytes / messages if messages else 0.0
        print(f"  epoch {segment['epoch']}: R={graph_r:<2} "
              f"msgs={messages:<4} ts bytes={ts_bytes:<6} "
              f"ts B/msg={per_message:.1f}")
    print()
    print(f"metadata sizes   : {cluster.metadata_sizes()}")
    print(f"causally consistent across all epochs: {result.consistent}")
    assert result.consistent


if __name__ == "__main__":
    main()
