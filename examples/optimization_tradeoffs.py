#!/usr/bin/env python3
"""Optimization trade-offs: smaller timestamps, but at what cost? (Appendix D)

Demonstrates the four timestamp-reduction mechanisms of Section 5 / Appendix D
on a ring of replicas — the topology where exact tracking is most expensive
(every replica keeps 2n counters):

1. **Compression** — free, but a ring has nothing to compress.
2. **Dummy registers** — shrink the (compressed) timestamp to the vector-clock
   size at the cost of extra metadata-only messages.
3. **Ring breaking with virtual registers** — path-shaped communication cuts
   the counters to the node degree but multiplies propagation hops.
4. **Bounded loop length** — drop the ring counters entirely; safe while the
   loose-synchrony assumption holds, and demonstrably unsafe when an
   adversarial schedule breaks it.

Run with::

    python examples/optimization_tradeoffs.py
"""

from __future__ import annotations

from repro import ShareGraph
from repro.analysis import render_table
from repro.analysis.experiments import exp_bounded_loops
from repro.optimizations import (
    analyze_ring_breaking,
    bounded_metadata_savings,
    compression_report,
    dummy_emulation_report,
    full_replication_dummies,
    loop_cover_dummies,
)
from repro.sim.topologies import ring_placement

RING_SIZE = 8


def main() -> None:
    placement = ring_placement(RING_SIZE)
    graph = ShareGraph.from_placement(placement)
    baseline = compression_report(graph)

    print(f"Baseline: ring of {RING_SIZE} replicas, exact edge-indexed timestamps")
    print(f"  counters per replica : {2 * RING_SIZE}")
    print(f"  system-wide counters : {baseline.total_uncompressed}")
    print()

    # ------------------------------------------------------------------
    # 1. Compression
    # ------------------------------------------------------------------
    print("1. Compression (linear dependence between counters)")
    print(f"   compressed system-wide counters: {baseline.total_compressed} "
          f"(ratio {baseline.compression_ratio:.2f})")
    print("   A ring shares a distinct register per edge, so nothing is")
    print("   linearly dependent and compression saves nothing here; compare")
    print("   full replication, where it collapses R(R-1) counters to R.")
    print()

    # ------------------------------------------------------------------
    # 2. Dummy registers
    # ------------------------------------------------------------------
    print("2. Dummy registers")
    rows = []
    for scheme, builder in (
        ("loop cover", loop_cover_dummies),
        ("full replication emulation", full_replication_dummies),
    ):
        assignment = builder(placement)
        report = dummy_emulation_report(assignment)
        rows.append(
            (
                scheme,
                f"{report.mean_counters_before:.1f}",
                f"{report.mean_compressed_after:.1f}",
                report.total_extra_messages_per_round,
                report.total_dummies,
            )
        )
    print(render_table(
        [
            "scheme",
            "counters before (mean)",
            "counters after compression (mean)",
            "extra msgs if every register written once",
            "dummy copies",
        ],
        rows,
    ))
    print("   Metadata shrinks to the vector-clock size, but every write now")
    print("   also notifies the dummy holders (metadata-only messages) and")
    print("   introduces false dependencies.")
    print()

    # ------------------------------------------------------------------
    # 3. Ring breaking via virtual registers
    # ------------------------------------------------------------------
    print("3. Breaking the ring (restricted communication, Figure 13)")
    analysis = analyze_ring_breaking(RING_SIZE)
    print(render_table(
        ["", "counters (total)", "max propagation hops", "extra relays per update"],
        [
            ("ring", analysis.total_counters_before, analysis.max_hops_before, 0),
            ("broken into a path", analysis.total_counters_after,
             analysis.max_hops_after, analysis.extra_relay_messages_per_update),
        ],
    ))
    print(f"   Counters saved: {analysis.counters_saved}; worst-case propagation "
          f"inflated {analysis.hop_inflation:.0f}x for the broken edge's register.")
    print()

    # ------------------------------------------------------------------
    # 4. Bounded loop length (sacrificing causality)
    # ------------------------------------------------------------------
    print("4. Bounded loop length")
    savings = bounded_metadata_savings(graph, max_loop_length=3)
    print(f"   counters: {savings.total_exact} exact -> {savings.total_bounded} bounded "
          f"({savings.counters_saved} saved)")
    result = exp_bounded_loops(ring_size=6)
    print(f"   loosely synchronous delays : causally consistent = "
          f"{result.consistent_under_loose_synchrony}")
    print(f"   adversarial delays         : causally consistent = "
          f"{result.consistent_under_adversary}")
    print("   Dropping the loop counters is safe only while single-hop messages")
    print("   beat multi-hop chains; the adversarial schedule violates exactly")
    print("   the dependency the dropped counter would have tracked.")


if __name__ == "__main__":
    main()
