#!/usr/bin/env python3
"""Metadata explorer: what does causality tracking cost on your topology?

Walks through the paper's combinatorial machinery on a series of topologies —
the worked examples of the paper, the closed-form families of Section 4 and
the Hélary–Milani counterexamples — and prints, for each, the timestamp graph
sizes, the compression potential, and (where a closed form exists) the lower
bound the algorithm matches.

Run with::

    python examples/metadata_explorer.py
"""

from __future__ import annotations

import math

from repro import ShareGraph
from repro.analysis import edge_label, render_table
from repro.analysis.experiments import exp_figure5, exp_helary_milani, render_helary_milani
from repro.core.timestamp_graph import build_all_timestamp_graphs
from repro.lower_bounds import (
    algorithm_counters,
    cycle_lower_bound_bits,
    lower_bound_bits,
    timestamp_space_lower_bound,
)
from repro.optimizations import compression_report
from repro.sim.topologies import (
    clique_placement,
    figure5_placement,
    geo_replication_placement,
    grid_placement,
    pairwise_clique_placement,
    random_partial_placement,
    ring_placement,
    star_placement,
    tree_placement,
)

MAX_UPDATES = 16  # the "m" used when converting counters to bits


def survey_topologies() -> None:
    """Counters, bits and compression across a spread of topologies."""
    topologies = {
        "figure5 (paper)": figure5_placement(),
        "ring of 8": ring_placement(8),
        "binary tree of 9": tree_placement(9),
        "star with 6 leaves": star_placement(6),
        "grid 3x3": grid_placement(3, 3),
        "full replication, 6 replicas": clique_placement(6),
        "pairwise clique, 5 replicas": pairwise_clique_placement(5),
        "random partial (10 replicas)": random_partial_placement(10, 18, 3, seed=21),
        "geo replication (4 DCs)": geo_replication_placement(4, 3, 2),
    }
    rows = []
    for name, placement in topologies.items():
        graph = ShareGraph.from_placement(placement)
        tgraphs = build_all_timestamp_graphs(graph)
        counters = [tg.num_counters for tg in tgraphs.values()]
        compression = compression_report(graph)
        bound = lower_bound_bits(graph, graph.replica_ids[0], MAX_UPDATES)
        rows.append(
            (
                name,
                graph.num_replicas,
                len(graph.placement.registers),
                f"{sum(counters) / len(counters):.1f}",
                max(counters),
                compression.total_compressed,
                compression.total_uncompressed,
                "-" if bound is None else f"{bound:.0f}",
            )
        )
    print("Topology survey")
    print(
        render_table(
            [
                "topology",
                "replicas",
                "registers",
                "mean counters",
                "max counters",
                "compressed total",
                "uncompressed total",
                "closed-form bound (bits, replica 1)",
            ],
            rows,
        )
    )
    print()


def figure5_walkthrough() -> None:
    """The Figure 5 example, edge by edge."""
    result = exp_figure5()
    print("Figure 5 timestamp graphs (per replica)")
    rows = [
        (rid, len(edges), ", ".join(edge_label(e) for e in sorted(edges)))
        for rid, edges in sorted(result.edge_sets.items())
    ]
    print(render_table(["replica", "|E_i|", "edges"], rows))
    asym = [
        edge_label(e)
        for e in sorted(result.replica1_edges)
        if (e[1], e[0]) not in result.replica1_edges
    ]
    print(f"Asymmetric entries of E_1 (tracked one way only): {', '.join(asym)}")
    print()


def helary_milani_walkthrough() -> None:
    """The paper's correction to Hélary–Milani, recomputed."""
    print("Hélary–Milani minimal hoops vs Theorem 8")
    print(render_helary_milani(exp_helary_milani()))
    print()


def lower_bound_walkthrough() -> None:
    """Theorem 15 evaluated explicitly on a small cycle."""
    graph = ShareGraph.from_placement(ring_placement(3))
    size, bits = timestamp_space_lower_bound(graph, 1, max_updates=2)
    closed = cycle_lower_bound_bits(3, 2)
    print("Theorem 15 on a 3-cycle with m = 2 updates per replica")
    print(f"  conflict-graph bound : {size} distinct timestamps = {bits:.1f} bits")
    print(f"  closed form 2n·log m : {closed:.1f} bits")
    print(f"  algorithm            : {algorithm_counters(graph, 1)} counters "
          f"= {algorithm_counters(graph, 1) * math.log2(2):.1f} bits")
    print()


def main() -> None:
    figure5_walkthrough()
    helary_milani_walkthrough()
    lower_bound_walkthrough()
    survey_topologies()


if __name__ == "__main__":
    main()
