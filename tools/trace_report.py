#!/usr/bin/env python3
"""Analyze a message-lifecycle trace dump: latency breakdowns and timelines.

Consumes the JSONL traces the observability layer records (simulated or
live runs — see ``docs/ARCHITECTURE.md``, *Observability*) and prints:

* **coverage** — how many applied destination copies reconstruct their
  full issue → send → wire → deliver → apply chain;
* **per-stage latency breakdown** — p50/p90/p99/max for each lifecycle
  hop: issue→send, the batching-window wait, the transport latency, and
  the pending-buffer (causal) wait, plus end-to-end;
* **critical paths** — the slowest complete chains with their per-stage
  split, the "why was this op slow" answer;
* with ``--metrics`` (a ``MetricsRegistry.write_jsonl`` dump) — the
  per-channel timestamp-bytes-vs-bound table: shipped timestamp bytes per
  message next to the paper's closed-form counter bound for the sender;
  when the dump carries per-epoch traffic books (``publish_epoch_segments``
  over a ``ReconfigManager``), the per-epoch bytes-vs-bound table —
  shipped metadata per message against each configuration's worst-sender
  bound, one row per epoch a schedule or controller installed; plus, when
  the dump carries node-level telemetry from a multi-tenant live run, the
  per-node transport-footprint table (host-pair streams, queue depths,
  WAL bytes/records/compactions);
* with ``--chrome PATH`` — a Chrome ``trace_event`` JSON file; load it in
  ``chrome://tracing`` or https://ui.perfetto.dev to see every chain as a
  flame row (one process per destination replica, one row per source).

Run from the repository root::

    PYTHONPATH=src python tools/trace_report.py trace.jsonl
    PYTHONPATH=src python tools/trace_report.py trace.jsonl \
        --metrics metrics.jsonl --chrome trace_chrome.json

``--require-coverage 0.99`` makes the exit status enforce the acceptance
bar (useful in CI): non-zero when fewer than that fraction of applied
remote copies reconstruct fully.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402
    assemble_spans,
    channel_byte_table,
    chrome_trace,
    complete_chains,
    coverage,
    critical_paths,
    epoch_byte_table,
    load_metrics_jsonl,
    load_trace_jsonl,
    node_transport_table,
    stage_breakdown,
)


def _print_breakdown(breakdown) -> None:
    print()
    print(f"{'stage':<14} {'count':>7} {'p50':>10} {'p90':>10} "
          f"{'p99':>10} {'max':>10}")
    for label, summary in breakdown.items():
        print(f"{label:<14} {summary.count:>7} {summary.p50:>10.4f} "
              f"{summary.p90:>10.4f} {summary.p99:>10.4f} {summary.max:>10.4f}")


def _print_critical_paths(paths) -> None:
    if not paths:
        return
    print()
    print("slowest chains (end-to-end, with per-stage split):")
    for entry in paths:
        stages = ", ".join(
            f"{label} {value:.4f}" for label, value in entry["stages"].items()
        )
        print(f"  {entry['uid'][0]}:{entry['uid'][1]} -> "
              f"{entry['destination']}  total {entry['total']:.4f}  ({stages})")


def _print_channel_table(rows) -> None:
    if not rows:
        return
    print()
    print("per-channel timestamp bytes vs. the closed-form counter bound:")
    print(f"{'channel':<12} {'msgs':>6} {'ts bytes':>9} {'ts B/msg':>9} "
          f"{'bound ctrs':>10} {'B/ctr':>7}")
    for row in rows:
        bound = row["bound_counters"]
        ratio = row["bytes_per_bound_counter"]
        print(f"{row['src']}->{row['dst']:<9} {row['messages']:>6} "
              f"{row['timestamp_bytes']:>9} {row['ts_bytes_per_message']:>9.2f} "
              f"{bound if bound is not None else '-':>10} "
              f"{f'{ratio:.2f}' if ratio is not None else '-':>7}")


def _print_epoch_table(rows) -> None:
    if not rows:
        return
    print()
    print("per-epoch metadata traffic vs. the closed-form counter bound:")
    print(f"{'epoch':<6} {'replicas':>8} {'msgs':>7} {'ts bytes':>9} "
          f"{'ts B/msg':>9} {'ctrs/msg':>9} {'bound':>6} {'ctr/bound':>9}")
    for row in rows:
        bound = row["bound_counters"]
        ratio = row["counters_vs_bound"]
        print(f"{row['epoch']:<6} {row['replicas']:>8} {row['messages']:>7} "
              f"{row['timestamp_bytes']:>9} "
              f"{row['ts_bytes_per_message']:>9.2f} "
              f"{row['counters_per_message']:>9.2f} "
              f"{int(bound) if bound is not None else '-':>6} "
              f"{f'{ratio:.2f}' if ratio is not None else '-':>9}")


def _print_node_table(rows) -> None:
    if not rows:
        return
    print()
    print("per-node transport footprint (host-pair streams + WAL):")
    print(f"{'node':<8} {'peers':>6} {'open':>5} {'inbound':>8} "
          f"{'queued':>7} {'unacked':>8} {'wal B':>9} {'wal rec':>8} "
          f"{'compact':>8}")
    for row in rows:
        print(f"{row['node']:<8} {row['peer_streams']:>6} "
              f"{row['open_streams']:>5} {row['inbound_connections']:>8} "
              f"{row['send_queue_depth']:>7} {row['unacked']:>8} "
              f"{row['wal_bytes']:>9} {row['wal_records']:>8} "
              f"{row['wal_compactions']:>8}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace dump (write_trace_jsonl)")
    parser.add_argument("--metrics", default=None,
                        help="metrics JSONL dump (MetricsRegistry.write_jsonl) "
                             "for the per-channel bytes-vs-bound table")
    parser.add_argument("--chrome", default=None, metavar="PATH",
                        help="also write a Chrome trace_event JSON file")
    parser.add_argument("--top", type=int, default=5,
                        help="critical paths to list (default 5)")
    parser.add_argument("--time-scale", type=float, default=1_000_000.0,
                        help="host-time units -> microseconds for the Chrome "
                             "export (default 1e6: seconds in, µs out)")
    parser.add_argument("--require-coverage", type=float, default=None,
                        metavar="FRACTION",
                        help="exit non-zero when chain coverage is below this")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also dump the analysis as machine-readable JSON")
    args = parser.parse_args(argv)

    events = load_trace_jsonl(args.trace)
    spans = assemble_spans(events)
    chains = complete_chains(spans)
    complete, applied = coverage(spans)
    fraction = complete / applied if applied else 1.0

    print(f"{len(events)} events, {len(spans)} spans "
          f"({applied} applied remote copies)")
    print(f"chain coverage: {complete}/{applied} "
          f"({100.0 * fraction:.2f}% of applied remote copies reconstruct "
          "issue->apply fully)")

    breakdown = stage_breakdown(chains)
    _print_breakdown(breakdown)
    paths = critical_paths(chains, top=args.top)
    _print_critical_paths(paths)

    channel_rows = []
    epoch_rows = []
    node_rows = []
    if args.metrics:
        metric_records = load_metrics_jsonl(args.metrics)
        channel_rows = channel_byte_table(metric_records)
        _print_channel_table(channel_rows)
        epoch_rows = epoch_byte_table(metric_records)
        _print_epoch_table(epoch_rows)
        node_rows = node_transport_table(metric_records)
        _print_node_table(node_rows)

    if args.chrome:
        document = chrome_trace(spans, time_scale=args.time_scale)
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        print(f"\nwrote {len(document['traceEvents'])} trace_event entries "
              f"to {args.chrome}")

    if args.json:
        payload = {
            "events": len(events),
            "spans": len(spans),
            "applied": applied,
            "complete": complete,
            "coverage": fraction,
            "breakdown": {
                label: {"count": s.count, "mean": s.mean, "p50": s.p50,
                        "p90": s.p90, "p99": s.p99, "max": s.max}
                for label, s in breakdown.items()
            },
            "critical_paths": [
                {**entry, "uid": list(entry["uid"])} for entry in paths
            ],
            "channels": channel_rows,
            "epochs": epoch_rows,
            "nodes": node_rows,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote analysis JSON to {args.json}")

    if args.require_coverage is not None and fraction < args.require_coverage:
        print(f"FAIL: coverage {fraction:.4f} below required "
              f"{args.require_coverage}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
