#!/usr/bin/env python3
"""Check that internal Markdown links in the repo's docs resolve.

Scans the given Markdown files (default: README.md, EXPERIMENTS.md and
docs/*.md) for inline links ``[text](target)`` and validates every
*internal* target:

* a relative path must exist (relative to the file containing the link);
* a ``#fragment`` must match a heading in the target file (GitHub-style
  slugs: lowercased, punctuation stripped, spaces to hyphens);
* bare ``#fragment`` links resolve against the containing file.

External links (``http://``, ``https://``, ``mailto:``) are ignored — CI
must not depend on the network.  Exits non-zero listing every broken
link.  Run from the repository root::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading."""
    text = re.sub(r"[`*_~]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> Set[str]:
    content = path.read_text(encoding="utf-8")
    slugs: Set[str] = set()
    for match in HEADING_RE.finditer(CODE_FENCE_RE.sub("", content)):
        slugs.add(slugify(match.group(1)))
    return slugs


def check_file(path: Path, root: Path) -> List[str]:
    errors: List[str] = []
    try:
        name = str(path.relative_to(root))
    except ValueError:
        name = str(path)
    content = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{name}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_slugs(resolved):
                errors.append(f"{name}: missing anchor -> {target}")
    return errors


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [root / "README.md", root / "EXPERIMENTS.md"]
        files += sorted((root / "docs").glob("*.md"))
    errors: List[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"missing file: {path}")
            continue
        checked += 1
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
