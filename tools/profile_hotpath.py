#!/usr/bin/env python3
"""Profile the hot-path engine: where do delivered messages spend time?

Two scenarios, each printed as a cProfile top-N table sorted by cumulative
time (the view that surfaces the drain loop, the timestamp kernels and the
wire codecs rather than interpreter noise):

* ``sim`` — the 64-replica full-replication clique backlog with
  transport-level batching and wire accounting: every message runs the
  whole stack (encode → frame → decode → ``apply_batch`` → kernel merge).
  This is the same configuration the E13/E16 benchmark gates measure.
* ``live`` — a small real-TCP smoke run over :mod:`repro.net` (localhost
  sockets, asyncio nodes), catching regressions the simulator cannot see:
  framing, stream decoding, event-loop churn.

Run from the repository root::

    PYTHONPATH=src python tools/profile_hotpath.py            # both
    PYTHONPATH=src python tools/profile_hotpath.py sim --clique 64
    PYTHONPATH=src python tools/profile_hotpath.py live --top 30

The numbers are for humans hunting the next optimisation; the enforced
floors live in ``benchmarks/`` and CI.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro._speedups import active_core  # noqa: E402


def _print_stats(profiler: cProfile.Profile, title: str, top: int) -> None:
    print()
    print(f"=== {title} — top {top} by cumulative time [{active_core()} core] ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def _stats_records(profiler: cProfile.Profile, top: int) -> list:
    """The top-N rows as machine-readable records (for ``--json``)."""
    stats = pstats.Stats(profiler).strip_dirs().sort_stats("cumulative")
    records = []
    for func in stats.fcn_list[:top]:  # fcn_list holds the sort order
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        records.append({
            "function": name,
            "file": filename,
            "line": line,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": tt,
            "cumtime": ct,
        })
    return records


def profile_sim(clique: int, ops: int, top: int) -> dict:
    """The clique backlog drain: maximal pending buffers, batched delivery."""
    from repro.baselines.vector_clock_full import full_replication_factory
    from repro.core.share_graph import ShareGraph
    from repro.sim.cluster import Cluster
    from repro.sim.delays import UniformDelay
    from repro.sim.engine import BatchingConfig
    from repro.sim.topologies import clique_placement
    from repro.sim.workloads import run_workload, uniform_workload

    graph = ShareGraph.from_placement(clique_placement(clique))
    workload = uniform_workload(graph, ops, write_fraction=1.0, seed=5)
    cluster = Cluster(
        graph,
        replica_factory=full_replication_factory,
        delay_model=UniformDelay(1, 10),
        seed=5,
        batching=BatchingConfig(max_messages=32, max_delay=8.0),
        wire_accounting=True,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    run_workload(cluster, workload, interleave_steps=0, check=False)
    profiler.disable()
    applies = cluster.metrics.applies
    _print_stats(
        profiler,
        f"sim: clique-{clique} backlog, {ops} writes, {applies} applies",
        top,
    )
    return {
        "scenario": "sim",
        "core": active_core(),
        "clique": clique,
        "ops": ops,
        "applies": applies,
        "hotspots": _stats_records(profiler, top),
    }


def profile_live(replicas: int, top: int) -> dict:
    """A real-TCP smoke run: sockets, framing and asyncio in the picture."""
    from repro.core.share_graph import ShareGraph
    from repro.net import LiveCluster
    from repro.net.client import OpenLoopClient
    from repro.sim.topologies import pairwise_clique_placement
    from repro.sim.workloads import single_writer_workload

    graph = ShareGraph.from_placement(pairwise_clique_placement(replicas))
    workload = single_writer_workload(
        graph, rate=4.0, duration=20.0, write_fraction=0.6, seed=18
    )
    profiler = cProfile.Profile()
    profiler.enable()
    with LiveCluster(graph) as cluster:
        outcome = OpenLoopClient(cluster).run(workload, time_scale=0.0)
        cluster.drain(timeout=60.0)
        result = cluster.collect(operation_latencies=outcome.latencies)
    profiler.disable()
    _print_stats(
        profiler,
        f"live: {replicas}-replica TCP smoke, {outcome.completed} ops, "
        f"{result.metrics.applies} applies",
        top,
    )
    return {
        "scenario": "live",
        "core": active_core(),
        "replicas": replicas,
        "ops": outcome.completed,
        "applies": result.metrics.applies,
        "hotspots": _stats_records(profiler, top),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "mode", nargs="?", choices=("sim", "live", "both"), default="both"
    )
    parser.add_argument("--clique", type=int, default=64,
                        help="sim: clique size (default 64)")
    parser.add_argument("--ops", type=int, default=600,
                        help="sim: workload writes (default 600)")
    parser.add_argument("--replicas", type=int, default=4,
                        help="live: replica count (default 4)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print per table (default 20)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also dump scenario summaries + top-N hotspots "
                             "as machine-readable JSON")
    args = parser.parse_args(argv)

    results = []
    if args.mode in ("sim", "both"):
        results.append(profile_sim(args.clique, args.ops, args.top))
    if args.mode in ("live", "both"):
        results.append(profile_live(args.replicas, args.top))
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"scenarios": results}, handle, indent=2)
        print(f"\nwrote profile JSON to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
