"""E7 — Metadata overhead: the paper's algorithm vs. every baseline.

Replays identical workloads against the edge-indexed algorithm,
track-all-edges, Full-Track matrix clocks, full-replication vector clocks and
Hélary–Milani hoop tracking across the topology suite, reporting counters
held, counters shipped, messages and storage.  The expected shape: the
paper's algorithm never carries more counters than the other
partial-replication protocols, and full replication trades small vectors for
full storage and broadcast traffic.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_metadata_overhead
from repro.sim.metrics import format_table


def test_e7_metadata_overhead_comparison(benchmark):
    """The per-protocol, per-topology metadata/traffic table."""
    rows = run_once(benchmark, exp_metadata_overhead, 100, 7)
    print()
    print("[E7] Metadata overhead across protocols and topologies")
    print(format_table(rows))

    # No safe protocol may violate consistency.
    for row in rows:
        assert row.safety_violations == 0
        assert row.liveness_violations == 0

    # The paper's algorithm never holds more counters than the conservative
    # partial-replication baselines on the same topology.
    by_topology = {}
    for row in rows:
        by_topology.setdefault(row.topology, {})[row.protocol] = row
    for topology, protocols in by_topology.items():
        paper = protocols["edge-indexed (paper)"]
        assert paper.max_counters <= protocols["all share-graph edges"].max_counters
        assert paper.max_counters <= protocols["full-track matrix"].max_counters
        # Full replication stores every register everywhere: more storage
        # whenever the placement is genuinely partial.
        full = protocols["full replication (vector)"]
        assert full.messages_sent >= paper.messages_sent
