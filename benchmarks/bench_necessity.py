"""E4 — Necessity of the timestamp-graph edges (Theorem 8, executable form).

Runs the adversarial delivery schedules from the Theorem 8 proof against the
exact algorithm and against protocols made oblivious to one timestamp-graph
edge.  The oblivious protocols violate safety; the exact algorithm does not.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_necessity, render_necessity


def test_e4_oblivious_protocols_violate_consistency(benchmark):
    """The executable counterpart of the Theorem 8 proof cases."""
    results = run_once(benchmark, exp_necessity)
    print()
    print("[E4] Necessity: adversarial schedules vs oblivious protocols")
    print(render_necessity(results))
    for result in results:
        assert result.paper_ok, f"paper algorithm violated on {result.scenario}"
        assert result.oblivious_violated, (
            f"the oblivious protocol survived {result.scenario}; the adversarial "
            "schedule should have broken it"
        )
