"""E5 — Sufficiency: the edge-indexed algorithm is causally consistent everywhere.

Randomized and causal-chain workloads over the full topology suite, all
validated by the independent checker.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_sufficiency, render_sufficiency


def test_e5_randomized_executions_consistent(benchmark):
    """Every run over every topology in the suite is causally consistent."""
    result = run_once(benchmark, exp_sufficiency, 100, (1, 2))
    print()
    print("[E5] Sufficiency sweep (uniform + causal-chain workloads)")
    print(render_sufficiency(result))
    assert result.all_consistent
