"""E8 — Timestamp compression (Section 5 / Appendix D).

Computes uncompressed vs. best-case compressed timestamp lengths across the
topology suite.  Expected shape: full replication compresses from R(R-1)
counters to R; pairwise-register topologies (rings, trees, grids) do not
compress; overlap-rich placements compress partially.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_compression, render_compression
from repro.core.share_graph import ShareGraph
from repro.optimizations import compression_report
from repro.sim.topologies import clique_placement


def test_e8_compression_across_topologies(benchmark):
    """System-wide uncompressed vs compressed counters."""
    result = run_once(benchmark, exp_compression)
    print()
    print("[E8] Timestamp compression")
    print(render_compression(result))
    for name, (before, after) in result.items():
        assert after <= before
    # Full replication (clique4) compresses down to R per replica.
    before, after = result["clique4"]
    assert before == 4 * 12 and after == 4 * 4
    # Pairwise-register families do not compress.
    assert result["ring6"][0] == result["ring6"][1]
    assert result["tree7"][0] == result["tree7"][1]


def test_e8_compression_speed(benchmark):
    """Micro-benchmark: compressing a 6-replica full-replication system."""
    graph = ShareGraph.from_placement(clique_placement(6))
    report = benchmark(compression_report, graph)
    assert report.total_compressed == 6 * 6
