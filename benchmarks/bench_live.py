"""E18 — The live runtime: a real 8-replica TCP cluster on localhost.

Acceptance run for the :mod:`repro.net` layer: an 8-replica pairwise
clique (every pair of replicas a real TCP channel — 56 directed streams),
open-loop client load fired at maximum pressure, and three gates:

* the run **completes**: every submitted operation is answered and the
  cluster drains (all channels' durable progress books agree);
* the run is **causally consistent**: the same
  :class:`~repro.core.consistency.ConsistencyChecker` that validates
  simulated executions validates the live trace;
* the run **converges**: on the single-writer workload every register's
  final value agrees across its storing replicas.

Alongside the gates it records the headline numbers: delivered ops/sec
(remote applies per wall-clock second) and the client-observed operation
latency percentiles (p50/p99).  Since the hot-path engine rewrite the
ops/sec number is also gated by an absolute floor — generous relative to
the measured headroom, and relaxed on shared CI runners where scheduler
noise on a sub-second drain window is routine — and every run drops its
numbers into ``BENCH_live.json`` for the CI artifact trail.

Set ``REPRO_BENCH_TINY=1`` for the CI smoke instance (4 replicas, a short
schedule): the gate code always executes.
"""

from __future__ import annotations

import os

from conftest import run_once, write_bench_json

from repro.core.share_graph import ShareGraph
from repro.net import LiveCluster
from repro.net.client import OpenLoopClient
from repro.sim.topologies import pairwise_clique_placement
from repro.sim.workloads import single_writer_workload

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
REPLICAS = 4 if TINY else 8
#: Open-loop arrivals ≈ rate × duration; time_scale=0 fires them as fast
#: as the sockets accept, so the schedule sets the mix, not the pacing.
RATE = 4.0
DURATION = 30.0 if TINY else 150.0

#: Delivered-ops/sec floor.  Local full-size runs sit at ~3,000–3,500 on
#: the multiplexed host-pair transport (stepped up from ~2,000–3,000 on
#: the connection-per-edge transport it replaced); the floor leaves ~2x
#: headroom.  Shared CI runners get a token floor (preemption during the
#: ~0.1 s drain window dwarfs any real regression), and the tiny smoke
#: instance only records.
if TINY:
    OPS_FLOOR = None
elif os.environ.get("GITHUB_ACTIONS"):
    OPS_FLOOR = 400.0
else:
    OPS_FLOOR = 1600.0


def _live_run():
    graph = ShareGraph.from_placement(pairwise_clique_placement(REPLICAS))
    workload = single_writer_workload(
        graph, rate=RATE, duration=DURATION, write_fraction=0.6, seed=18
    )
    # Diskless: the bench measures the transport, not snapshot pickling;
    # the kill/restart path owns durability (tests/test_net_live.py).
    with LiveCluster(graph) as cluster:
        outcome = OpenLoopClient(cluster).run(workload, time_scale=0.0)
        cluster.drain(timeout=120.0)
        result = cluster.collect(
            operation_latencies=outcome.latencies,
            rejected_operations=outcome.rejected,
        )
        # Re-stamp the wall duration: run_open_loop timing is not used here
        # because the client fired at time_scale=0.
        result.wall_duration = max(
            (t for t in result.metrics.apply_times), default=0.0
        ) - min((t for t, _ in result.metrics.operation_times), default=0.0)
    return workload, outcome, result


def test_e18_live_cluster_acceptance(benchmark):
    """Acceptance: a consistent 8-replica localhost run, numbers recorded."""
    workload, outcome, result = run_once(benchmark, _live_run)

    report = result.check_consistency()
    latency = result.operation_latency_summary()
    ops_per_sec = result.delivered_ops_per_sec

    print()
    print(f"E18: live {REPLICAS}-replica pairwise clique on localhost")
    print(f"  arrivals          {len(workload)} "
          f"({workload.write_count} writes / {workload.read_count} reads)")
    print(f"  completed/rejected {outcome.completed}/{outcome.rejected}")
    print(f"  remote applies    {result.metrics.applies}")
    print(f"  wall duration     {result.wall_duration:.3f}s")
    print(f"  delivered ops/sec {ops_per_sec:,.0f}")
    print(f"  op latency p50    {latency.p50 * 1000:.2f} ms")
    print(f"  op latency p99    {latency.p99 * 1000:.2f} ms")
    print(f"  consistency       "
          f"{'OK' if report.is_causally_consistent else 'VIOLATED'}")

    # Gate 1: the run completed — every operation answered, none rejected.
    assert outcome.ok and outcome.rejected == 0
    # Gate 2: the live execution is causally consistent.
    assert report.is_causally_consistent, (
        f"safety: {report.safety_violations[:3]}, "
        f"liveness: {report.liveness_violations[:3]}"
    )
    # Gate 3: convergence — single writer ⇒ a unique final state.
    for register, values in result.final_state().items():
        assert len(set(values.values())) == 1, (
            f"register {register} diverged: {values}"
        )
    # The headline numbers were actually recorded.
    assert result.metrics.applies > 0
    assert ops_per_sec > 0
    assert latency.count == outcome.completed and latency.p99 > 0
    write_bench_json(
        "live",
        metric="delivered_ops_per_sec",
        value=ops_per_sec,
        threshold=OPS_FLOOR,
        unit="ops/s",
        replicas=REPLICAS,
        applies=result.metrics.applies,
        wall_duration_s=result.wall_duration,
        latency_p50_ms=latency.p50 * 1000,
        latency_p99_ms=latency.p99 * 1000,
    )
    # Gate 4 (since the hot-path engine rewrite): an absolute throughput
    # floor on the zero-copy live path.
    if OPS_FLOOR is not None:
        assert ops_per_sec >= OPS_FLOOR, (
            f"live delivered ops/sec {ops_per_sec:,.0f} below the "
            f"{OPS_FLOOR:,.0f} floor"
        )
