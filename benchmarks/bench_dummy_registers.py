"""E9 — Dummy registers: metadata vs. extra messages and false dependencies.

Static trade-off of the loop-cover and full-replication-emulation schemes,
plus a dynamic run on a ring measuring the message amplification.  Expected
shape: compressed metadata shrinks towards the vector-clock size while the
number of (metadata-only) messages grows.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import (
    exp_dummy_registers,
    exp_dummy_registers_dynamic,
    render_dummy_registers,
)


def test_e9_dummy_register_tradeoff(benchmark):
    """Counters saved vs. extra messages for the two dummy schemes."""
    rows = run_once(benchmark, exp_dummy_registers)
    print()
    print("[E9] Dummy registers: static trade-off")
    print(render_dummy_registers(rows))
    for row in rows:
        # Compressed never exceeds uncompressed, and the scheme always pays in
        # additional update messages when it adds any dummy at all.
        assert row.mean_compressed_after <= row.mean_counters_after
        if row.total_dummies:
            assert row.extra_messages_per_round > 0
    # On the loop-rich ring the emulation genuinely shrinks the (compressed)
    # metadata below the exact edge-indexed timestamps; on a loop-free path it
    # does not (full replication is counterproductive there) — which is why the
    # paper recommends choosing dummies judiciously.
    ring_rows = [r for r in rows if r.topology == "ring6"]
    assert all(r.mean_compressed_after < r.mean_counters_before for r in ring_rows)


def test_e9_dummy_registers_dynamic(benchmark):
    """Dynamic run on a 6-ring: message amplification, consistency preserved."""
    result = run_once(benchmark, exp_dummy_registers_dynamic, 100, 5)
    print()
    print("[E9] Dummy registers: dynamic run on ring6")
    for name, stats in result.items():
        print(f"  {name}: {stats}")
    assert result["baseline"]["consistent"] == 1.0
    assert result["loop-cover dummies"]["consistent"] == 1.0
    assert (
        result["loop-cover dummies"]["messages"] > result["baseline"]["messages"]
    )
