"""E16 — The wire layer: batching throughput, delta-encoded bytes, codecs.

Gates the two headline claims of the wire-format layer on the 64-replica
clique backlog (the same configuration as E13's apply-path gate):

* **throughput** — delivered ops/sec with per-channel batching on must be
  ≥1.5× batching off (both sides run full byte accounting: the off side
  encodes every message as a standalone self-describing envelope, the on
  side encodes flushed batches with per-channel delta frames);
* **bytes** — delta encoding must shrink steady-state timestamp bytes well
  below the full-encoding counterfactual measured on the same run.

Also prints the E16 sweep table (topology × protocol family × batching
window) and records the ``__slots__`` allocation note for the hot-path
message classes.

Set ``REPRO_BENCH_TINY=1`` to run the same gates on a small instance (CI
smoke: the gate *code* always executes, so the perf checks cannot silently
rot out of the pipeline).
"""

from __future__ import annotations

import os
import sys
import time

from conftest import write_bench_json

from repro.baselines.vector_clock_full import full_replication_factory
from repro.clientserver import ClientServerCluster
from repro.core.protocol import Update, UpdateMessage
from repro.core.share_graph import ShareGraph
from repro.core.timestamps import VectorTimestamp
from repro.sim.cluster import Cluster
from repro.sim.delays import UniformDelay
from repro.sim.engine import BatchingConfig, DeliveryEvent, Firing, TimerEvent
from repro.sim.topologies import clique_placement, figure5_placement
from repro.sim.workloads import run_workload, uniform_workload

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
CLIQUE_SIZE = 12 if TINY else 64
OPS = 120 if TINY else 600

#: The acceptance floor is 1.5x; shared CI runners get a noise-tolerant
#: floor (scheduler preemptions during multi-second drains), and the tiny
#: smoke instance only proves the gate machinery runs.
if TINY:
    SPEEDUP_FLOOR = 1.0
elif os.environ.get("GITHUB_ACTIONS"):
    SPEEDUP_FLOOR = 1.2
else:
    SPEEDUP_FLOOR = 1.5


def _clique_run(batching):
    """One full-replication clique backlog run; returns (cluster, seconds).

    ``interleave_steps=0`` defers every delivery until the drain — the
    maximal-backlog regime of the E13 gate — and ``wire_accounting`` is on
    for both sides so the comparison includes the honest cost of putting
    bytes on the wire in each mode.
    """
    graph = ShareGraph.from_placement(clique_placement(CLIQUE_SIZE))
    workload = uniform_workload(graph, OPS, write_fraction=1.0, seed=5)
    cluster = Cluster(
        graph,
        replica_factory=full_replication_factory,
        delay_model=UniformDelay(1, 10),
        seed=5,
        batching=batching,
        wire_accounting=batching is None,
    )
    started = time.perf_counter()
    run_workload(cluster, workload, interleave_steps=0, check=False)
    return cluster, time.perf_counter() - started


def test_e16_batching_throughput_clique(benchmark):
    """Acceptance: ≥1.5× delivered-ops/sec with batching on the clique backlog."""

    def compare():
        on, on_s = _clique_run(BatchingConfig(max_messages=32, max_delay=8.0))
        off, off_s = _clique_run(None)
        assert on.metrics.applies == off.metrics.applies > 0
        return {
            "applies": on.metrics.applies,
            "on_ops": on.metrics.applies / on_s,
            "off_ops": off.metrics.applies / off_s,
            "on_bytes": on.network.stats.bytes_sent,
            "off_bytes": off.network.stats.bytes_sent,
            "batches": on.network.stats.batches_sent,
        }

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = result["on_ops"] / result["off_ops"]
    print()
    print(
        f"[E16] clique{CLIQUE_SIZE} backlog ({result['applies']} applies): "
        f"batching off {result['off_ops']:,.0f} ops/s, "
        f"on {result['on_ops']:,.0f} ops/s ({result['batches']} batches) "
        f"-> {speedup:.2f}x; bytes {result['off_bytes']:,} -> {result['on_bytes']:,}"
    )
    write_bench_json(
        "wire_batching",
        metric="batched_ops_speedup",
        value=speedup,
        threshold=SPEEDUP_FLOOR,
        on_ops_per_sec=result["on_ops"],
        off_ops_per_sec=result["off_ops"],
        on_bytes=result["on_bytes"],
        off_bytes=result["off_bytes"],
        clique=CLIQUE_SIZE,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batching must deliver >={SPEEDUP_FLOOR}x ops/sec on the clique "
        f"backlog, got {speedup:.2f}x"
    )


def test_e16_delta_encoding_shrinks_steady_state_bytes(benchmark):
    """Acceptance: delta frames beat full encoding on steady-state timestamp bytes."""

    def run():
        cluster, _ = _clique_run(BatchingConfig(max_messages=32, max_delay=8.0))
        return cluster.network.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"[E16] timestamp bytes: delta {stats.timestamp_bytes_sent:,} vs "
        f"full {stats.timestamp_bytes_full:,} "
        f"({100 * stats.timestamp_delta_savings:.1f}% saved, "
        f"{stats.delta_frames_sent} delta / {stats.full_frames_sent} full frames)"
    )
    assert stats.delta_frames_sent > 0
    assert stats.timestamp_bytes_sent < 0.7 * stats.timestamp_bytes_full, (
        "steady-state delta encoding should save well over 30% of timestamp "
        f"bytes, saved only {100 * stats.timestamp_delta_savings:.1f}%"
    )


def test_e16_batching_preserves_consistency_both_architectures(benchmark):
    """The checker must pass with batching on, on both deployments."""
    graph = ShareGraph.from_placement(figure5_placement())
    workload = uniform_workload(graph, 60 if TINY else 200, seed=7)

    def run():
        batching = BatchingConfig(max_messages=8, max_delay=4.0)
        p2p = Cluster(graph, delay_model=UniformDelay(1, 10), seed=7, batching=batching)
        p2p_result = run_workload(p2p, workload)
        cs = ClientServerCluster.with_colocated_clients(
            graph, delay_model=UniformDelay(1, 10), seed=7, batching=batching
        )
        cs_result = run_workload(cs, workload)
        return p2p_result, cs_result

    p2p_result, cs_result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"[E16] batched peer-to-peer: {p2p_result.summary()}")
    print(f"[E16] batched client-server: {cs_result.summary()}")
    assert p2p_result.consistent, "peer-to-peer consistency under batching"
    assert cs_result.consistent, "client-server consistency under batching"


# ----------------------------------------------------------------------
# Satellite: the __slots__ allocation note for hot-path message classes
# ----------------------------------------------------------------------

def test_slots_message_allocation_note(benchmark):
    """Hot-path message/event classes are slotted; record the allocation win."""
    for cls, args in (
        (Update, (1, 1, "x", "v")),
        (UpdateMessage, (Update(1, 1, "x", "v"), 1, 2, None, 0)),
        (DeliveryEvent, (None, 0.0)),
        (TimerEvent, (lambda host, t: None,)),
        (Firing, (0.0, None)),
    ):
        instance = cls(*args)
        assert not hasattr(instance, "__dict__"), f"{cls.__name__} must be slotted"

    vector = VectorTimestamp.zero(range(8))
    update = Update(1, 1, "x", "v")

    def allocate(n: int = 20_000):
        return [
            UpdateMessage(update, 1, 2, vector, 8) for _ in range(n)
        ]

    started = time.perf_counter()
    messages = allocate()
    elapsed = time.perf_counter() - started
    per_message = sys.getsizeof(messages[0])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        f"[E16] __slots__ note: UpdateMessage instance is {per_message} bytes "
        f"(no __dict__), {len(messages)} allocations in {elapsed * 1000:.1f} ms "
        f"({elapsed / len(messages) * 1e9:.0f} ns each)"
    )


# ----------------------------------------------------------------------
# The E16 sweep table (topology × protocol family × batching window)
# ----------------------------------------------------------------------

def test_e16_wire_overhead_table(benchmark):
    """Regenerate and print the E16 sweep recorded in EXPERIMENTS.md."""
    from repro.analysis.experiments import exp_wire_overhead, render_wire_overhead

    ops = 60 if TINY else 150
    rows = benchmark.pedantic(
        exp_wire_overhead, kwargs={"ops": ops}, rounds=1, iterations=1
    )
    print()
    print(render_wire_overhead(rows))
    assert all(row.consistent for row in rows), "every E16 cell must stay consistent"
    windowed = [row for row in rows if row.window != "off"]
    assert windowed and all(
        row.timestamp_bytes <= row.timestamp_bytes_full for row in windowed
    )
