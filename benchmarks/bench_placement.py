"""E21 — Placement policies on measured topologies.

Runs :func:`repro.analysis.exp_placement` — placement policy × topology ×
protocol/architecture, with latency-weighted delays from the measured
maps and one region-kill fault cell per placement — and gates the
subsystem's headline contract:

* **optimized beats random** — on the GEANT-like topology the
  availability-aware placement beats random placement on *both*
  timestamp bytes per message and measured apply p99;
* **availability** — the availability-aware placement keeps every
  register alive under any single-region kill (survival 1.0), which
  random placement does not guarantee;
* **consistency** — causal consistency holds in every cell, including
  through the region-kill fault.

Set ``REPRO_BENCH_TINY=1`` to shrink the workload (CI smoke).
"""

from __future__ import annotations

import os

from conftest import run_once, write_bench_json

from repro.analysis import exp_placement, render_placement

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
RATE = 2.0 if TINY else 4.0
DURATION = 20.0 if TINY else 40.0
REPLICAS = 8 if TINY else 10
REGISTERS = 12 if TINY else 16
CAPACITY = 5 if TINY else 6


def _gate_cell(rows, policy):
    """The GEANT edge-indexed peer-to-peer no-fault row for ``policy``."""
    matches = [
        r
        for r in rows
        if r.topology == "geant-like"
        and r.policy == policy
        and r.protocol == "edge-indexed"
        and r.architecture == "peer-to-peer"
        and r.fault == "none"
    ]
    assert len(matches) == 1, f"expected one gate cell for {policy}, got {matches}"
    return matches[0]


def test_e21_placement_matrix(benchmark):
    """Policy × topology × protocol sweep: optimized beats random on GEANT."""
    rows = run_once(
        benchmark,
        exp_placement,
        rate=RATE,
        duration=DURATION,
        num_replicas=REPLICAS,
        num_registers=REGISTERS,
        capacity=CAPACITY,
    )
    print()
    print("[E21] Placement policy x topology x protocol")
    print(render_placement(rows))

    assert len(rows) == 24  # 2 topologies x 3 policies x 4 cells
    for row in rows:
        assert row.consistent, f"inconsistent cell: {row}"
        assert row.messages > 0
        assert row.ts_bytes_per_msg > 0.0
    fault_rows = [r for r in rows if r.fault != "none"]
    assert len(fault_rows) == 6
    for row in fault_rows:
        assert row.availability_min < 1.0, (
            f"region kill did not register as downtime: {row}"
        )

    random_cell = _gate_cell(rows, "random")
    optimized = _gate_cell(rows, "availability-aware")
    bytes_ratio = random_cell.ts_bytes_per_msg / optimized.ts_bytes_per_msg
    p99_ratio = random_cell.apply_p99 / optimized.apply_p99
    assert bytes_ratio > 1.0, (
        f"availability-aware placement must beat random on timestamp "
        f"bytes/msg: {optimized.ts_bytes_per_msg:.1f} vs "
        f"{random_cell.ts_bytes_per_msg:.1f}"
    )
    assert p99_ratio > 1.0, (
        f"availability-aware placement must beat random on apply p99: "
        f"{optimized.apply_p99:.1f} vs {random_cell.apply_p99:.1f}"
    )
    assert optimized.region_survival == 1.0, (
        "availability-aware placement must survive any single-region kill"
    )

    write_bench_json(
        "placement",
        metric="min_gate_ratio",
        value=min(bytes_ratio, p99_ratio),
        threshold=1.0,
        bytes_ratio=bytes_ratio,
        p99_ratio=p99_ratio,
        optimized_ts_bytes_per_msg=optimized.ts_bytes_per_msg,
        random_ts_bytes_per_msg=random_cell.ts_bytes_per_msg,
        optimized_apply_p99=optimized.apply_p99,
        random_apply_p99=random_cell.apply_p99,
        cells=len(rows),
    )
