"""E22 — Adaptive reconfiguration vs. every static placement.

Runs :func:`repro.analysis.exp_adaptive` — a drifting-hotspot workload
(the writer set rotates across GEANT regions every ``duration /
rotations``) against each static placement policy plus the closed-loop
:class:`~repro.adapt.AdaptiveController` — and gates the subsystem's
headline contract:

* **adaptive beats every static** — the controller cell wins on *both*
  measured timestamp bytes per message and apply-latency p99 against
  every static placement policy;
* **the loop actually ran** — the adaptive cell committed controller-
  issued reconfigurations (and pulled the compression lever);
* **consistency** — causal consistency holds in every cell, including
  through every controller-issued reconfiguration.

Set ``REPRO_BENCH_TINY=1`` to shrink the workload (CI smoke).
"""

from __future__ import annotations

import os

from conftest import run_once, write_bench_json

from repro.analysis import exp_adaptive, render_adaptive

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
DURATION = 240.0 if TINY else 720.0
ROTATIONS = 8 if TINY else 12


def test_e22_adaptive_beats_statics(benchmark):
    """Closed-loop controller vs. static placements on a drifting hotspot."""
    rows = run_once(
        benchmark,
        exp_adaptive,
        duration=DURATION,
        rotations=ROTATIONS,
    )
    print()
    print("[E22] Adaptive reconfiguration vs static placement")
    print(render_adaptive(rows))

    assert len(rows) == 4  # 3 static policies + the adaptive cell
    for row in rows:
        assert row.consistent, f"inconsistent cell: {row}"
        assert row.messages > 0
        assert row.ts_bytes_per_msg > 0.0

    adaptive = [r for r in rows if r.adaptive]
    assert len(adaptive) == 1
    adaptive = adaptive[0]
    statics = [r for r in rows if not r.adaptive]
    assert len(statics) == 3

    assert adaptive.reconfigs > 0, "the controller never reconfigured"
    assert adaptive.plans > 0, "the controller never installed a plan"
    assert adaptive.compressed, "the compression lever never triggered"

    worst_bytes_ratio = float("inf")
    worst_p99_ratio = float("inf")
    for static in statics:
        bytes_ratio = static.ts_bytes_per_msg / adaptive.ts_bytes_per_msg
        p99_ratio = static.apply_p99 / adaptive.apply_p99
        worst_bytes_ratio = min(worst_bytes_ratio, bytes_ratio)
        worst_p99_ratio = min(worst_p99_ratio, p99_ratio)
        assert bytes_ratio > 1.0, (
            f"adaptive must beat {static.policy} on timestamp bytes/msg: "
            f"{adaptive.ts_bytes_per_msg:.1f} vs {static.ts_bytes_per_msg:.1f}"
        )
        assert p99_ratio > 1.0, (
            f"adaptive must beat {static.policy} on apply p99: "
            f"{adaptive.apply_p99:.2f} vs {static.apply_p99:.2f}"
        )

    write_bench_json(
        "adaptive",
        metric="min_gate_ratio",
        value=min(worst_bytes_ratio, worst_p99_ratio),
        threshold=1.0,
        worst_bytes_ratio=worst_bytes_ratio,
        worst_p99_ratio=worst_p99_ratio,
        adaptive_ts_bytes_per_msg=adaptive.ts_bytes_per_msg,
        adaptive_apply_p99=adaptive.apply_p99,
        reconfigs=adaptive.reconfigs,
        plans=adaptive.plans,
        cells=len(rows),
    )
