"""E13 — Protocol micro-benchmarks: advance / merge / predicate / end-to-end.

Times the hot operations of the edge-indexed algorithm and a full end-to-end
simulated workload, so regressions in the protocol path are visible — plus
the indexed-apply-path comparison on large pending buffers (the 64-replica
clique workload), which must stay ≥2× faster than the seed's fixpoint
rescan.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import time

from conftest import write_bench_json

from repro.baselines.vector_clock_full import (
    FullReplicationReplica,
    full_replication_factory,
)
from repro.core.protocol import BootstrapMetadata, EventKind
from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import TimestampGraph
from repro.core.timestamps import (
    EdgeTimestamp,
    VectorTimestamp,
    advance,
    delivery_predicate,
    merge,
)
from repro.sim.cluster import build_cluster
from repro.sim.delays import UniformDelay
from repro.sim.topologies import (
    clique_placement,
    figure5_placement,
    random_partial_placement,
    ring_placement,
)
from repro.sim.workloads import run_workload, uniform_workload


def test_e13_advance_speed(benchmark):
    """advance() on the Figure 5 system."""
    graph = ShareGraph.from_placement(figure5_placement())
    tgraph = TimestampGraph.build(graph, 4)
    tau = EdgeTimestamp.zero(tgraph.edges)
    benchmark(advance, graph, tgraph, tau, "y")


def test_e13_merge_speed(benchmark):
    """merge() between two ring-replica timestamps."""
    graph = ShareGraph.from_placement(ring_placement(8))
    tg1 = TimestampGraph.build(graph, 1)
    tg2 = TimestampGraph.build(graph, 2)
    tau1 = EdgeTimestamp.zero(tg1.edges)
    tau2 = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1), (2, 3)])
    benchmark(merge, tg1, tau1, tg2, tau2)


def test_e13_delivery_predicate_speed(benchmark):
    """Predicate J on a ring-replica pending update."""
    graph = ShareGraph.from_placement(ring_placement(8))
    tg1 = TimestampGraph.build(graph, 1)
    tg2 = TimestampGraph.build(graph, 2)
    tau1 = EdgeTimestamp.zero(tg1.edges)
    remote = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1)])
    benchmark(delivery_predicate, tg1, tau1, 2, tg2, remote)


def test_e13_local_write_speed(benchmark):
    """A local write (advance + message construction) on a 10-replica system."""
    graph = ShareGraph.from_placement(
        random_partial_placement(10, 20, replication_factor=3, seed=1)
    )
    replica = EdgeIndexedReplica(graph, 1)
    register = sorted(replica.registers)[0]
    benchmark(replica.write, register, "value")


def test_e13_end_to_end_throughput(benchmark):
    """A 300-operation workload on the Figure 5 system, end to end."""
    graph = ShareGraph.from_placement(figure5_placement())

    def run():
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=3)
        return run_workload(cluster, uniform_workload(graph, 300, seed=3), check=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.messages_sent > 0


# ----------------------------------------------------------------------
# The indexed apply path vs the seed's fixpoint rescan (large buffers)
# ----------------------------------------------------------------------

#: ``REPRO_BENCH_TINY=1`` shrinks the backlog and drops the wall-clock
#: floors to "ran and didn't regress catastrophically" — the CI smoke mode
#: in which the gate *code* executes on every push while the meaningful
#: full-size ratios stay a local/nightly concern.
TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
CLIQUE_SIZE = 16 if TINY else 64


def _drain_time(base_receiver, method_name: str, repetitions: int = 3) -> float:
    """Best-of-N wall time to drain a pre-built pending backlog."""
    expected = base_receiver.pending_count()
    best = None
    for _ in range(repetitions):
        receiver = copy.deepcopy(base_receiver)
        started = time.perf_counter()
        applied = getattr(receiver, method_name)()
        elapsed = time.perf_counter() - started
        assert len(applied) == expected
        assert receiver.pending_count() == 0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _clique_vector_backlog(writes_per_writer: int = 32,
                           receiver_cls=FullReplicationReplica):
    """63 independent writers on the 64-replica clique, delivered fully reversed.

    Full replication over a clique is the configuration under which the
    paper's timestamps compress to the classical length-R vector, so the
    clique workload runs the vector-clock protocol; every message except
    each writer's first is buffered behind the FIFO conjunct, building a
    ~2000-message pending backlog at the receiver.
    """
    graph = ShareGraph.from_placement(clique_placement(CLIQUE_SIZE))
    writers = {
        rid: FullReplicationReplica(graph, rid)
        for rid in graph.replica_ids
        if rid != 1
    }
    receiver = receiver_cls(graph, 1)
    to_receiver = []
    for index in range(writes_per_writer):
        for rid, writer in writers.items():
            messages = writer.write("g", f"{rid}:{index}")
            to_receiver.append(next(m for m in messages if m.destination == 1))
    for message in reversed(to_receiver):
        receiver.receive(message)
    return receiver


@dataclasses.dataclass(frozen=True)
class _LegacyReplicaEvent:
    """The pre-batch-engine (non-``slots``) trace-event layout."""

    replica_id: object
    kind: EventKind
    update: object
    register: object
    local_index: int
    sim_time: float = 0.0


class _LegacyVectorReplica(FullReplicationReplica):
    """The pre-batch-engine indexed vector path, frozen verbatim.

    Every hot-path method this PR rewrote — merge, predicate, wake keys,
    the drain loop, and the apply bookkeeping — is pinned here to its
    previous implementation, so the "current indexed path vs batch engine"
    gate below keeps measuring the same before/after forever instead of
    silently comparing the new engine against itself.
    """

    def absorb_metadata(self, message):
        old = self.vector
        counters = dict(old.counters)
        for rid, value in message.metadata.items():
            counters[rid] = max(counters.get(rid, 0), value)
        self.vector = VectorTimestamp(counters)
        self._changed_entries = [
            (rid, self.vector.get(rid))
            for rid, value in message.metadata.items()
            if value > old.get(rid)
        ]

    def blocking_key(self, message):
        remote = message.metadata
        sender = message.sender
        if remote.get(sender) != self.vector.get(sender) + 1:
            return ("seq", sender, remote.get(sender))
        for rid, value in remote.items():
            if rid != sender and value > self.vector.get(rid):
                return ("ge", rid)
        return None

    def applied_keys(self, message):
        return self.wake_keys(self._changed_entries)

    def _apply(self, message, sim_time):
        update = message.update
        if message.payload and update.register in self.registers:
            self.store[update.register] = update.value
        if isinstance(message.metadata, BootstrapMetadata):
            self._bootstrap_next += 1
            if (
                self._bootstrap_total is not None
                and self._bootstrap_next >= self._bootstrap_total
            ):
                self._bootstrap_total = None
        else:
            self.absorb_metadata(message)
        self.applied.append(update)
        self._applied_uids.add(update.uid)
        self._pending_uids.discard(update.uid)
        self._record(EventKind.APPLY, update, update.register, sim_time)
        return update.uid

    def _record(self, kind, update, register, sim_time):
        self.events.append(
            _LegacyReplicaEvent(
                replica_id=self.replica_id,
                kind=kind,
                update=update,
                register=register,
                local_index=len(self.events),
                sim_time=sim_time,
            )
        )

    def apply_ready(self, sim_time=0.0, force=False):
        if force and self._blocked:
            self.notify_pending(None)
        if not self._recheck:
            return []
        applied_now = []
        while self._recheck:
            message = self._recheck.popleft()
            key = self._effective_blocking_key(message)
            if key is None:
                self._apply(message, sim_time)
                applied_now.append(message.update)
                self._applied_pending_uids.add(message.update.uid)
                self.notify_pending(self._effective_applied_keys(message))
            else:
                self._blocked.setdefault(key, []).append(message)
        if applied_now:
            self._compact_pending()
        return applied_now


def test_e13_batch_engine_vs_legacy_indexed_clique64(benchmark):
    """Acceptance: the rebuilt engine is ≥5× the previous *indexed* path.

    Both sides drain the identical 2000-message clique backlog through the
    pending index — the comparison isolates this PR's merge kernels, fused
    predicate, and drain-loop rewrite from the (already-gated) index-vs-
    rescan win.
    """
    base = _clique_vector_backlog()
    legacy_base = _clique_vector_backlog(receiver_cls=_LegacyVectorReplica)

    def compare():
        engine = _drain_time(base, "apply_ready", repetitions=5)
        legacy = _drain_time(legacy_base, "apply_ready", repetitions=5)
        return {"engine_s": engine, "legacy_s": legacy, "speedup": legacy / engine}

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(
        f"[E13] clique{CLIQUE_SIZE} pending backlog ({base.pending_count()} msgs): "
        f"batch engine {result['engine_s'] * 1000:.1f} ms, "
        f"legacy indexed {result['legacy_s'] * 1000:.1f} ms, "
        f"speedup {result['speedup']:.2f}x"
    )
    # ≥5x is the acceptance criterion at full size; shared CI runners get a
    # noise-tolerant floor, and the tiny smoke instance (where fixed
    # overheads dominate the much smaller drain) only proves the gate runs.
    if TINY:
        floor = 1.0
    elif os.environ.get("GITHUB_ACTIONS"):
        floor = 2.5
    else:
        floor = 5.0
    write_bench_json(
        "batch_engine",
        metric="speedup_vs_legacy_indexed",
        value=result["speedup"],
        threshold=floor,
        engine_ms=result["engine_s"] * 1000,
        legacy_ms=result["legacy_s"] * 1000,
        backlog=base.pending_count(),
        clique=CLIQUE_SIZE,
    )
    assert result["speedup"] >= floor, (
        f"batch engine must be >={floor}x the legacy indexed path, got "
        f"{result['speedup']:.2f}x"
    )


def _clique_edge_indexed_chain_backlog(rounds: int = 2):
    """A cross-writer causal chain on the clique, edge-indexed timestamps.

    Writer ``k``'s round-``r`` update causally depends on round ``r`` of
    every writer before it, and the whole backlog is delivered in reverse
    chain order — the worst case for the rescan's repeated predicate
    evaluations.  Timestamps are synthesised directly (building the chain
    through 63 replicas' apply loops would dominate the benchmark).
    """
    from repro.core.protocol import Update, UpdateMessage

    graph = ShareGraph.from_placement(clique_placement(CLIQUE_SIZE))
    zero = EdgeTimestamp.zero(graph.edges)
    writers = sorted(rid for rid in graph.replica_ids if rid != 1)
    to_receiver = []
    for round_index in range(1, rounds + 1):
        for k in writers:
            counters = dict(zero.counters)
            for j in writers:
                known_round = round_index if j <= k else round_index - 1
                if known_round > 0:
                    for dest in graph.replica_ids:
                        if dest != j:
                            counters[(j, dest)] = known_round
            ts = EdgeTimestamp(counters)
            update = Update(issuer=k, seq=round_index, register="g",
                            value=f"{k}:{round_index}")
            to_receiver.append(
                UpdateMessage(update=update, sender=k, destination=1,
                              metadata=ts, metadata_size=ts.size_counters())
            )
    tgraph = TimestampGraph.from_edges(graph, 1, graph.edges)
    receiver = EdgeIndexedReplica(graph, 1, timestamp_graph=tgraph)
    for message in reversed(to_receiver):
        receiver.receive(message)
    return receiver


def test_e13_indexed_apply_vs_rescan_clique64(benchmark):
    """Acceptance: ≥2× over the seed rescan on the 64-replica clique backlog."""
    base = _clique_vector_backlog()

    def compare():
        indexed = _drain_time(base, "apply_ready")
        rescan = _drain_time(base, "apply_ready_rescan")
        return {"indexed_s": indexed, "rescan_s": rescan, "speedup": rescan / indexed}

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(
        f"[E13] clique{CLIQUE_SIZE} pending backlog ({base.pending_count()} msgs): "
        f"indexed {result['indexed_s'] * 1000:.1f} ms, "
        f"seed rescan {result['rescan_s'] * 1000:.1f} ms, "
        f"speedup {result['speedup']:.2f}x"
    )
    # The 2x floor is the acceptance criterion; measured headroom is ~11x.
    # Shared CI runners get a noise-tolerant floor so a scheduler preemption
    # during the ~100 ms indexed drain cannot fail an unrelated PR, and the
    # tiny smoke instance only proves the gate machinery runs.
    if TINY:
        floor = 1.0
    elif os.environ.get("GITHUB_ACTIONS"):
        floor = 1.2
    else:
        floor = 2.0
    write_bench_json(
        "indexed_apply",
        metric="speedup_vs_seed_rescan",
        value=result["speedup"],
        threshold=floor,
        indexed_ms=result["indexed_s"] * 1000,
        rescan_ms=result["rescan_s"] * 1000,
        backlog=base.pending_count(),
        clique=CLIQUE_SIZE,
    )
    assert result["speedup"] >= floor, (
        f"indexed apply path must be >={floor}x the seed rescan, got "
        f"{result['speedup']:.2f}x"
    )


def test_e13_indexed_apply_edge_chain_clique64(benchmark):
    """The paper's algorithm on the same clique: indexed path never slower."""
    base = _clique_edge_indexed_chain_backlog()

    def compare():
        indexed = _drain_time(base, "apply_ready")
        rescan = _drain_time(base, "apply_ready_rescan")
        return {"indexed_s": indexed, "rescan_s": rescan, "speedup": rescan / indexed}

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(
        f"[E13] clique{CLIQUE_SIZE} edge-indexed chain ({base.pending_count()} msgs): "
        f"indexed {result['indexed_s'] * 1000:.1f} ms, "
        f"seed rescan {result['rescan_s'] * 1000:.1f} ms, "
        f"speedup {result['speedup']:.2f}x"
    )
    # Here the per-apply merge dominates both paths, so the ratio hovers
    # near 1x; guard only against a catastrophic regression — shared CI
    # runners make tight wall-clock ratios on ~70 ms drains too noisy.
    assert result["speedup"] >= (0.3 if TINY else 0.5)


# ----------------------------------------------------------------------
# E19 — observability overhead: the tracing hooks on the end-to-end path
# ----------------------------------------------------------------------
#
# PR 6 shipped this end-to-end path with no tracer hooks at all; the
# observability PR threads `if self.tracer is not None` guards through
# `_note_issue` / `_apply_ready` / `_apply_batch` (host) and `send` /
# `_flush_channel` / `record_*_delivery` (transport).  The functions below
# are frozen copies of those methods *without* the guards — the PR 6
# baseline — rebound onto a live cluster, so the gate measures exactly
# what the hooks cost: disabled tracing must stay within 3% of the
# pre-hook code, enabled tracing within 2x.

def _pre_obs_note_issue(self, update):
    self._issue_times[update.uid] = self.now


def _pre_obs_apply_ready(self, replica, force=False):
    applied = replica.apply_ready(sim_time=self.now, force=force)
    for update in applied:
        self.metrics.applies += 1
        self.metrics.apply_times.append(self.now)
        issued_at = self._issue_times.get(update.uid)
        if issued_at is not None:
            self.metrics.apply_latencies.append(self.now - issued_at)
    if applied and self.fault_injector is not None:
        self.fault_injector.note_applies(replica.replica_id, applied, self.now)
    if applied and self.reconfig_manager is not None:
        self.reconfig_manager.note_applies(replica.replica_id, applied, self.now)
    pending = replica.pending_count()
    previous = self.metrics.max_pending.get(replica.replica_id, 0)
    self.metrics.max_pending[replica.replica_id] = max(previous, pending)
    return applied


def _pre_obs_apply_batch(self, replica, messages):
    applied = replica.apply_batch(messages, sim_time=self.now)
    for update in applied:
        self.metrics.applies += 1
        self.metrics.apply_times.append(self.now)
        issued_at = self._issue_times.get(update.uid)
        if issued_at is not None:
            self.metrics.apply_latencies.append(self.now - issued_at)
    if applied and self.fault_injector is not None:
        self.fault_injector.note_applies(replica.replica_id, applied, self.now)
    if applied and self.reconfig_manager is not None:
        self.reconfig_manager.note_applies(replica.replica_id, applied, self.now)
    pending = replica.pending_count()
    previous = self.metrics.max_pending.get(replica.replica_id, 0)
    self.metrics.max_pending[replica.replica_id] = max(previous, pending)
    return applied


def _pre_obs_send(self, message, delay=None):
    self.stats.messages_sent += 1
    self.stats.metadata_counters_sent += message.metadata_size
    if message.payload:
        self.stats.payload_messages_sent += 1
    else:
        self.stats.metadata_only_messages_sent += 1
    if self._sent_log is not None:
        destination_log = self._sent_log.setdefault(message.destination, {})
        destination_log[message.update.uid] = (self.kernel.now, message)
    if self._batching is not None and delay is None:
        self._enqueue_for_batch(message)
        return
    channel = (message.sender, message.destination)
    self._account_single(message)
    if self._blocked(channel):
        self._held_messages.append((self.kernel.now, message))
        return
    self._transmit(message, sent_at=self.kernel.now, delay=delay)


def _pre_obs_flush_channel(self, channel):
    from repro.wire.batch import MessageBatch, encode_batch

    window = self._open_batches.pop(channel, None)
    if not window:
        return
    self._flush_generation[channel] = self._flush_generation.get(channel, 0) + 1
    seq = self._batch_seq.get(channel, 0)
    self._batch_seq[channel] = seq + 1
    sent_times = tuple(sent_at for sent_at, _ in window)
    batch = MessageBatch(
        sender=channel[0],
        destination=channel[1],
        seq=seq,
        messages=tuple(message for _, message in window),
    )
    epoch = self._channel_epoch.get(channel, 0)
    _, sizes = encode_batch(
        batch,
        encoder=self._delta_encoder,
        codec=self._codec_for(batch.messages[0]),
    )
    self.stats.batches_sent += 1
    self.stats.batched_messages_sent += len(batch.messages)
    self.stats.account_wire(channel, sizes, messages=len(batch.messages), batches=1)
    if self._reliability is not None:
        for sent_at, message in window:
            self._track(message, sent_at)
    if self._blocked(channel):
        self._held_batches.append((self.kernel.now, sent_times, batch, epoch))
        return
    self._transmit_batch(batch, sent_times, sent_at=self.kernel.now, epoch=epoch)


def _pre_obs_record_delivery(self, event, time):
    self._note_message_delivered(event.message, event.sent_at, time)


def _pre_obs_record_batch_delivery(self, event, time):
    for message, sent_at in zip(event.batch.messages, event.sent_times):
        self._note_message_delivered(message, sent_at, time)


def _obs_overhead_cluster(variant: str):
    """The E13 profile configuration with one of three observability modes."""
    import types

    from repro.sim.cluster import Cluster
    from repro.sim.engine import BatchingConfig

    graph = ShareGraph.from_placement(clique_placement(CLIQUE_SIZE))
    cluster = Cluster(
        graph,
        replica_factory=full_replication_factory,
        delay_model=UniformDelay(1, 10),
        seed=5,
        batching=BatchingConfig(max_messages=32, max_delay=8.0),
        wire_accounting=True,
    )
    if variant == "legacy":
        cluster._note_issue = types.MethodType(_pre_obs_note_issue, cluster)
        cluster._apply_ready = types.MethodType(_pre_obs_apply_ready, cluster)
        cluster._apply_batch = types.MethodType(_pre_obs_apply_batch, cluster)
        transport = cluster.transport
        transport.send = types.MethodType(_pre_obs_send, transport)
        transport._flush_channel = types.MethodType(
            _pre_obs_flush_channel, transport)
        transport.record_delivery = types.MethodType(
            _pre_obs_record_delivery, transport)
        transport.record_batch_delivery = types.MethodType(
            _pre_obs_record_batch_delivery, transport)
    elif variant == "enabled":
        cluster.enable_tracing()
    return cluster


def _obs_overhead_time(variant: str, ops: int, repetitions: int = 5) -> float:
    """Best-of-N wall time of the end-to-end clique workload."""
    best = None
    for _ in range(repetitions):
        cluster = _obs_overhead_cluster(variant)
        workload = uniform_workload(
            cluster.share_graph, ops, write_fraction=1.0, seed=5)
        started = time.perf_counter()
        run_workload(cluster, workload, interleave_steps=0, check=False)
        elapsed = time.perf_counter() - started
        assert cluster.metrics.applies > 0
        if variant == "enabled":
            assert cluster.tracer is not None and cluster.tracer.events
        else:
            assert cluster.tracer is None
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_e19_observability_overhead(benchmark):
    """Acceptance: hooks cost ≤3% disabled, ≤2x enabled, on the E13 path."""
    ops = 60 if TINY else 300

    def compare():
        legacy = _obs_overhead_time("legacy", ops)
        disabled = _obs_overhead_time("disabled", ops)
        enabled = _obs_overhead_time("enabled", ops)
        return {
            "legacy_s": legacy,
            "disabled_s": disabled,
            "enabled_s": enabled,
            "disabled_ratio": disabled / legacy,
            "enabled_ratio": enabled / disabled,
        }

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(
        f"[E19] clique{CLIQUE_SIZE} end-to-end ({ops} writes): "
        f"pre-hook {result['legacy_s'] * 1000:.1f} ms, "
        f"tracing off {result['disabled_s'] * 1000:.1f} ms "
        f"({result['disabled_ratio']:.3f}x), "
        f"tracing on {result['enabled_s'] * 1000:.1f} ms "
        f"({result['enabled_ratio']:.2f}x of off)"
    )
    # 3% on a wall-clock ratio needs quiet hardware: shared CI runners get
    # slack for scheduler noise, and the tiny smoke instance (fixed costs
    # dominating a small run) only proves the gate executes.
    if TINY:
        disabled_ceiling, enabled_ceiling = 2.0, 5.0
    elif os.environ.get("GITHUB_ACTIONS"):
        disabled_ceiling, enabled_ceiling = 1.15, 2.5
    else:
        disabled_ceiling, enabled_ceiling = 1.03, 2.0
    write_bench_json(
        "observability_overhead",
        metric="pre_hook_speed_vs_tracing_disabled",
        value=1.0 / result["disabled_ratio"],
        threshold=1.0 / disabled_ceiling,
        legacy_ms=result["legacy_s"] * 1000,
        disabled_ms=result["disabled_s"] * 1000,
        enabled_ms=result["enabled_s"] * 1000,
        disabled_ratio=result["disabled_ratio"],
        enabled_ratio=result["enabled_ratio"],
        disabled_ceiling=disabled_ceiling,
        enabled_ceiling=enabled_ceiling,
        ops=ops,
        clique=CLIQUE_SIZE,
    )
    assert result["disabled_ratio"] <= disabled_ceiling, (
        f"tracing-disabled run must stay within {disabled_ceiling}x of the "
        f"pre-hook baseline, got {result['disabled_ratio']:.3f}x"
    )
    assert result["enabled_ratio"] <= enabled_ceiling, (
        f"tracing-enabled run must stay within {enabled_ceiling}x of "
        f"tracing-disabled, got {result['enabled_ratio']:.2f}x"
    )
