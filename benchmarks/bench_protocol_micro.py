"""E13 — Protocol micro-benchmarks: advance / merge / predicate / end-to-end.

Times the hot operations of the edge-indexed algorithm and a full end-to-end
simulated workload, so regressions in the protocol path are visible.
"""

from __future__ import annotations

from repro.core.replica import EdgeIndexedReplica
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import TimestampGraph
from repro.core.timestamps import EdgeTimestamp, advance, delivery_predicate, merge
from repro.sim.cluster import build_cluster
from repro.sim.delays import UniformDelay
from repro.sim.topologies import figure5_placement, random_partial_placement, ring_placement
from repro.sim.workloads import run_workload, uniform_workload


def test_e13_advance_speed(benchmark):
    """advance() on the Figure 5 system."""
    graph = ShareGraph.from_placement(figure5_placement())
    tgraph = TimestampGraph.build(graph, 4)
    tau = EdgeTimestamp.zero(tgraph.edges)
    benchmark(advance, graph, tgraph, tau, "y")


def test_e13_merge_speed(benchmark):
    """merge() between two ring-replica timestamps."""
    graph = ShareGraph.from_placement(ring_placement(8))
    tg1 = TimestampGraph.build(graph, 1)
    tg2 = TimestampGraph.build(graph, 2)
    tau1 = EdgeTimestamp.zero(tg1.edges)
    tau2 = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1), (2, 3)])
    benchmark(merge, tg1, tau1, tg2, tau2)


def test_e13_delivery_predicate_speed(benchmark):
    """Predicate J on a ring-replica pending update."""
    graph = ShareGraph.from_placement(ring_placement(8))
    tg1 = TimestampGraph.build(graph, 1)
    tg2 = TimestampGraph.build(graph, 2)
    tau1 = EdgeTimestamp.zero(tg1.edges)
    remote = EdgeTimestamp.zero(tg2.edges).incremented([(2, 1)])
    benchmark(delivery_predicate, tg1, tau1, 2, tg2, remote)


def test_e13_local_write_speed(benchmark):
    """A local write (advance + message construction) on a 10-replica system."""
    graph = ShareGraph.from_placement(
        random_partial_placement(10, 20, replication_factor=3, seed=1)
    )
    replica = EdgeIndexedReplica(graph, 1)
    register = sorted(replica.registers)[0]
    benchmark(replica.write, register, "value")


def test_e13_end_to_end_throughput(benchmark):
    """A 300-operation workload on the Figure 5 system, end to end."""
    graph = ShareGraph.from_placement(figure5_placement())

    def run():
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=3)
        return run_workload(cluster, uniform_workload(graph, 300, seed=3), check=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.messages_sent > 0
