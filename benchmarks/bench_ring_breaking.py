"""E10 — Restricted communication: breaking rings with virtual registers (Fig. 13).

Computes the metadata saved and the propagation-hop/relay-message cost of
breaking rings of several sizes into paths, plus the extreme hub (star)
restriction.  Expected shape: counters drop from 2n per replica to the node
degree, while the broken register's updates travel n-1 hops.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_ring_breaking, render_ring_breaking


def test_e10_ring_breaking_tradeoff(benchmark):
    """Metadata vs propagation-path trade-off across ring sizes."""
    rows = run_once(benchmark, exp_ring_breaking, (4, 6, 8, 12))
    print()
    print("[E10] Ring breaking via virtual registers")
    print(render_ring_breaking(rows))
    for row in rows:
        assert row["counters after"] < row["counters before"]
        assert row["max hops after"] >= row["max hops before"]
