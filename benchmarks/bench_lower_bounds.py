"""E6 — Lower bounds on timestamp size (Section 4) vs. the algorithm's sizes.

Regenerates the closed-form corollaries (tree, cycle, full replication) and
evaluates Theorem 15's conflict-graph bound explicitly on a small cycle,
checking that the algorithm's timestamps are tight.
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.analysis import (
    exp_conflict_bound,
    exp_lower_bounds,
    render_lower_bounds,
)


def test_e6_closed_form_bounds_are_tight(benchmark):
    """Tree / cycle / clique closed forms equal the algorithm's sizes."""
    rows = run_once(benchmark, exp_lower_bounds, 16)
    print()
    print("[E6] Closed-form lower bounds vs the algorithm")
    print(render_lower_bounds(rows))
    for row in rows:
        assert row.algorithm_bits == pytest.approx(row.lower_bound_bits)


def test_e6_conflict_graph_bound_matches_closed_form(benchmark):
    """Theorem 15 evaluated explicitly on a 3-cycle with m = 2."""
    result = run_once(benchmark, exp_conflict_bound, 2)
    print()
    print(
        f"[E6] Conflict-graph bound on {result.topology} (m={result.max_updates}): "
        f"{result.space_size} timestamps = {result.bits:.1f} bits; "
        f"closed form = {result.closed_form_bits:.1f} bits"
    )
    assert result.bits == pytest.approx(result.closed_form_bits)
