"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from the DESIGN.md index
(E1–E13).  The ``run_once`` helper wraps ``benchmark.pedantic`` so that heavy
end-to-end experiments are executed exactly once (their value is the table
they print, not a statistically tight timing), while micro-benchmarks use the
normal ``benchmark(...)`` calibration.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
