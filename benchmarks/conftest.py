"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from the DESIGN.md index
(E1–E13).  The ``run_once`` helper wraps ``benchmark.pedantic`` so that heavy
end-to-end experiments are executed exactly once (their value is the table
they print, not a statistically tight timing), while micro-benchmarks use the
normal ``benchmark(...)`` calibration.

Gated benchmarks also drop a machine-readable ``BENCH_<name>.json`` next to
the repo root via :func:`write_bench_json` — the CI benchmark job uploads
them as artifacts, so every push leaves a queryable perf record (value,
threshold, environment) without scraping test output.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Any, Dict, Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def write_bench_json(
    name: str,
    metric: str,
    value: float,
    threshold: Optional[float] = None,
    unit: str = "ratio",
    **extra: Any,
) -> Path:
    """Write ``BENCH_<name>.json``: one gate's machine-readable result.

    ``value`` is the measured number, ``threshold`` the floor the gate
    asserted against (``None`` for recorded-but-ungated metrics), and
    ``extra`` carries any auxiliary numbers worth keeping (raw timings,
    byte counts).  The file lands in the repo root, is gitignored, and is
    uploaded as a CI artifact by the benchmark job.
    """
    from repro._speedups import active_core

    payload: Dict[str, Any] = {
        "name": name,
        "metric": metric,
        "value": value,
        "threshold": threshold,
        "unit": unit,
        "passed": (threshold is None) or (value >= threshold),
        "environment": {
            "python": platform.python_version(),
            "core": active_core(),
            "tiny": bool(os.environ.get("REPRO_BENCH_TINY")),
            "ci": bool(os.environ.get("GITHUB_ACTIONS")),
        },
        "git_sha": _git_sha(),
    }
    if extra:
        payload["extra"] = extra
    path = _REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
