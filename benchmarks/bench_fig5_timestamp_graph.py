"""E1 — Figure 3 / Figure 5 worked examples: timestamp-graph construction.

Regenerates the edge sets the paper draws in Figure 5(b) (replica 1 tracks
``e_43`` but not ``e_34``) and times the timestamp-graph construction itself.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_figure5, render_figure5
from repro.core.share_graph import ShareGraph
from repro.core.timestamp_graph import build_all_timestamp_graphs
from repro.sim.topologies import figure3_placement, figure5_placement


def test_e1_figure5_edge_sets(benchmark):
    """Recompute the Figure 5 timestamp graphs and check the paper's asymmetry."""
    result = run_once(benchmark, exp_figure5)
    print()
    print("[E1] Figure 5 timestamp graphs")
    print(render_figure5(result))
    assert (4, 3) in result.replica1_edges
    assert (3, 4) not in result.replica1_edges
    assert (3, 2) in result.replica1_edges
    assert (2, 3) not in result.replica1_edges


def test_e1_figure3_edge_sets(benchmark):
    """The Figure 3 path needs only incident edges (no loops)."""
    graph = ShareGraph.from_placement(figure3_placement())
    graphs = run_once(benchmark, build_all_timestamp_graphs, graph)
    print()
    print("[E1] Figure 3 counters per replica:",
          {rid: tg.num_counters for rid, tg in sorted(graphs.items())})
    for rid, tg in graphs.items():
        assert tg.edges == graph.incident_edges(rid)


def test_e1_timestamp_graph_construction_speed(benchmark):
    """Micro-benchmark: building all timestamp graphs of the Figure 5 system."""
    graph = ShareGraph.from_placement(figure5_placement())
    benchmark(build_all_timestamp_graphs, graph)
