"""E2 / E3 — The Hélary–Milani counterexamples (Section 3.2, Appendix A).

Regenerates both counterexamples: the original minimal-hoop criterion demands
edges Theorem 8 proves unnecessary (counterexample 1), and the modified
criterion waives edges Theorem 8 proves necessary (counterexample 2).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_helary_milani, render_helary_milani
from repro.sim.topologies import COUNTEREXAMPLE_IDS


def test_e2_e3_counterexamples(benchmark):
    """Both counterexamples, as a head-to-head edge-set comparison."""
    results = run_once(benchmark, exp_helary_milani)
    print()
    print("[E2/E3] Hélary–Milani minimal hoops vs Theorem 8")
    print(render_helary_milani(results))

    j, k = COUNTEREXAMPLE_IDS["j"], COUNTEREXAMPLE_IDS["k"]
    original, modified = results

    # E2: the original criterion over-demands — the x-edges it asks replica i
    # to track are NOT in the Theorem-8 edge set.
    assert {(j, k), (k, j)} <= original.only_hoop
    assert original.only_theorem8 == frozenset()

    # E3: the modified criterion under-demands — Theorem 8 requires e_kj.
    assert (k, j) in modified.only_theorem8
