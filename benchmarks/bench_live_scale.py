"""E20 — Scale-out: 512 replicas on 8 multi-tenant nodes.

The acceptance run for the multi-tenant live runtime: the Figure 13 ring
at 512 replicas, co-hosted 64-per-node on 8 OS processes behind one
listener each.  Contiguous placement keeps ring neighbours on the same
node, so almost every channel short-circuits through the in-process
batch-apply path; only the 8 node-boundary edges ride TCP — and those
ride *multiplexed host-pair streams*, so the socket count is bounded by
ordered host pairs, not by the 1,024 directed channels of the share
graph.

Three gates:

* the run **completes and is causally consistent** — the same checker
  that validates the 8-replica clique validates the 512-replica ring;
* the **process count** stays at 8 and the **transport footprint** is
  O(hosts²), strictly below the directed-edge count O(|E|) that the
  connection-per-edge transport would have needed;
* cluster-wide **delivered ops/sec** is recorded (``BENCH_live_scale.json``).

Set ``REPRO_BENCH_TINY=1`` for the CI smoke instance (8 replicas on
2 nodes — the live-smoke matrix cell): the gate code always executes.
"""

from __future__ import annotations

import os

from conftest import run_once, write_bench_json

from repro.core.share_graph import ShareGraph
from repro.net import LiveCluster
from repro.net.client import OpenLoopClient
from repro.sim.topologies import ring_placement
from repro.sim.workloads import single_writer_workload

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
REPLICAS = 8 if TINY else 512
NODES = 2 if TINY else 8
#: Open-loop arrivals ≈ rate × duration; time_scale=0 fires them as fast
#: as the control links accept, so the schedule sets the mix, not the pacing.
RATE = 4.0 if TINY else 20.0
DURATION = 30.0 if TINY else 75.0


def _scale_run():
    graph = ShareGraph.from_placement(ring_placement(REPLICAS))
    workload = single_writer_workload(
        graph, rate=RATE, duration=DURATION, write_fraction=0.6, seed=20
    )
    # Diskless like bench_live: this bench measures placement + transport;
    # the SIGKILL/restart path owns durability (tests/test_net_live.py).
    with LiveCluster(graph, nodes=NODES) as cluster:
        outcome = OpenLoopClient(cluster).run(workload, time_scale=0.0)
        cluster.drain(timeout=120.0)
        result = cluster.collect(
            operation_latencies=outcome.latencies,
            rejected_operations=outcome.rejected,
        )
        result.wall_duration = max(
            (t for t in result.metrics.apply_times), default=0.0
        ) - min((t for t, _ in result.metrics.operation_times), default=0.0)
    return workload, outcome, result


def test_e20_live_scale_out(benchmark):
    """Acceptance: 512 consistent replicas on 8 processes, O(hosts²) sockets."""
    workload, outcome, result = run_once(benchmark, _scale_run)

    report = result.check_consistency()
    latency = result.operation_latency_summary()
    ops_per_sec = result.delivered_ops_per_sec

    hosts = len(result.node_reports)
    host_pairs = hosts * (hosts - 1)
    directed_edges = len(result.share_graph.edges)
    outbound = sum(
        node["transport"]["open_streams"]
        for node in result.node_reports.values()
    )
    print()
    print(f"E20: live {REPLICAS}-replica ring on {hosts} multi-tenant nodes")
    print(f"  arrivals          {len(workload)} "
          f"({workload.write_count} writes / {workload.read_count} reads)")
    print(f"  completed/rejected {outcome.completed}/{outcome.rejected}")
    print(f"  remote applies    {result.metrics.applies}")
    print(f"  wall duration     {result.wall_duration:.3f}s")
    print(f"  delivered ops/sec {ops_per_sec:,.0f}")
    print(f"  op latency p50    {latency.p50 * 1000:.2f} ms")
    print(f"  op latency p99    {latency.p99 * 1000:.2f} ms")
    print(f"  directed channels {directed_edges}")
    print(f"  outbound streams  {outbound} (host-pair budget {host_pairs})")
    print(f"  open connections  {result.open_connections()}")
    print(f"  consistency       "
          f"{'OK' if report.is_causally_consistent else 'VIOLATED'}")

    # Gate 1: the run completed — every operation answered, none rejected.
    assert outcome.ok and outcome.rejected == 0
    # Gate 2: the 512-replica live execution is causally consistent and
    # converged (single writer ⇒ a unique final value per register).
    assert report.is_causally_consistent, (
        f"safety: {report.safety_violations[:3]}, "
        f"liveness: {report.liveness_violations[:3]}"
    )
    for register, values in result.final_state().items():
        assert len(set(values.values())) == 1, (
            f"register {register} diverged: {values}"
        )
    # Gate 3: scale-out shape.  At most 8 OS processes host the cluster,
    # and the socket count is bounded by ordered host pairs — NOT by the
    # share graph's directed edge count, which is strictly larger.
    assert hosts <= 8 and REPLICAS / hosts >= 4
    assert outbound <= host_pairs, (
        f"{outbound} outbound streams exceed the {host_pairs} ordered "
        f"host pairs — a channel leaked past the multiplexer"
    )
    # Outbound + inbound + one control socket per node: still O(hosts²),
    # and far below what connection-per-edge would open.
    connection_budget = 2 * host_pairs + hosts
    assert result.open_connections() <= connection_budget < directed_edges

    assert result.metrics.applies > 0 and ops_per_sec > 0
    assert latency.count == outcome.completed and latency.p99 > 0
    write_bench_json(
        "live_scale",
        metric="delivered_ops_per_sec",
        value=ops_per_sec,
        threshold=None,
        unit="ops/s",
        replicas=REPLICAS,
        nodes=hosts,
        directed_edges=directed_edges,
        outbound_streams=outbound,
        open_connections=result.open_connections(),
        applies=result.metrics.applies,
        wall_duration_s=result.wall_duration,
        latency_p50_ms=latency.p50 * 1000,
        latency_p99_ms=latency.p99 * 1000,
    )
