"""E12 — The client–server architecture (Section 6 / Appendix E).

Computes the augmented timestamp graphs for a chain of servers accessed by
roaming clients and runs a simulated client–server workload.  Expected shape:
client links add loop edges the peer-to-peer deployment did not need (the
end-of-chain servers grow from 2 to 6 counters), client timestamps index the
union of their servers' edge sets, and the execution is causally consistent
under the ↪' relation.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import (
    exp_client_server,
    exp_open_loop,
    render_client_server,
    render_open_loop,
)


def test_e14_open_loop_both_architectures(benchmark):
    """Open-loop Poisson/bursty traffic on both architectures (E14).

    Expected shape: the same arrival schedule drains consistently on the
    peer-to-peer and the client–server deployment, with bursty traffic
    showing deeper peak pending buffers than Poisson at the same mean rate.
    """
    rows = run_once(benchmark, exp_open_loop)
    print()
    print("[E14] Open-loop workloads (Figure 5 graph, both architectures)")
    print(render_open_loop(rows))
    assert all(row.consistent for row in rows)
    assert {row.architecture for row in rows} == {"peer-to-peer", "client-server"}
    for row in rows:
        assert row.makespan >= 0
        assert row.apply_p99 >= row.apply_p50


def test_e12_client_server_architecture(benchmark):
    """Augmented metadata + a consistent simulated client–server run."""
    result = run_once(benchmark, exp_client_server, 4)
    print()
    print("[E12] Client–server architecture (Figure 3 chain + roaming clients)")
    print(render_client_server(result))
    assert result.consistent
    for rid, p2p in result.peer_to_peer_edge_counts.items():
        assert result.server_edge_counts[rid] >= p2p
    # The roaming client closes a cycle: the end servers now track more edges.
    assert result.server_edge_counts[1] > result.peer_to_peer_edge_counts[1]
    assert result.server_edge_counts[4] > result.peer_to_peer_edge_counts[4]
