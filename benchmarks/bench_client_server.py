"""E12 — The client–server architecture (Section 6 / Appendix E).

Computes the augmented timestamp graphs for a chain of servers accessed by
roaming clients and runs a simulated client–server workload.  Expected shape:
client links add loop edges the peer-to-peer deployment did not need (the
end-of-chain servers grow from 2 to 6 counters), client timestamps index the
union of their servers' edge sets, and the execution is causally consistent
under the ↪' relation.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_client_server, render_client_server


def test_e12_client_server_architecture(benchmark):
    """Augmented metadata + a consistent simulated client–server run."""
    result = run_once(benchmark, exp_client_server, 4)
    print()
    print("[E12] Client–server architecture (Figure 3 chain + roaming clients)")
    print(render_client_server(result))
    assert result.consistent
    for rid, p2p in result.peer_to_peer_edge_counts.items():
        assert result.server_edge_counts[rid] >= p2p
    # The roaming client closes a cycle: the end servers now track more edges.
    assert result.server_edge_counts[1] > result.peer_to_peer_edge_counts[1]
    assert result.server_edge_counts[4] > result.peer_to_peer_edge_counts[4]
