"""E11 — Bounded loop length: sacrificing causality for metadata (Appendix D).

Drops the ring-loop counters (tracking only loops of length ≤ 3) and runs the
bounded protocol under (a) loosely synchronous delays, where it remains
causally consistent, and (b) the adversarial Theorem-8 schedule, where the
missing counters translate into a real safety violation.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import exp_bounded_loops


def test_e11_bounded_loops_tradeoff(benchmark):
    """Counters saved; safe under loose synchrony, unsafe under the adversary."""
    result = run_once(benchmark, exp_bounded_loops, 6)
    print()
    print("[E11] Bounded loop length on", result.topology)
    print(f"  exact counters   : {result.exact_counters}")
    print(f"  bounded counters : {result.bounded_counters}")
    print(f"  loosely synchronous delays -> consistent = "
          f"{result.consistent_under_loose_synchrony}")
    print(f"  adversarial delays         -> consistent = "
          f"{result.consistent_under_adversary}")
    assert result.bounded_counters < result.exact_counters
    assert result.consistent_under_loose_synchrony
    assert not result.consistent_under_adversary
