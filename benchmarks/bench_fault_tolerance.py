"""E15 — Fault tolerance: crashes, recovery, partitions, lossy channels.

Drives the fault-injection subsystem (``repro.sim.faults``) through the
crash-rate × partition-duration sweep on both architectures, and gates the
fault-free fast path: with the fault hooks compiled into the kernel but no
injector attached, an open-loop run must not be measurably slower than the
same run was without the subsystem (the hooks are a single
``fault_injector is None`` check per event).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.analysis import exp_fault_tolerance, render_fault_tolerance
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import build_cluster
from repro.sim.delays import UniformDelay
from repro.sim.faults import FaultInjector
from repro.sim.topologies import figure5_placement
from repro.sim.workloads import poisson_workload, run_open_loop


def test_e15_fault_tolerance_sweep(benchmark):
    """Crash rate × partition duration → availability / recovery / staleness.

    Expected shape: availability and rejected operations degrade with the
    crash count, staleness (apply-latency tail) grows with the partition
    duration, recovery latency stretches when the partition overlaps the
    catch-up — and every cell stays causally consistent.
    """
    rows = run_once(benchmark, exp_fault_tolerance)
    print()
    print("[E15] Fault-tolerance sweep (Figure 5 graph, both architectures)")
    print(render_fault_tolerance(rows))
    assert all(row.consistent for row in rows)
    assert {row.architecture for row in rows} == {"peer-to-peer", "client-server"}
    fault_free = [r for r in rows if r.crashes == 0 and r.partition_duration == 0]
    faulty = [r for r in rows if r.crashes > 0]
    assert all(r.availability_min == 1.0 and r.rejected_operations == 0
               for r in fault_free)
    assert all(r.availability_min < 1.0 for r in faulty)
    assert all(r.recovery_max > 0 for r in faulty)
    # Staleness grows with the partition window (compare within architecture).
    for architecture in ("peer-to-peer", "client-server"):
        cells = {
            (r.crashes, r.partition_duration): r
            for r in rows
            if r.architecture == architecture
        }
        assert cells[(0, 30.0)].staleness_max > cells[(0, 0.0)].staleness_max


def _timed_open_loop(with_injector: bool, repetitions: int = 3) -> float:
    """Best-of-N wall time for one open-loop run, with/without fault hooks."""
    graph = ShareGraph.from_placement(figure5_placement())
    workload = poisson_workload(graph, rate=2.0, duration=200.0, seed=21)
    best = None
    for _ in range(repetitions):
        cluster = build_cluster(graph, delay_model=UniformDelay(1, 10), seed=21)
        if with_injector:
            # Attached but idle: sent-log on, no faults scheduled — the
            # worst fault-free configuration a user can run.
            FaultInjector(cluster)
        started = time.perf_counter()
        result = run_open_loop(cluster, workload, check=False)
        elapsed = time.perf_counter() - started
        assert result.messages_sent > 0
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_e15_fault_free_hot_path_unregressed(benchmark):
    """Acceptance gate: the fault hooks must not slow the fault-free path.

    Compares the same open-loop run with no injector against one with an
    idle injector attached.  The no-injector path exercises exactly the
    hooks added to the kernel (``fault_injector is None`` checks), so a
    large ratio here would mean the subsystem leaked cost into every
    simulation.  Generous floor: wall-clock ratios on ~100 ms runs are
    noisy on shared runners.
    """
    def compare():
        plain = _timed_open_loop(with_injector=False)
        idle_injector = _timed_open_loop(with_injector=True)
        return {"plain_s": plain, "idle_s": idle_injector,
                "ratio": idle_injector / plain}

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(
        f"[E15] fault-free open loop: plain {result['plain_s'] * 1000:.1f} ms, "
        f"idle injector {result['idle_s'] * 1000:.1f} ms, "
        f"ratio {result['ratio']:.2f}x"
    )
    assert result["ratio"] < 2.0, (
        f"idle fault hooks must not slow the fault-free path, got "
        f"{result['ratio']:.2f}x"
    )
