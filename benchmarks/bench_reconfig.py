"""E17 — Dynamic membership: churn rate × topology under open-loop load.

Drives the reconfiguration subsystem (``repro.sim.reconfig``) through the
churn × topology sweep on both architectures and gates its headline
contract on a larger run:

* **consistency across epochs** — a 64-replica open-loop run that adds 8
  replicas and removes 4 mid-run passes the epoch-aware consistency
  checker on both the peer-to-peer and the client–server architecture;
* **metadata step-change** — per-message timestamp bytes inside each epoch
  sit above the active configuration's closed-form bound (Theorem 12 on
  the tree topology) and step in the bound's direction after each change;
* **availability dips only during migration** — in a fault-free run every
  recorded downtime interval lies inside a migration window or a state
  transfer.

Set ``REPRO_BENCH_TINY=1`` to run the same gates on a small instance (CI
smoke: the gate *code* always executes, so the checks cannot silently rot
out of the pipeline).
"""

from __future__ import annotations

import math
import os

from conftest import run_once

from repro.analysis import exp_reconfiguration, render_reconfiguration
from repro.clientserver import ClientServerCluster
from repro.core.share_graph import ShareGraph
from repro.sim.cluster import Cluster
from repro.sim.delays import UniformDelay
from repro.sim.reconfig import ReconfigManager, random_churn_schedule
from repro.sim.topologies import tree_placement
from repro.sim.workloads import poisson_workload_dynamic, run_open_loop

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
ACCEPTANCE_SIZE = 16 if TINY else 64
ACCEPTANCE_JOINS = 3 if TINY else 8
ACCEPTANCE_LEAVES = 2 if TINY else 4
ACCEPTANCE_DURATION = 150.0 if TINY else 400.0
ACCEPTANCE_RATE = 0.3 if TINY else 0.8
SWEEP_DURATION = 120.0 if TINY else 300.0


def test_e17_reconfiguration_sweep(benchmark):
    """Churn rate × topology → metadata step, reconfig latency, availability.

    Expected shape: on the tree topology (leaf-attach churn) the
    closed-form bound applies at *every* epoch and the measured timestamp
    bytes per message step with it; windows and transfers have non-zero
    spans under churn; every cell stays causally consistent across epochs
    on both architectures.
    """
    rows = run_once(benchmark, exp_reconfiguration, duration=SWEEP_DURATION)
    print()
    print("[E17] Reconfiguration sweep (churn x topology, both architectures)")
    print(render_reconfiguration(rows))
    assert all(row.consistent for row in rows)
    assert {row.architecture for row in rows} == {"peer-to-peer", "client-server"}
    # The no-churn cells are the control: one epoch, full availability.
    control = [row for row in rows if row.churn == "none"]
    assert all(row.reconfigs == 0 and row.availability_min == 1.0 for row in control)
    churned = [row for row in rows if row.churn != "none"]
    assert any(row.reconfigs > 0 for row in churned)
    assert any(row.transfer_mean > 0 for row in churned)
    # Where a closed form applies and traffic flowed, measured timestamp
    # bytes per message sit above the bound.
    for row in rows:
        if row.messages and not math.isnan(row.bound_bytes_per_message):
            assert row.ts_bytes_per_message >= row.bound_bytes_per_message
    # Metadata step-change on the growing tree: the final epoch's graph
    # indexes more edges than the initial one, and both the bound and the
    # measured bytes/message move in that direction.
    tree_join_rows = sorted(
        (r for r in rows
         if r.topology == "tree9" and r.churn == "j2"
         and r.architecture == "peer-to-peer"),
        key=lambda r: r.epoch,
    )
    if len(tree_join_rows) > 1:
        first, last = tree_join_rows[0], tree_join_rows[-1]
        assert last.mean_edges >= first.mean_edges
        if first.messages and last.messages:
            assert last.ts_bytes_per_message > first.ts_bytes_per_message


def _acceptance_run(architecture: str, seed: int = 23):
    """The acceptance scenario: a big tree, 8 joins and 4 leaves mid-run."""
    placement = tree_placement(ACCEPTANCE_SIZE)
    graph = ShareGraph.from_placement(placement)
    if architecture == "peer-to-peer":
        host = Cluster(
            graph, delay_model=UniformDelay(1, 10), seed=seed,
            wire_accounting=True,
        )
    else:
        host = ClientServerCluster.with_colocated_clients(
            graph, delay_model=UniformDelay(1, 10), seed=seed,
            wire_accounting=True,
        )
    manager = ReconfigManager(host, window=4.0)
    schedule = random_churn_schedule(
        placement,
        ACCEPTANCE_DURATION,
        joins=ACCEPTANCE_JOINS,
        leaves=ACCEPTANCE_LEAVES,
        seed=seed,
        join_style="leaf",
    )
    manager.install(schedule)
    placements = schedule.placements_over(placement, window=4.0)
    workload = poisson_workload_dynamic(
        placements, rate=ACCEPTANCE_RATE, duration=ACCEPTANCE_DURATION, seed=seed,
    )
    result = run_open_loop(host, workload)
    return host, manager, result


def test_e17_acceptance_64_replica_churn(benchmark):
    """8 joins + 4 leaves on the 64-replica tree, both architectures.

    Gates: the epoch-aware checker passes, every epoch change committed,
    and — fault-free — every recorded downtime interval lies inside a
    migration window or a state transfer (availability dips only during
    migration).
    """
    def both():
        return {
            architecture: _acceptance_run(architecture)
            for architecture in ("peer-to-peer", "client-server")
        }

    runs = run_once(benchmark, both)
    print()
    for architecture, (host, manager, result) in runs.items():
        stats = host.transport.stats
        print(
            f"[E17 acceptance] {architecture}: "
            f"{host.metrics.reconfigs} reconfigs to epoch {host.epoch}, "
            f"{result.messages_sent} msgs, "
            f"{host.metrics.rejected_operations} rejected ops, "
            f"{stats.messages_rejected_stale_epoch} stale-epoch rejects, "
            f"consistency {'OK' if result.consistent else 'VIOLATED'}"
        )
        assert result.consistent
        assert host.metrics.reconfigs == ACCEPTANCE_JOINS + ACCEPTANCE_LEAVES
        assert host.epoch == ACCEPTANCE_JOINS + ACCEPTANCE_LEAVES
        # Availability dips only inside migration windows / transfers.
        covered = list(host.metrics.migration_windows)
        for record in host.metrics.reconfig_timeline:
            if record.kind == "transfer-start":
                covered.append((record.time, float("inf")))
        for replica_id, intervals in host.metrics.downtime.items():
            for down_at, up_at in intervals:
                assert any(
                    start <= down_at and up_at <= end if end != float("inf")
                    else start <= down_at
                    for start, end in covered
                ), f"downtime {down_at}-{up_at} at {replica_id} outside windows"
