"""E19 — Observability: traced runs across topology × architecture.

Runs :func:`repro.analysis.exp_observability` — the message-lifecycle
tracer on, clique and tree topologies, both architectures — and gates the
layer's headline contract:

* **chain coverage** — ≥99% of applied remote copies reconstruct their
  full issue→send→wire→deliver→apply chain from the recorded events;
* **breakdown sanity** — per-stage percentiles exist for every hop and
  end-to-end dominates each individual stage;
* **consistency** — tracing changes nothing: every traced cell still
  passes the causal-consistency checker.

The *cost* side of the contract (hooks ≤3% disabled, ≤2x enabled) is
gated next to the other hot-path benchmarks in
``bench_protocol_micro.py::test_e19_observability_overhead``.

Set ``REPRO_BENCH_TINY=1`` to shrink the workload (CI smoke).
"""

from __future__ import annotations

import os

from conftest import run_once, write_bench_json

from repro.analysis import exp_observability, render_observability

TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
RATE = 2.0 if TINY else 4.0
DURATION = 15.0 if TINY else 30.0


def test_e19_observability_matrix(benchmark):
    """Traced clique/tree × p2p/client-server: coverage ≥99% everywhere."""
    rows = run_once(benchmark, exp_observability, rate=RATE, duration=DURATION)
    print()
    print("[E19] Traced runs (topology x architecture)")
    print(render_observability(rows))

    assert len(rows) == 4
    assert {(r.architecture, r.topology) for r in rows} == {
        ("peer-to-peer", "clique"), ("client-server", "clique"),
        ("peer-to-peer", "tree"), ("client-server", "tree"),
    }
    worst = min(rows, key=lambda r: r.coverage)
    for row in rows:
        assert row.consistent, f"traced run inconsistent: {row}"
        assert row.applied > 0 and row.events > 0
        assert row.coverage >= 0.99, f"chain coverage below bar: {row}"
        assert row.end_to_end_p99 >= row.end_to_end_p50 > 0.0
        assert row.dominant_stage in (
            "issue→send", "batch window", "transport", "pending wait",
        )
    write_bench_json(
        "observability_matrix",
        metric="min_chain_coverage",
        value=worst.coverage,
        threshold=0.99,
        cells=len(rows),
        worst_cell=f"{worst.architecture}/{worst.topology}",
        total_events=sum(r.events for r in rows),
        total_applied=sum(r.applied for r in rows),
    )
