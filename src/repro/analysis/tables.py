"""Small text-table rendering helpers shared by benchmarks and examples.

The evaluation harness prints its results as plain fixed-width tables so that
``pytest benchmarks/ --benchmark-only -s`` and the example scripts produce
the rows recorded in ``EXPERIMENTS.md`` verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([_fmt(cell) for cell in row])
    widths = [max(len(r[c]) for r in str_rows) for c in range(len(headers))]
    lines = []
    for index, row in enumerate(str_rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_mapping(title: str, mapping: Mapping[Any, Any]) -> str:
    """Render a ``{key: value}`` mapping as a two-column table with a title."""
    body = render_table(["key", "value"], sorted(mapping.items(), key=lambda kv: str(kv[0])))
    return f"{title}\n{body}"


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, (tuple, frozenset, set, list)):
        return ", ".join(str(x) for x in sorted(cell, key=str))
    return str(cell)


def edge_label(edge: tuple) -> str:
    """Human-readable label for a directed edge, e.g. ``e_43``."""
    return f"e_{edge[0]}{edge[1]}"
