"""The evaluation harness: one function per experiment in DESIGN.md / EXPERIMENTS.md.

Every function is pure given its arguments (all randomness is seeded), returns
a plain data structure, and has a matching ``render_*`` helper producing the
text table recorded in ``EXPERIMENTS.md``.  The benchmark modules under
``benchmarks/`` call these functions so that the numbers in the benchmark
output, the experiment log and the tests all come from the same code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..baselines import (
    all_edges_factory,
    full_replication_factory,
    full_track_factory,
    hoop_tracking_factory,
    incident_only_factory,
)
from ..clientserver import (
    AugmentedShareGraph,
    ClientAssignment,
    ClientServerCluster,
    build_all_augmented_timestamp_edges,
    client_index_edges,
)
from ..adapt import AdaptiveController, ControllerConfig
from ..core.consistency import ConsistencyReport
from ..core.hoops import compare_with_theorem8
from ..core.protocol import CausalReplica
from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import Edge, ShareGraph
from ..core.timestamp_graph import TimestampGraph, build_all_timestamp_graphs, timestamp_edges
from ..lower_bounds import (
    algorithm_bits,
    algorithm_counters,
    clique_lower_bound_bits,
    cycle_lower_bound_bits,
    lower_bound_bits,
    timestamp_space_lower_bound,
    tree_lower_bound_bits,
)
from ..optimizations import (
    analyze_ring_breaking,
    analyze_star_restriction,
    bounded_factory,
    bounded_metadata_savings,
    compression_report,
    dummy_emulation_report,
    dummy_register_factory,
    full_replication_dummies,
    loop_cover_dummies,
)
from ..placement import (
    PlacementResult,
    PlacementSpec,
    placement_policies,
    score_placement,
)
from ..sim.cluster import Cluster, ReplicaFactory, edge_indexed_factory
from ..sim.delays import FixedDelay, PerChannelDelay, UniformDelay
from ..sim.engine import BatchingConfig, NetworkStats, SimulationHost
from ..sim.faults import (
    FaultInjector,
    FaultSchedule,
    crash,
    random_fault_schedule,
    restart,
)
from ..sim.metrics import (
    ComparisonRow,
    compare_protocols,
    edge_indexed_profile,
    full_replication_profile,
)
from ..sim.reconfig import ReconfigManager, random_churn_schedule
from ..sim.topologies import (
    COUNTEREXAMPLE_IDS,
    clique_placement,
    counterexample1_placement,
    counterexample2_placement,
    figure3_placement,
    figure5_placement,
    geo_replication_placement,
    grid_placement,
    pairwise_clique_placement,
    path_placement,
    random_partial_placement,
    ring_placement,
    star_placement,
    tree_placement,
    triangle_placement,
)
from ..sim.workloads import (
    OpenLoopWorkload,
    bursty_workload,
    causal_chain_workload,
    drifting_hotspot_workload,
    poisson_workload,
    poisson_workload_dynamic,
    run_open_loop,
    run_workload,
    uniform_workload,
)
from ..topo import Topology, geant_like, geo_regions
from .tables import edge_label, render_table


# ======================================================================
# E1 — Figure 3 / Figure 5 worked examples
# ======================================================================

@dataclass(frozen=True)
class Figure5Result:
    """Timestamp graphs of the Figure 5 example."""

    edge_sets: Mapping[ReplicaId, FrozenSet[Edge]]

    @property
    def replica1_edges(self) -> FrozenSet[Edge]:
        """``E_1``, the edge set the paper draws in Figure 5(b)."""
        return self.edge_sets[1]


def exp_figure5() -> Figure5Result:
    """Recompute the timestamp graphs of the paper's Figure 5 example (E1)."""
    graph = ShareGraph.from_placement(figure5_placement())
    return Figure5Result(
        edge_sets={rid: timestamp_edges(graph, rid) for rid in graph.replica_ids}
    )


def render_figure5(result: Figure5Result) -> str:
    """Text table of the Figure 5 edge sets."""
    rows = [
        (rid, len(edges), ", ".join(edge_label(e) for e in sorted(edges)))
        for rid, edges in sorted(result.edge_sets.items())
    ]
    return render_table(["replica", "|E_i|", "edges"], rows)


# ======================================================================
# E2 / E3 — Hélary–Milani counterexamples
# ======================================================================

@dataclass(frozen=True)
class HoopComparisonResult:
    """Theorem 8 vs. the (original or modified) minimal-hoop criterion at replica i."""

    name: str
    modified: bool
    theorem8_edges: FrozenSet[Edge]
    hoop_edges: FrozenSet[Edge]
    only_hoop: FrozenSet[Edge]
    only_theorem8: FrozenSet[Edge]


def exp_helary_milani() -> List[HoopComparisonResult]:
    """Recompute both counterexamples of Section 3.2 / Appendix A (E2, E3)."""
    results: List[HoopComparisonResult] = []
    observer = COUNTEREXAMPLE_IDS["i"]

    graph1 = ShareGraph.from_placement(counterexample1_placement())
    original = compare_with_theorem8(graph1, observer, modified=False)
    results.append(
        HoopComparisonResult(
            name="counterexample 1 (Fig. 6/8a), original minimal hoops",
            modified=False,
            theorem8_edges=original.theorem8_edges,
            hoop_edges=original.hoop_edges,
            only_hoop=original.only_hoop,
            only_theorem8=original.only_theorem8,
        )
    )

    graph2 = ShareGraph.from_placement(counterexample2_placement())
    modified = compare_with_theorem8(graph2, observer, modified=True)
    results.append(
        HoopComparisonResult(
            name="counterexample 2 (Fig. 8b), modified minimal hoops",
            modified=True,
            theorem8_edges=modified.theorem8_edges,
            hoop_edges=modified.hoop_edges,
            only_hoop=modified.only_hoop,
            only_theorem8=modified.only_theorem8,
        )
    )
    return results


def render_helary_milani(results: Sequence[HoopComparisonResult]) -> str:
    """Text table of the counterexample comparisons."""
    j, k = COUNTEREXAMPLE_IDS["j"], COUNTEREXAMPLE_IDS["k"]
    rows = []
    for r in results:
        rows.append(
            (
                r.name,
                len(r.theorem8_edges),
                len(r.hoop_edges),
                ", ".join(edge_label(e) for e in sorted(r.only_hoop & {(j, k), (k, j)})),
                ", ".join(edge_label(e) for e in sorted(r.only_theorem8 & {(j, k), (k, j)})),
            )
        )
    return render_table(
        [
            "case",
            "|E_i| (Thm 8)",
            "|hoop edges|",
            "x-edges only hoops demand",
            "x-edges only Thm 8 demands",
        ],
        rows,
    )


# ======================================================================
# E4 — Necessity: an oblivious protocol violates consistency
# ======================================================================

def oblivious_factory(missing: Mapping[ReplicaId, FrozenSet[Edge]]) -> ReplicaFactory:
    """A factory producing the paper's algorithm with selected edges dropped.

    ``missing`` maps replica ids to the timestamp-graph edges they must be
    made oblivious to; all other replicas run the exact algorithm.
    """

    def factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
        edges = timestamp_edges(graph, replica_id)
        if replica_id in missing:
            edges = edges - frozenset(missing[replica_id])
        tgraph = TimestampGraph.from_edges(graph, replica_id, edges)
        return EdgeIndexedReplica(graph, replica_id, timestamp_graph=tgraph)

    return factory


@dataclass(frozen=True)
class NecessityResult:
    """Outcome of one adversarial schedule under two protocols."""

    scenario: str
    paper_report: ConsistencyReport
    oblivious_report: ConsistencyReport

    @property
    def paper_ok(self) -> bool:
        """The exact algorithm stayed causally consistent."""
        return self.paper_report.is_causally_consistent

    @property
    def oblivious_violated(self) -> bool:
        """The oblivious protocol violated safety or liveness."""
        return not self.oblivious_report.is_causally_consistent


def _run_triangle_schedule(factory: ReplicaFactory) -> ConsistencyReport:
    """Theorem 8, Case 3 on the triangle: delay the direct dependency."""
    graph = ShareGraph.from_placement(triangle_placement())
    cluster = Cluster(graph, replica_factory=factory, delay_model=FixedDelay(1.0), seed=1)
    # Replica 1 writes z (shared with 3) but the 1 -> 3 channel is held back.
    cluster.network.hold(1, 3)
    cluster.write(1, "z", "z1")
    # Replica 1 then writes x (shared with 2); 2 applies it and writes y.
    cluster.write(1, "x", "x1")
    cluster.run_until_quiescent()
    cluster.write(2, "y", "y1")
    cluster.run_until_quiescent()
    # Now release the delayed direct update and drain.
    cluster.network.release_all()
    cluster.run_until_quiescent()
    return cluster.check_consistency()


def _run_figure5_schedule(factory: ReplicaFactory) -> ConsistencyReport:
    """Theorem 8, Case 3 on the Figure 5 loop ``(1, 2, 3, 4)`` for edge ``e_43``."""
    graph = ShareGraph.from_placement(figure5_placement())
    cluster = Cluster(graph, replica_factory=factory, delay_model=FixedDelay(1.0), seed=1)
    # u0: replica 4 writes z (edge e_43); the 4 -> 3 channel is held back.
    cluster.network.hold(4, 3)
    cluster.write(4, "z", "z0")
    # u1: replica 4 writes w (edge e_41, register not stored at 2 or 3).
    cluster.write(4, "w", "w1")
    cluster.run_until_quiescent()
    # u'0: replica 1 writes y (towards replica 2 along the l-side).
    cluster.write(1, "y", "y1")
    cluster.run_until_quiescent()
    # u'1: replica 2 writes x (towards replica 3 = l_s).
    cluster.write(2, "x", "x1")
    cluster.run_until_quiescent()
    # Finally deliver the held direct update and drain.
    cluster.network.release_all()
    cluster.run_until_quiescent()
    return cluster.check_consistency()


def exp_necessity() -> List[NecessityResult]:
    """Run the Theorem-8 adversarial schedules against exact and oblivious protocols (E4)."""
    results: List[NecessityResult] = []

    results.append(
        NecessityResult(
            scenario="triangle, replica 3 oblivious to e_12 (incident-only baseline)",
            paper_report=_run_triangle_schedule(edge_indexed_factory),
            oblivious_report=_run_triangle_schedule(incident_only_factory),
        )
    )

    fig5_oblivious = oblivious_factory({1: frozenset({(4, 3)})})
    results.append(
        NecessityResult(
            scenario="figure 5, replica 1 oblivious to loop edge e_43",
            paper_report=_run_figure5_schedule(edge_indexed_factory),
            oblivious_report=_run_figure5_schedule(fig5_oblivious),
        )
    )
    return results


def render_necessity(results: Sequence[NecessityResult]) -> str:
    """Text table of the necessity experiment."""
    rows = []
    for r in results:
        rows.append(
            (
                r.scenario,
                "consistent" if r.paper_ok else "VIOLATED",
                len(r.oblivious_report.safety_violations),
                len(r.oblivious_report.liveness_violations),
            )
        )
    return render_table(
        ["scenario", "paper algorithm", "oblivious safety viol.", "oblivious liveness viol."],
        rows,
    )


# ======================================================================
# E5 — Sufficiency: randomized executions over many topologies
# ======================================================================

@dataclass(frozen=True)
class SufficiencyResult:
    """Consistency verdicts of randomized runs of the paper's algorithm."""

    rows: Tuple[Tuple[str, int, int, bool], ...]

    @property
    def all_consistent(self) -> bool:
        """``True`` iff every run was causally consistent."""
        return all(row[3] for row in self.rows)


def standard_topologies() -> Dict[str, RegisterPlacement]:
    """The topology suite used by the sufficiency and overhead experiments."""
    return {
        "figure3": figure3_placement(),
        "figure5": figure5_placement(),
        "triangle": triangle_placement(),
        "ring6": ring_placement(6),
        "tree7": tree_placement(7),
        "star5": star_placement(5),
        "grid3x3": grid_placement(3, 3),
        "clique4": clique_placement(4),
        "pairwise4": pairwise_clique_placement(4),
        "random8": random_partial_placement(8, 12, replication_factor=3, seed=11),
        "geo3": geo_replication_placement(3, shards_per_dc=3, global_registers=2),
    }


def exp_sufficiency(ops_per_topology: int = 150, seeds: Sequence[int] = (1, 2, 3)) -> SufficiencyResult:
    """Randomized + chain workloads on the full topology suite (E5)."""
    rows: List[Tuple[str, int, int, bool]] = []
    for name, placement in standard_topologies().items():
        graph = ShareGraph.from_placement(placement)
        for seed in seeds:
            cluster = Cluster(graph, delay_model=UniformDelay(1, 20), seed=seed)
            workload = uniform_workload(graph, ops_per_topology, seed=seed)
            result = run_workload(cluster, workload, interleave_steps=1)
            rows.append((name, seed, result.messages_sent, result.consistent))
            chain_cluster = Cluster(graph, delay_model=UniformDelay(1, 20), seed=seed + 100)
            chain = causal_chain_workload(graph, num_chains=10, chain_length=4, seed=seed)
            chain_result = run_workload(chain_cluster, chain, interleave_steps=2)
            rows.append((f"{name}/chain", seed, chain_result.messages_sent, chain_result.consistent))
    return SufficiencyResult(rows=tuple(rows))


def render_sufficiency(result: SufficiencyResult) -> str:
    """Text table of the sufficiency experiment."""
    return render_table(
        ["topology", "seed", "messages", "causally consistent"],
        [(n, s, m, "yes" if ok else "NO") for n, s, m, ok in result.rows],
    )


# ======================================================================
# E6 — Lower bounds vs. the algorithm's timestamp sizes
# ======================================================================

@dataclass(frozen=True)
class LowerBoundRow:
    """One topology/replica row of the lower-bound tightness table."""

    topology: str
    replica_id: ReplicaId
    lower_bound_bits: float
    algorithm_bits: float
    algorithm_counters: int


def exp_lower_bounds(max_updates: int = 16) -> List[LowerBoundRow]:
    """Closed-form lower bounds vs. the algorithm's sizes (E6)."""
    rows: List[LowerBoundRow] = []

    tree = ShareGraph.from_placement(tree_placement(7))
    for rid in tree.replica_ids:
        rows.append(
            LowerBoundRow(
                topology="tree7",
                replica_id=rid,
                lower_bound_bits=tree_lower_bound_bits(tree, rid, max_updates),
                algorithm_bits=algorithm_bits(tree, rid, max_updates),
                algorithm_counters=algorithm_counters(tree, rid),
            )
        )

    for n in (4, 6, 8):
        ring = ShareGraph.from_placement(ring_placement(n))
        rid = 1
        rows.append(
            LowerBoundRow(
                topology=f"ring{n}",
                replica_id=rid,
                lower_bound_bits=cycle_lower_bound_bits(n, max_updates),
                algorithm_bits=algorithm_bits(ring, rid, max_updates),
                algorithm_counters=algorithm_counters(ring, rid),
            )
        )

    clique = ShareGraph.from_placement(clique_placement(5))
    rows.append(
        LowerBoundRow(
            topology="clique5 (full replication, after compression)",
            replica_id=1,
            lower_bound_bits=clique_lower_bound_bits(5, max_updates),
            algorithm_bits=compression_report(clique).compressed[1] * math.log2(max_updates),
            algorithm_counters=compression_report(clique).compressed[1],
        )
    )
    return rows


def render_lower_bounds(rows: Sequence[LowerBoundRow]) -> str:
    """Text table for the closed-form tightness comparison."""
    return render_table(
        ["topology", "replica", "lower bound (bits)", "algorithm (bits)", "algorithm (counters)"],
        [
            (r.topology, r.replica_id, r.lower_bound_bits, r.algorithm_bits, r.algorithm_counters)
            for r in rows
        ],
    )


@dataclass(frozen=True)
class ConflictBoundResult:
    """Theorem 15 evaluated explicitly on a small instance."""

    topology: str
    replica_id: ReplicaId
    max_updates: int
    space_size: int
    bits: float
    closed_form_bits: float


def exp_conflict_bound(max_updates: int = 2) -> ConflictBoundResult:
    """Explicit conflict-graph bound on a small ring, vs. the closed form (E6)."""
    n = 3
    graph = ShareGraph.from_placement(ring_placement(n))
    size, bits = timestamp_space_lower_bound(graph, 1, max_updates)
    return ConflictBoundResult(
        topology=f"ring{n}",
        replica_id=1,
        max_updates=max_updates,
        space_size=size,
        bits=bits,
        closed_form_bits=cycle_lower_bound_bits(n, max_updates),
    )


# ======================================================================
# E7 — Metadata overhead comparison across protocols
# ======================================================================

def protocol_suite() -> Dict[str, ReplicaFactory]:
    """The protocols compared in the metadata-overhead experiment."""
    return {
        "edge-indexed (paper)": edge_indexed_factory,
        "all share-graph edges": all_edges_factory,
        "full-track matrix": full_track_factory,
        "full replication (vector)": full_replication_factory,
        "hoop tracking (original)": hoop_tracking_factory,
    }


def exp_metadata_overhead(ops: int = 120, seed: int = 7) -> List[ComparisonRow]:
    """Per-protocol metadata and traffic across the topology suite (E7)."""
    rows: List[ComparisonRow] = []
    for name, placement in standard_topologies().items():
        graph = ShareGraph.from_placement(placement)
        workload = uniform_workload(graph, ops, seed=seed)
        rows.extend(
            compare_protocols(
                graph,
                protocol_suite(),
                workload,
                topology_name=name,
                delay_model=UniformDelay(1, 10),
                seed=seed,
            )
        )
    return rows


# ======================================================================
# E8 — Compression
# ======================================================================

def exp_compression() -> Dict[str, Tuple[int, int]]:
    """Uncompressed vs. compressed system-wide counters per topology (E8)."""
    out: Dict[str, Tuple[int, int]] = {}
    for name, placement in standard_topologies().items():
        graph = ShareGraph.from_placement(placement)
        report = compression_report(graph)
        out[name] = (report.total_uncompressed, report.total_compressed)
    return out


def render_compression(result: Mapping[str, Tuple[int, int]]) -> str:
    """Text table of the compression experiment."""
    rows = [
        (name, before, after, (before - after))
        for name, (before, after) in sorted(result.items())
    ]
    return render_table(["topology", "uncompressed", "compressed", "saved"], rows)


# ======================================================================
# E9 — Dummy registers
# ======================================================================

@dataclass(frozen=True)
class DummyTradeoffRow:
    """One row of the dummy-register trade-off table."""

    topology: str
    scheme: str
    mean_counters_before: float
    mean_counters_after: float
    mean_compressed_after: float
    extra_messages_per_round: int
    total_dummies: int


def exp_dummy_registers() -> List[DummyTradeoffRow]:
    """Static trade-off of the two dummy-register schemes (E9)."""
    rows: List[DummyTradeoffRow] = []
    for name in ("ring6", "figure5", "figure3"):
        placement = standard_topologies()[name]
        for scheme, builder in (
            ("full-replication emulation", full_replication_dummies),
            ("loop cover", loop_cover_dummies),
        ):
            assignment = builder(placement)
            report = dummy_emulation_report(assignment)
            rows.append(
                DummyTradeoffRow(
                    topology=name,
                    scheme=scheme,
                    mean_counters_before=report.mean_counters_before,
                    mean_counters_after=report.mean_counters_after,
                    mean_compressed_after=report.mean_compressed_after,
                    extra_messages_per_round=report.total_extra_messages_per_round,
                    total_dummies=report.total_dummies,
                )
            )
    return rows


def render_dummy_registers(rows: Sequence[DummyTradeoffRow]) -> str:
    """Text table of the dummy-register trade-off."""
    return render_table(
        [
            "topology",
            "scheme",
            "mean counters before",
            "after (uncompressed)",
            "after (compressed)",
            "extra msgs / write round",
            "dummy copies",
        ],
        [
            (
                r.topology,
                r.scheme,
                r.mean_counters_before,
                r.mean_counters_after,
                r.mean_compressed_after,
                r.extra_messages_per_round,
                r.total_dummies,
            )
            for r in rows
        ],
    )


def exp_dummy_registers_dynamic(ops: int = 100, seed: int = 5) -> Dict[str, Dict[str, float]]:
    """Run the loop-cover dummy scheme on the ring and measure the dynamic costs (E9)."""
    placement = ring_placement(6)
    graph = ShareGraph.from_placement(placement)
    workload = uniform_workload(graph, ops, seed=seed)

    base_cluster = Cluster(graph, delay_model=UniformDelay(1, 10), seed=seed)
    base = run_workload(base_cluster, workload)

    assignment = loop_cover_dummies(placement)
    augmented = ShareGraph.from_placement(assignment.augmented_placement())
    dummy_cluster = Cluster(
        augmented,
        replica_factory=dummy_register_factory(assignment),
        delay_model=UniformDelay(1, 10),
        seed=seed,
    )
    for operation in workload.operations:
        if operation.kind == "write":
            dummy_cluster.write(operation.replica_id, operation.register, operation.value)
        else:
            dummy_cluster.read(operation.replica_id, operation.register)
        dummy_cluster.step()
    dummy_cluster.run_until_quiescent()
    # Check against the ORIGINAL share graph: dummies carry no obligations.
    from ..core.consistency import ConsistencyChecker

    dummy_report = ConsistencyChecker(graph).check(
        dummy_cluster.events_by_replica(), check_liveness=True
    )
    return {
        "baseline": {
            "messages": float(base.messages_sent),
            "counters_shipped": float(base.metadata_counters_sent),
            "consistent": float(base.consistent),
        },
        "loop-cover dummies": {
            "messages": float(dummy_cluster.network.stats.messages_sent),
            "counters_shipped": float(dummy_cluster.network.stats.metadata_counters_sent),
            "consistent": float(dummy_report.is_causally_consistent),
        },
    }


# ======================================================================
# E10 — Ring breaking / restricted communication
# ======================================================================

def exp_ring_breaking(sizes: Sequence[int] = (4, 6, 8, 12)) -> List[Dict[str, Any]]:
    """Metadata vs. hop-count trade-off of breaking rings of several sizes (E10)."""
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        analysis = analyze_ring_breaking(n)
        rows.append(
            {
                "ring size": n,
                "counters before": analysis.total_counters_before,
                "counters after": analysis.total_counters_after,
                "saved": analysis.counters_saved,
                "max hops before": analysis.max_hops_before,
                "max hops after": analysis.max_hops_after,
                "extra relays per update": analysis.extra_relay_messages_per_update,
            }
        )
    star = analyze_star_restriction(8)
    rows.append(
        {
            "ring size": "8 (star hub)",
            "counters before": star.total_counters_before,
            "counters after": star.total_counters_after,
            "saved": star.counters_saved,
            "max hops before": star.max_hops_before,
            "max hops after": star.max_hops_after,
            "extra relays per update": star.extra_relay_messages_per_update,
        }
    )
    return rows


def render_ring_breaking(rows: Sequence[Mapping[str, Any]]) -> str:
    """Text table of the ring-breaking analysis."""
    headers = list(rows[0].keys()) if rows else []
    return render_table(headers, [[r[h] for h in headers] for r in rows])


# ======================================================================
# E11 — Bounded loop length
# ======================================================================

@dataclass(frozen=True)
class BoundedLoopsResult:
    """Metadata savings and consistency verdicts under bounded tracking."""

    topology: str
    max_loop_length: int
    exact_counters: int
    bounded_counters: int
    consistent_under_loose_synchrony: bool
    consistent_under_adversary: bool


def exp_bounded_loops(ring_size: int = 6) -> BoundedLoopsResult:
    """Bounded-loop tracking on a ring: safe with loose synchrony, unsafe without (E11)."""
    placement = ring_placement(ring_size)
    graph = ShareGraph.from_placement(placement)
    bound = 3  # track only triangles: drops all ring-loop counters
    savings = bounded_metadata_savings(graph, bound)
    factory = bounded_factory(bound)

    # Loose synchrony: every hop takes exactly one unit, so a chain of k hops
    # always arrives after the direct one-hop message it depends on.
    def run(delay_model, seed: int) -> bool:
        cluster = Cluster(graph, replica_factory=factory, delay_model=delay_model, seed=seed)
        workload = causal_chain_workload(graph, num_chains=12, chain_length=ring_size, seed=seed)
        result = run_workload(cluster, workload, interleave_steps=3)
        return result.consistent

    loose = run(FixedDelay(1.0), seed=2)

    # Adversarial: the Theorem-8 schedule around the whole ring with the
    # direct edge held back.  Replica `ring_size` is oblivious to the loop
    # edges, so it applies the chain's last update before the held update.
    cluster = Cluster(graph, replica_factory=factory, delay_model=FixedDelay(1.0), seed=3)
    cluster.network.hold(1, ring_size)
    cluster.write(1, f"ring_{ring_size}", "direct")  # shared by 1 and ring_size
    for hop in range(1, ring_size):
        cluster.write(hop, f"ring_{hop}", f"chain{hop}")
        cluster.run_until_quiescent()
    cluster.network.release_all()
    cluster.run_until_quiescent()
    adversarial_consistent = cluster.check_consistency().is_causally_consistent

    return BoundedLoopsResult(
        topology=f"ring{ring_size}",
        max_loop_length=bound,
        exact_counters=savings.total_exact,
        bounded_counters=savings.total_bounded,
        consistent_under_loose_synchrony=loose,
        consistent_under_adversary=adversarial_consistent,
    )


# ======================================================================
# E12 — Client–server architecture
# ======================================================================

@dataclass(frozen=True)
class ClientServerResult:
    """Augmented metadata sizes and a consistency verdict for a client–server run."""

    server_edge_counts: Mapping[ReplicaId, int]
    peer_to_peer_edge_counts: Mapping[ReplicaId, int]
    client_counter_counts: Mapping[str, int]
    consistent: bool


def exp_client_server(seed: int = 4) -> ClientServerResult:
    """Augmented timestamp graphs + a simulated client–server run (E12).

    Uses the Figure 3 path topology with a client spanning the two end
    replicas (which share no register): the client link adds a cycle to the
    augmented share graph, so servers must track loop edges a peer-to-peer
    deployment would not need.
    """
    placement = figure3_placement()
    graph = ShareGraph.from_placement(placement)
    clients = ClientAssignment.from_dict({"c1": {1, 4}, "c2": {2, 3}, "c3": {1, 2}})
    augmented = AugmentedShareGraph(graph, clients)
    augmented_edges = build_all_augmented_timestamp_edges(augmented)
    p2p_edges = {rid: timestamp_edges(graph, rid) for rid in graph.replica_ids}

    cluster = ClientServerCluster(graph, clients, delay_model=UniformDelay(1, 5), seed=seed)
    # c1 alternates between the two end replicas, propagating dependencies
    # across them; c2 and c3 add concurrent traffic.
    for round_index in range(6):
        cluster.client_write("c1", "x", f"x{round_index}", replica_id=1)
        cluster.client_write("c1", "z", f"z{round_index}", replica_id=4)
        cluster.client_write("c2", "y", f"y{round_index}", replica_id=2)
        cluster.client_read("c2", "z", replica_id=3)
        cluster.client_write("c3", "x", f"x'{round_index}", replica_id=2)
        cluster.client_read("c3", "x", replica_id=1)
    cluster.run_until_quiescent()
    report = cluster.check_consistency()

    return ClientServerResult(
        server_edge_counts={rid: len(edges) for rid, edges in augmented_edges.items()},
        peer_to_peer_edge_counts={rid: len(edges) for rid, edges in p2p_edges.items()},
        client_counter_counts=dict(cluster.client_metadata_sizes()),
        consistent=report.is_causally_consistent,
    )


# ======================================================================
# E14 — Open-loop traffic on both architectures
# ======================================================================

@dataclass(frozen=True)
class OpenLoopRow:
    """One architecture × arrival-process row of the open-loop experiment."""

    architecture: str
    process: str
    operations: int
    makespan: float
    apply_p50: float
    apply_p99: float
    peak_pending: int
    messages: int
    consistent: bool


def exp_open_loop(
    rate: float = 1.5,
    duration: float = 120.0,
    seed: int = 9,
) -> List[OpenLoopRow]:
    """Open-loop (Poisson and bursty) client traffic on both architectures (E14).

    The same arrival schedule drives the Figure 1a peer-to-peer cluster and
    the Figure 1b client–server cluster (one client pinned per replica) on
    the Figure 5 share graph, reporting the unified metrics pipeline:
    makespan, apply-latency percentiles and peak pending-buffer depth.
    """
    graph = ShareGraph.from_placement(figure5_placement())
    workloads: List[OpenLoopWorkload] = [
        poisson_workload(graph, rate=rate, duration=duration, seed=seed),
        bursty_workload(
            graph,
            burst_rate=4 * rate,
            idle_rate=rate / 4,
            burst_length=duration / 6,
            idle_length=duration / 6,
            duration=duration,
            seed=seed,
        ),
    ]
    rows: List[OpenLoopRow] = []
    for workload in workloads:
        hosts = (
            ("peer-to-peer", Cluster(graph, delay_model=UniformDelay(1, 10), seed=seed)),
            (
                "client-server",
                ClientServerCluster.with_colocated_clients(
                    graph, delay_model=UniformDelay(1, 10), seed=seed
                ),
            ),
        )
        for name, host in hosts:
            result = run_open_loop(
                host, workload, queue_sample_interval=duration / 24
            )
            rows.append(
                OpenLoopRow(
                    architecture=name,
                    process=workload.name,
                    operations=len(workload),
                    makespan=result.makespan,
                    apply_p50=result.apply_latency.p50,
                    apply_p99=result.apply_latency.p99,
                    peak_pending=max(result.max_pending.values(), default=0),
                    messages=result.messages_sent,
                    consistent=result.consistent,
                )
            )
    return rows


def render_open_loop(rows: Sequence[OpenLoopRow]) -> str:
    """Text table of the open-loop experiment."""
    return render_table(
        [
            "architecture",
            "process",
            "ops",
            "makespan",
            "apply p50",
            "apply p99",
            "peak pending",
            "msgs",
            "consistent",
        ],
        [
            (
                r.architecture,
                r.process,
                r.operations,
                f"{r.makespan:.1f}",
                f"{r.apply_p50:.1f}",
                f"{r.apply_p99:.1f}",
                r.peak_pending,
                r.messages,
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )


# ======================================================================
# E15 — Fault tolerance: crashes, recovery, partitions
# ======================================================================

@dataclass(frozen=True)
class FaultToleranceRow:
    """One architecture × fault-intensity cell of the E15 sweep."""

    architecture: str
    crashes: int
    partition_duration: float
    operations: int
    rejected_operations: int
    availability_min: float
    recovery_mean: float
    recovery_max: float
    staleness_p99: float
    staleness_max: float
    messages_lost_to_crash: int
    retransmissions: int
    consistent: bool


def _fault_tolerance_host(architecture: str, graph: ShareGraph,
                          seed: int) -> SimulationHost:
    if architecture == "peer-to-peer":
        return Cluster(graph, delay_model=UniformDelay(1, 10), seed=seed)
    return ClientServerCluster.with_colocated_clients(
        graph, delay_model=UniformDelay(1, 10), seed=seed
    )


def exp_fault_tolerance(
    rate: float = 1.0,
    duration: float = 120.0,
    crash_counts: Sequence[int] = (0, 1, 2),
    partition_durations: Sequence[float] = (0.0, 30.0),
    downtime: float = 20.0,
    seed: int = 15,
) -> List[FaultToleranceRow]:
    """Sweep crash count × partition duration on both architectures (E15).

    For every cell a seeded :func:`~repro.sim.faults.random_fault_schedule`
    (crash/restart pairs plus an optional mid-run partition window) is
    installed over the same Poisson open-loop workload on the Figure 5
    share graph, on both the peer-to-peer and the client–server cluster.
    Reported per cell: minimum per-replica availability, recovery latency
    (restart → caught up via anti-entropy resync), staleness (apply-latency
    p99/max — partition-crossing applies wait out the partition), rejected
    operations, and the consistency-checker verdict — causal consistency
    must hold through every fault schedule.
    """
    graph = ShareGraph.from_placement(figure5_placement())
    workload = poisson_workload(graph, rate=rate, duration=duration, seed=seed)
    rows: List[FaultToleranceRow] = []
    for crashes in crash_counts:
        for partition_duration in partition_durations:
            schedule = random_fault_schedule(
                graph.replica_ids,
                duration,
                crashes=crashes,
                downtime=downtime,
                partition_duration=partition_duration,
                partition_at=0.4 * duration,
                seed=seed + crashes,
                name=f"crashes{crashes}-part{partition_duration:g}",
            )
            for architecture in ("peer-to-peer", "client-server"):
                host = _fault_tolerance_host(architecture, graph, seed)
                injector = FaultInjector(host)
                injector.install(schedule)
                result = run_open_loop(host, workload)
                injector.finalize_downtime()
                # Fixed horizon: every cell is normalized over the same
                # workload window, so availabilities compare across cells
                # (a longer drain must not inflate the denominator).
                availability = host.metrics.availability(
                    duration, graph.replica_ids
                )
                recovery = host.metrics.recovery_latency_summary()
                rows.append(
                    FaultToleranceRow(
                        architecture=architecture,
                        crashes=crashes,
                        partition_duration=partition_duration,
                        operations=len(workload),
                        rejected_operations=host.metrics.rejected_operations,
                        availability_min=min(availability.values()),
                        recovery_mean=recovery.mean,
                        recovery_max=recovery.max,
                        staleness_p99=result.apply_latency.p99,
                        staleness_max=result.apply_latency.max,
                        messages_lost_to_crash=(
                            host.network.stats.messages_lost_to_crash
                        ),
                        retransmissions=host.network.stats.retransmissions,
                        consistent=result.consistent,
                    )
                )
    return rows


def render_fault_tolerance(rows: Sequence[FaultToleranceRow]) -> str:
    """Text table of the fault-tolerance sweep."""
    return render_table(
        [
            "architecture",
            "crashes",
            "partition",
            "ops",
            "rejected",
            "min avail",
            "recovery mean",
            "recovery max",
            "staleness p99",
            "staleness max",
            "lost",
            "resent",
            "consistent",
        ],
        [
            (
                r.architecture,
                r.crashes,
                f"{r.partition_duration:g}",
                r.operations,
                r.rejected_operations,
                f"{r.availability_min:.3f}",
                f"{r.recovery_mean:.1f}",
                f"{r.recovery_max:.1f}",
                f"{r.staleness_p99:.1f}",
                f"{r.staleness_max:.1f}",
                r.messages_lost_to_crash,
                r.retransmissions,
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )


# ======================================================================
# E16 — Bytes on the wire: codecs, delta encoding and batching windows
# ======================================================================

@dataclass(frozen=True)
class WireOverheadRow:
    """One topology × protocol × batching-window cell of the E16 sweep."""

    topology: str
    protocol: str
    #: ``"off"`` (wire accounting only) or ``"<max_messages>/<max_delay>"``.
    window: str
    messages: int
    batches: int
    header_bytes: int
    timestamp_bytes: int
    payload_bytes: int
    #: What the timestamp frames would have cost without delta encoding.
    timestamp_bytes_full: int
    #: The counter-based measure E7 reports, for direct comparison.
    counters_sent: int
    #: Mean measured bytes per shipped counter (ties bytes to E7's measure).
    bytes_per_counter: float
    #: Closed-form lower bound (Theorem 15 corollaries) in bytes per
    #: message, averaged over replicas; ``nan`` when no closed form applies.
    bound_bytes_per_message: float
    consistent: bool

    @property
    def total_bytes(self) -> int:
        """All bytes on the wire in this cell."""
        return self.header_bytes + self.timestamp_bytes + self.payload_bytes

    @property
    def delta_savings(self) -> float:
        """Fraction of full-encoding timestamp bytes saved by delta frames."""
        if not self.timestamp_bytes_full:
            return 0.0
        return 1.0 - self.timestamp_bytes / self.timestamp_bytes_full

    @property
    def timestamp_bytes_per_message(self) -> float:
        """Mean timestamp bytes shipped per update message."""
        if not self.messages:
            return 0.0
        return self.timestamp_bytes / self.messages


def wire_protocol_suite() -> Dict[str, ReplicaFactory]:
    """One protocol per wire family: edge / matrix / vector / hoop."""
    return {
        "edge-indexed (paper)": edge_indexed_factory,
        "full-track matrix": full_track_factory,
        "full replication (vector)": full_replication_factory,
        "hoop tracking (original)": hoop_tracking_factory,
    }


def wire_topologies() -> Dict[str, RegisterPlacement]:
    """The E16 topology axis: one tree, one cycle, one clique, one general."""
    return {
        "figure5": figure5_placement(),
        "tree7": tree_placement(7),
        "ring6": ring_placement(6),
        "clique4": clique_placement(4),
    }


def _workload_update_budget(workload) -> int:
    """``m``: the largest per-replica write count of a workload (min 2).

    The closed-form bounds charge each counter ``log2 m`` bits, where ``m``
    is the per-replica update budget; the workload's realised maximum is the
    tightest honest choice.  Accepts closed-loop workloads (``operations``)
    and open-loop ones (``arrivals`` of timed operations) so E16 and E17
    share one budget rule.
    """
    operations = getattr(workload, "operations", None)
    if operations is None:
        operations = [arrival.operation for arrival in workload.arrivals]
    writes: Dict[ReplicaId, int] = {}
    for operation in operations:
        if operation.kind == "write":
            writes[operation.replica_id] = writes.get(operation.replica_id, 0) + 1
    return max(2, max(writes.values(), default=2))


def exp_wire_overhead(
    ops: int = 150,
    seed: int = 11,
    windows: Sequence[Optional[Tuple[int, float]]] = (None, (8, 4.0), (32, 8.0)),
) -> List[WireOverheadRow]:
    """Measure real bytes-on-wire across topology × protocol × batch window (E16).

    Every cell replays the same uniform workload (same network seed) with
    wire accounting on; windowed cells run the batching transport with
    per-channel delta encoding.  Reported per cell: the header/timestamp/
    payload byte split, the no-delta counterfactual, the counter-based E7
    measure for the same traffic, and — where a closed form applies (trees,
    cycles, cliques) — the Theorem-15 lower bound converted to bytes per
    message.  The consistency checker must pass in every cell: batching and
    delta encoding are transport concerns and must not perturb the protocol.
    """
    rows: List[WireOverheadRow] = []
    for topology_name, placement in wire_topologies().items():
        graph = ShareGraph.from_placement(placement)
        workload = uniform_workload(graph, ops, seed=seed)
        budget = _workload_update_budget(workload)
        bounds = [
            bound
            for bound in (
                lower_bound_bits(graph, rid, budget) for rid in graph.replica_ids
            )
            if bound is not None
        ]
        bound_bytes = (sum(bounds) / len(bounds) / 8.0) if bounds else float("nan")
        for protocol_name, factory in wire_protocol_suite().items():
            for window in windows:
                if window is None:
                    cluster = Cluster(
                        graph,
                        replica_factory=factory,
                        delay_model=UniformDelay(1, 10),
                        seed=seed,
                        wire_accounting=True,
                    )
                    window_name = "off"
                else:
                    max_messages, max_delay = window
                    cluster = Cluster(
                        graph,
                        replica_factory=factory,
                        delay_model=UniformDelay(1, 10),
                        seed=seed,
                        batching=BatchingConfig(
                            max_messages=max_messages, max_delay=max_delay
                        ),
                    )
                    window_name = f"{max_messages}/{max_delay:g}"
                result = run_workload(cluster, workload)
                stats = cluster.network.stats
                counters = stats.metadata_counters_sent
                rows.append(
                    WireOverheadRow(
                        topology=topology_name,
                        protocol=protocol_name,
                        window=window_name,
                        messages=stats.messages_sent,
                        batches=stats.batches_sent,
                        header_bytes=stats.header_bytes_sent,
                        timestamp_bytes=stats.timestamp_bytes_sent,
                        payload_bytes=stats.payload_bytes_sent,
                        timestamp_bytes_full=stats.timestamp_bytes_full,
                        counters_sent=counters,
                        bytes_per_counter=(
                            stats.timestamp_bytes_sent / counters if counters else 0.0
                        ),
                        bound_bytes_per_message=bound_bytes,
                        consistent=result.consistent,
                    )
                )
    return rows


def render_wire_overhead(rows: Sequence[WireOverheadRow]) -> str:
    """Text table of the E16 sweep."""
    return render_table(
        [
            "topology",
            "protocol",
            "window",
            "msgs",
            "batches",
            "hdr B",
            "ts B",
            "payload B",
            "ts B (no delta)",
            "delta saved",
            "ctrs sent",
            "B/ctr",
            "bound B/msg",
            "ts B/msg",
            "consistent",
        ],
        [
            (
                r.topology,
                r.protocol,
                r.window,
                r.messages,
                r.batches,
                r.header_bytes,
                r.timestamp_bytes,
                r.payload_bytes,
                r.timestamp_bytes_full,
                f"{100 * r.delta_savings:.0f}%",
                r.counters_sent,
                f"{r.bytes_per_counter:.2f}",
                f"{r.bound_bytes_per_message:.1f}",
                f"{r.timestamp_bytes_per_message:.1f}",
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )


def render_wire_channels(stats: NetworkStats) -> str:
    """Per-channel byte breakdown of one run (wire accounting on)."""
    return render_table(
        ["channel", "msgs", "batches", "header B", "timestamp B", "payload B", "total B"],
        [
            (
                f"{sender}->{destination}",
                channel.messages,
                channel.batches,
                channel.header_bytes,
                channel.timestamp_bytes,
                channel.payload_bytes,
                channel.total_bytes,
            )
            for (sender, destination), channel in sorted(stats.per_channel.items())
        ],
    )


def render_client_server(result: ClientServerResult) -> str:
    """Text table of the client–server experiment."""
    rows = [
        (
            rid,
            result.peer_to_peer_edge_counts[rid],
            result.server_edge_counts[rid],
        )
        for rid in sorted(result.server_edge_counts)
    ]
    table = render_table(
        ["replica", "|E_i| peer-to-peer", "|Ê_i| client-server"], rows
    )
    clients = render_table(
        ["client", "counters"], sorted(result.client_counter_counts.items())
    )
    status = "consistent" if result.consistent else "VIOLATED"
    return f"{table}\n\n{clients}\n\nexecution: {status}"


# ======================================================================
# E17 — Dynamic membership: churn rate × topology under open-loop load
# ======================================================================

@dataclass(frozen=True)
class ReconfigurationRow:
    """One epoch segment of one (architecture × topology × churn) run."""

    architecture: str
    topology: str
    #: Churn level label, e.g. ``"j2/l1/e1"`` (joins/leaves/edge changes).
    churn: str
    epoch: int
    num_replicas: int
    #: Messages and timestamp bytes sent while this epoch was active.
    messages: int
    timestamp_bytes: int
    counters: int
    #: Mean ``|E_i|`` of the epoch's share graph (the metadata step E17
    #: expects the measured traffic to follow).
    mean_edges: float
    #: Closed-form lower bound (Theorem 12/13/15) in bytes per message,
    #: averaged over replicas; ``nan`` when no closed form applies.
    bound_bytes_per_message: float
    # -- run-level facts, repeated on each of the run's rows --------------
    reconfigs: int
    #: Mean migration-window span (window open → commit), simulated time.
    window_mean: float
    #: Mean state-transfer duration (commit → last bootstrap applied).
    transfer_mean: float
    rejected_operations: int
    #: Minimum availability over the final members (dips come only from
    #: migration windows and transfers in a fault-free run).
    availability_min: float
    consistent: bool

    @property
    def ts_bytes_per_message(self) -> float:
        """Mean timestamp bytes per message inside this epoch segment."""
        if not self.messages:
            return 0.0
        return self.timestamp_bytes / self.messages

    @property
    def counters_per_message(self) -> float:
        """Mean shipped counters per message inside this epoch segment."""
        if not self.messages:
            return 0.0
        return self.counters / self.messages


def _reconfig_latency_summary(metrics) -> Tuple[float, float]:
    """Mean window span and mean transfer duration from the run metrics."""
    windows = metrics.migration_windows
    window_mean = (
        sum(end - start for start, end in windows) / len(windows) if windows else 0.0
    )
    transfer_starts: Dict[str, float] = {}
    durations: List[float] = []
    for record in metrics.reconfig_timeline:
        if record.kind == "transfer-start":
            transfer_starts[record.detail.split(":")[0]] = record.time
        elif record.kind == "transfer-complete":
            started = transfer_starts.pop(record.detail, None)
            if started is not None:
                durations.append(record.time - started)
    transfer_mean = sum(durations) / len(durations) if durations else 0.0
    return window_mean, transfer_mean


def reconfig_topologies() -> Dict[str, RegisterPlacement]:
    """The E17 topology axis: a tree (closed-form bounds apply at every
    epoch, since churn joins leaves and removes degree-1 replicas) and the
    Figure 5 general graph (no closed form; edge churn included)."""
    return {
        "tree9": tree_placement(9),
        "figure5": figure5_placement(),
    }


def reconfig_churn_levels(topology: str) -> Dict[str, Tuple[int, int, int]]:
    """The E17 churn axis: (joins, leaves, edge changes) per run.

    The tree topology takes no edge changes — an added chord creates a
    cycle and forfeits the Theorem-12 closed form the tree column exists
    to track at every epoch; the general graph exercises edge churn (and
    the state transfer it triggers) instead.
    """
    if topology == "tree9":
        return {"none": (0, 0, 0), "j2": (2, 0, 0), "j2/l1": (2, 1, 0)}
    return {"none": (0, 0, 0), "j2": (2, 0, 0), "j2/l1/e1": (2, 1, 1)}


def exp_reconfiguration(
    rate: float = 0.4,
    duration: float = 300.0,
    window: float = 5.0,
    seed: int = 13,
) -> List[ReconfigurationRow]:
    """Sweep churn rate × topology on both architectures (E17).

    Every cell replays the same seeded churn schedule and the same
    membership-aware Poisson workload, with wire accounting on (full
    timestamp frames, no batching, so measured bytes compare directly
    against the closed-form bounds).  Reported per epoch segment: the
    traffic sent while that configuration was active and the
    configuration's own metadata measures — mean ``|E_i|`` and the
    Theorem 12/13/15 bound in bytes per message where one applies.  The
    consistency checker must pass across all epochs in every cell, and in
    a fault-free run every availability dip must sit inside a migration
    window or a state transfer.
    """
    rows: List[ReconfigurationRow] = []
    for topology_name, placement in reconfig_topologies().items():
        for churn_name, (joins, leaves, edges) in reconfig_churn_levels(
            topology_name
        ).items():
            # Trees use leaf-attach joins (closed-form bounds keep applying
            # at every epoch); the general graph uses group joins and edge
            # changes that replicate existing registers, exercising state
            # transfer.
            schedule = random_churn_schedule(
                placement,
                duration,
                joins=joins,
                leaves=leaves,
                edge_changes=edges,
                seed=seed,
                join_style="leaf" if topology_name == "tree9" else "group",
            )
            placements = schedule.placements_over(placement, window=window)
            workload = poisson_workload_dynamic(
                placements, rate=rate, duration=duration, seed=seed,
            )
            budget = _workload_update_budget(workload)
            graph = ShareGraph.from_placement(placement)
            for architecture in ("peer-to-peer", "client-server"):
                if architecture == "peer-to-peer":
                    host: SimulationHost = Cluster(
                        graph,
                        delay_model=UniformDelay(1, 10),
                        seed=seed,
                        wire_accounting=True,
                    )
                else:
                    host = ClientServerCluster.with_colocated_clients(
                        graph,
                        delay_model=UniformDelay(1, 10),
                        seed=seed,
                        wire_accounting=True,
                    )
                manager = ReconfigManager(host, window=window)
                manager.install(schedule)
                result = run_open_loop(host, workload)
                window_mean, transfer_mean = _reconfig_latency_summary(host.metrics)
                horizon = host.last_activity_time
                availability = host.metrics.availability(
                    horizon, host.share_graph.replica_ids
                )
                availability_min = min(availability.values()) if availability else 1.0
                for segment in manager.epoch_segments():
                    segment_graph: ShareGraph = segment["share_graph"]
                    bounds = [
                        bound
                        for bound in (
                            lower_bound_bits(segment_graph, rid, budget)
                            for rid in segment_graph.replica_ids
                        )
                        if bound is not None
                    ]
                    bound_bytes = (
                        sum(bounds) / len(bounds) / 8.0 if bounds else float("nan")
                    )
                    edge_counts = [
                        len(timestamp_edges(segment_graph, rid))
                        for rid in segment_graph.replica_ids
                    ]
                    rows.append(
                        ReconfigurationRow(
                            architecture=architecture,
                            topology=topology_name,
                            churn=churn_name,
                            epoch=segment["epoch"],
                            num_replicas=segment_graph.num_replicas,
                            messages=segment["messages"],
                            timestamp_bytes=segment["timestamp_bytes"],
                            counters=segment["counters"],
                            mean_edges=sum(edge_counts) / len(edge_counts),
                            bound_bytes_per_message=bound_bytes,
                            reconfigs=host.metrics.reconfigs,
                            window_mean=window_mean,
                            transfer_mean=transfer_mean,
                            rejected_operations=host.metrics.rejected_operations,
                            availability_min=availability_min,
                            consistent=result.consistent,
                        )
                    )
    return rows


def render_reconfiguration(rows: Sequence[ReconfigurationRow]) -> str:
    """Text table of the E17 sweep."""
    return render_table(
        [
            "arch",
            "topology",
            "churn",
            "epoch",
            "R",
            "msgs",
            "ts B",
            "ts B/msg",
            "ctr/msg",
            "mean |E_i|",
            "bound B/msg",
            "window",
            "transfer",
            "rejected",
            "avail min",
            "consistent",
        ],
        [
            (
                r.architecture,
                r.topology,
                r.churn,
                r.epoch,
                r.num_replicas,
                r.messages,
                r.timestamp_bytes,
                f"{r.ts_bytes_per_message:.1f}",
                f"{r.counters_per_message:.1f}",
                f"{r.mean_edges:.1f}",
                f"{r.bound_bytes_per_message:.1f}",
                f"{r.window_mean:.1f}",
                f"{r.transfer_mean:.1f}",
                r.rejected_operations,
                f"{r.availability_min:.3f}",
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )


# ======================================================================
# E19 — observability: traced runs, chain coverage, stage breakdown
# ======================================================================

@dataclass(frozen=True)
class ObservabilityRow:
    """One traced cell of the E19 matrix."""

    architecture: str
    topology: str
    events: int
    applied: int
    complete: int
    #: Fraction of applied remote copies whose full issue→apply chain
    #: reconstructs from the trace alone (acceptance bar: ≥ 0.99).
    coverage: float
    end_to_end_p50: float
    end_to_end_p99: float
    #: The dominant stage at p99 (where the latency budget actually goes).
    dominant_stage: str
    consistent: bool


def exp_observability(
    replicas: int = 8,
    rate: float = 4.0,
    duration: float = 30.0,
    seed: int = 19,
) -> List[ObservabilityRow]:
    """Traced runs across topology × architecture (E19).

    Every cell runs with the message-lifecycle tracer on and reduces the
    recorded events to the headline observability numbers: chain
    coverage (≥99% of applied remote copies must reconstruct their full
    issue→send→wire→deliver→apply chain), end-to-end p50/p99 in kernel
    time, and the stage that dominates the p99 budget.  The workload and
    batching match the differential harness, so the same traces feed
    ``tools/trace_report.py`` unchanged.

    ``replicas`` stays modest by default: both architectures here build
    the exact Definition 5 edge sets, which is exponential on cliques.
    """
    from ..obs import assemble_spans, complete_chains, coverage, stage_breakdown

    rows: List[ObservabilityRow] = []
    placements = {
        "clique": clique_placement(replicas),
        "tree": tree_placement(replicas),
    }
    for topology_name, placement in placements.items():
        graph = ShareGraph.from_placement(placement)
        workload = poisson_workload(
            graph, rate=rate, duration=duration, write_fraction=0.7, seed=seed
        )
        for architecture in ("peer-to-peer", "client-server"):
            if architecture == "peer-to-peer":
                host: SimulationHost = Cluster(
                    graph, seed=seed,
                    batching=BatchingConfig(max_messages=16, max_delay=2.0),
                )
            else:
                host = ClientServerCluster.with_colocated_clients(
                    graph, seed=seed,
                    batching=BatchingConfig(max_messages=16, max_delay=2.0),
                )
            recorder = host.enable_tracing()
            result = run_open_loop(host, workload)
            spans = assemble_spans(recorder.events)
            complete, applied = coverage(spans)
            chains = complete_chains(spans)
            breakdown = stage_breakdown(chains)
            hop_labels = [label for label in breakdown if label != "end-to-end"]
            dominant = max(hop_labels, key=lambda label: breakdown[label].p99)
            rows.append(ObservabilityRow(
                architecture=architecture,
                topology=topology_name,
                events=len(recorder.events),
                applied=applied,
                complete=complete,
                coverage=complete / applied if applied else 1.0,
                end_to_end_p50=breakdown["end-to-end"].p50,
                end_to_end_p99=breakdown["end-to-end"].p99,
                dominant_stage=dominant,
                consistent=result.consistent,
            ))
    return rows


def render_observability(rows: Sequence[ObservabilityRow]) -> str:
    """Text table of the E19 traced-run matrix."""
    return render_table(
        [
            "arch", "topology", "events", "applied", "complete",
            "coverage", "e2e p50", "e2e p99", "dominant stage", "consistent",
        ],
        [
            (
                r.architecture,
                r.topology,
                r.events,
                r.applied,
                r.complete,
                f"{r.coverage:.4f}",
                f"{r.end_to_end_p50:.2f}",
                f"{r.end_to_end_p99:.2f}",
                r.dominant_stage,
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )


# ======================================================================
# E21 — Placement policies on measured topologies
# ======================================================================

@dataclass(frozen=True)
class PlacementRow:
    """One topology × policy × protocol/architecture/fault cell of E21."""

    topology: str
    policy: str
    protocol: str
    architecture: str
    #: ``"none"`` or ``"kill:<region>"`` (crash every replica of the
    #: region mid-run, restart after the outage window).
    fault: str
    share_edges: int
    #: Mean per-replica counter count |E_i| of the emitted share graph.
    counters_mean: float
    messages: int
    #: Measured timestamp bytes per wire message.
    ts_bytes_per_msg: float
    #: Theorem-15 closed-form bound in bytes/replica where one applies
    #: (mean over replicas with a closed form; NaN on general graphs).
    bound_bytes: float
    #: Static prediction: p99 share-edge latency of the placement (ms).
    predicted_edge_p99: float
    #: Measured apply-latency p99 over the run (ms).
    apply_p99: float
    availability_min: float
    #: Worst-case fraction of registers surviving any single-region kill.
    region_survival: float
    consistent: bool


def placement_topologies() -> Dict[str, Topology]:
    """The E21 topology axis: one measured map, one parametric geo map."""
    return {
        "geant-like": geant_like(),
        "geo-3x4": geo_regions(3, 4),
    }


def _placement_victim_region(result: PlacementResult) -> str:
    """The region whose kill hurts most: most replicas, ties by name."""
    regions = sorted({result.region_of(rid) for rid in result.assignment})
    return max(regions, key=lambda r: (len(result.replicas_in_region(r)), r))


def exp_placement(
    rate: float = 4.0,
    duration: float = 40.0,
    num_replicas: int = 10,
    num_registers: int = 16,
    replication_factor: int = 2,
    capacity: int = 6,
    jitter: float = 0.1,
    seed: int = 21,
    topologies: Optional[Mapping[str, Topology]] = None,
    region_kill: bool = True,
) -> List[PlacementRow]:
    """Sweep placement policy × topology × protocol/architecture (E21).

    For every topology and policy the placement layer emits a share graph
    plus a node assignment; the same seeded Poisson workload then runs
    over :class:`~repro.topo.LatencyDelayModel` delays in four cells —
    edge-indexed and full-track peer-to-peer, edge-indexed client–server,
    and (with ``region_kill``) edge-indexed peer-to-peer through a
    region-kill fault (crash every replica of the placement's most-loaded
    region at 40% of the run, restart at 65%).  Reported per cell: the
    emitted share graph's counter cost and measured timestamp bytes per
    message against the closed-form bound, static predicted edge p99
    versus measured apply p99, fixed-horizon availability, and the
    region-survival score.  Consistency must hold in every cell,
    including through the region kill.
    """
    all_rows: List[PlacementRow] = []
    protocols: Dict[str, ReplicaFactory] = {
        "edge-indexed": edge_indexed_factory,
        "full-track": full_track_factory,
    }
    for topology_name, topology in (topologies or placement_topologies()).items():
        spec = PlacementSpec.make(
            topology,
            num_replicas=num_replicas,
            num_registers=num_registers,
            replication_factor=replication_factor,
            capacity=capacity,
        )
        for policy_name, policy in placement_policies().items():
            result = policy.place(spec, seed=seed)
            graph = result.share_graph
            workload = poisson_workload(
                graph, rate=rate, duration=duration,
                write_fraction=0.5, seed=seed,
            )
            score = score_placement(
                result, max_updates=_workload_update_budget(workload)
            )
            bound_bytes = (
                score.bound_bytes_mean
                if score.bound_bytes_mean is not None
                else float("nan")
            )

            def run_cell(protocol: str, architecture: str,
                         fault: str, host: SimulationHost) -> PlacementRow:
                injector = None
                if fault != "none":
                    region = fault.split(":", 1)[1]
                    victims = result.replicas_in_region(region)
                    injector = FaultInjector(host)
                    injector.install(FaultSchedule(
                        name=fault,
                        actions=tuple(
                            [crash(0.4 * duration, rid) for rid in victims]
                            + [restart(0.65 * duration, rid) for rid in victims]
                        ),
                    ))
                run_result = run_open_loop(host, workload)
                if injector is not None:
                    injector.finalize_downtime()
                # Fixed horizon, as in E15: availabilities compare across
                # cells regardless of how long each run drains.
                availability = host.metrics.availability(
                    duration, graph.replica_ids
                )
                stats = host.network.stats
                return PlacementRow(
                    topology=topology_name,
                    policy=policy_name,
                    protocol=protocol,
                    architecture=architecture,
                    fault=fault,
                    share_edges=score.share_edges,
                    counters_mean=score.counters_mean,
                    messages=stats.messages_sent,
                    ts_bytes_per_msg=(
                        stats.timestamp_bytes_sent / stats.messages_sent
                        if stats.messages_sent else 0.0
                    ),
                    bound_bytes=bound_bytes,
                    predicted_edge_p99=score.edge_latency_p99,
                    apply_p99=run_result.apply_latency.p99,
                    availability_min=min(availability.values()),
                    region_survival=score.region_survival_min,
                    consistent=run_result.consistent,
                )

            for protocol_name, factory in protocols.items():
                all_rows.append(run_cell(
                    protocol_name, "peer-to-peer", "none",
                    Cluster(
                        graph,
                        replica_factory=factory,
                        delay_model=result.delay_model(jitter=jitter),
                        seed=seed,
                        wire_accounting=True,
                    ),
                ))
            all_rows.append(run_cell(
                "edge-indexed", "client-server", "none",
                ClientServerCluster.with_colocated_clients(
                    graph,
                    delay_model=result.delay_model(jitter=jitter),
                    seed=seed,
                    wire_accounting=True,
                ),
            ))
            if region_kill:
                fault = f"kill:{_placement_victim_region(result)}"
                all_rows.append(run_cell(
                    "edge-indexed", "peer-to-peer", fault,
                    Cluster(
                        graph,
                        replica_factory=edge_indexed_factory,
                        delay_model=result.delay_model(jitter=jitter),
                        seed=seed,
                        wire_accounting=True,
                    ),
                ))
    return all_rows


@dataclass(frozen=True)
class AdaptiveRow:
    """One policy cell of E22 (the ``adaptive`` row is the controller)."""

    policy: str
    adaptive: bool
    #: Committed reconfiguration epochs / controller plans installed.
    reconfigs: int
    plans: int
    #: Whether the controller pulled the delta-encoding lever.
    compressed: bool
    messages: int
    ts_bytes_per_msg: float
    apply_p99: float
    apply_mean: float
    consistent: bool


def _home_map(result: PlacementResult) -> Dict[ReplicaId, Register]:
    """One distinct *home* register per replica, from its own stored set.

    The drifting-hotspot workload writes only at home registers, so homes
    must be a system of distinct representatives — computed by augmenting
    paths (deterministic: replicas and registers visited in sorted
    order).  Greedy first-fit is not enough: a later replica's whole
    stored set may already be claimed by earlier replicas.
    """
    placement = result.placement
    match: Dict[Register, ReplicaId] = {}

    def try_assign(rid: ReplicaId, visited: set) -> bool:
        for register in sorted(placement.registers_at(rid)):
            if register in visited:
                continue
            visited.add(register)
            if register not in match or try_assign(match[register], visited):
                match[register] = rid
                return True
        return False

    for rid in sorted(placement.replica_ids):
        if not try_assign(rid, set()):
            raise ValueError(
                f"no distinct home register for replica {rid!r}: "
                "placement has no perfect replica->register matching"
            )
    return {rid: register for register, rid in match.items()}


def drifting_writer_groups(result: PlacementResult) -> List[List[ReplicaId]]:
    """The workload's rotating writer groups: one per topology region."""
    regions = sorted({result.region_of(rid) for rid in result.assignment})
    return [sorted(result.replicas_in_region(region)) for region in regions]


def adaptive_controller_config() -> ControllerConfig:
    """The tuned E22 controller: fast sensing, small margin, short windows.

    The loop must react within a small fraction of one hotspot phase
    (``duration / rotations`` simulated time), so it samples every 1.5,
    arms after two hot windows and rate-limits to one plan per 5; the
    compression lever triggers once sustained timestamp bytes/msg exceed
    a level every uncompressed cell comfortably exceeds.
    """
    return ControllerConfig(
        interval=1.5,
        window=2,
        cooldown=5.0,
        margin=0.02,
        max_moves=3,
        min_writes=3,
        arm=2,
        dominance_rise=0.4,
        dominance_fall=0.25,
        compress_bytes_per_msg=18.0,
        reconfig_window=0.15,
    )


def exp_adaptive(
    rate: float = 3.0,
    duration: float = 720.0,
    rotations: int = 12,
    num_replicas: int = 10,
    num_registers: int = 16,
    replication_factor: int = 2,
    capacity: int = 6,
    jitter: float = 0.05,
    seed: int = 22,
    topology: Optional[Topology] = None,
    base_policy: str = "latency-greedy",
    config: Optional[ControllerConfig] = None,
) -> List[AdaptiveRow]:
    """Adaptive reconfiguration vs. every static placement (E22).

    A drifting-hotspot workload (the writer set rotates across topology
    regions every ``duration / rotations``) runs on a GEANT-like map in
    four cells: each static placement policy as-is, plus an *adaptive*
    cell that starts from ``base_policy``'s placement and leaves an
    :class:`~repro.adapt.AdaptiveController` attached.  The controller
    senses the drift, attracts hot registers' copies toward their current
    writers through bounded epoch reconfigurations, and pulls the
    delta-encoding lever once timestamp bytes/msg stay high — so the
    adaptive cell must beat **every** static on both measured timestamp
    bytes per message and apply-latency p99, with consistency holding
    through every controller-issued reconfiguration (the E22 gate,
    enforced by ``benchmarks/bench_adaptive.py``).
    """
    topology = topology or geant_like()
    spec = PlacementSpec.make(
        topology,
        num_replicas=num_replicas,
        num_registers=num_registers,
        replication_factor=replication_factor,
        capacity=capacity,
    )
    policies = placement_policies()
    if base_policy not in policies:
        raise ValueError(f"unknown base policy {base_policy!r}")

    def run_cell(name: str, result: PlacementResult,
                 adaptive: bool) -> AdaptiveRow:
        home = _home_map(result)
        workload = drifting_hotspot_workload(
            home, drifting_writer_groups(result), rate=rate,
            duration=duration, rotations=rotations, seed=seed,
        )
        host = Cluster(
            result.share_graph,
            replica_factory=edge_indexed_factory,
            delay_model=result.delay_model(jitter=jitter),
            seed=seed,
            wire_accounting=True,
        )
        controller = None
        if adaptive:
            pinned = {register: rid for rid, register in home.items()}
            controller = AdaptiveController(
                host, result, pinned=pinned,
                config=config or adaptive_controller_config(),
            ).attach()
        run_result = run_open_loop(host, workload)
        stats = host.network.stats
        return AdaptiveRow(
            policy=name,
            adaptive=adaptive,
            reconfigs=host.metrics.reconfigs,
            plans=controller.plans_installed if controller else 0,
            compressed=bool(controller and controller.compressed),
            messages=stats.messages_sent,
            ts_bytes_per_msg=(
                stats.timestamp_bytes_sent / stats.messages_sent
                if stats.messages_sent else 0.0
            ),
            apply_p99=run_result.apply_latency.p99,
            apply_mean=run_result.apply_latency.mean,
            consistent=run_result.consistent,
        )

    rows = [
        run_cell(name, policy.place(spec, seed=seed), adaptive=False)
        for name, policy in policies.items()
    ]
    rows.append(run_cell(
        "adaptive", policies[base_policy].place(spec, seed=seed),
        adaptive=True,
    ))
    return rows


def render_adaptive(rows: Sequence[AdaptiveRow]) -> str:
    """Text table of the E22 sweep."""
    return render_table(
        [
            "policy", "adaptive", "reconfigs", "plans", "compressed",
            "msgs", "tsB/msg", "apply p99", "apply mean", "consistent",
        ],
        [
            (
                r.policy,
                "yes" if r.adaptive else "no",
                r.reconfigs,
                r.plans,
                "yes" if r.compressed else "no",
                r.messages,
                f"{r.ts_bytes_per_msg:.1f}",
                f"{r.apply_p99:.2f}",
                f"{r.apply_mean:.2f}",
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )


def render_placement(rows: Sequence[PlacementRow]) -> str:
    """Text table of the E21 sweep."""
    return render_table(
        [
            "topology", "policy", "protocol", "arch", "fault", "edges",
            "counters", "msgs", "tsB/msg", "boundB", "pred p99",
            "apply p99", "min avail", "survival", "consistent",
        ],
        [
            (
                r.topology,
                r.policy,
                r.protocol,
                r.architecture,
                r.fault,
                r.share_edges,
                f"{r.counters_mean:.1f}",
                r.messages,
                f"{r.ts_bytes_per_msg:.1f}",
                f"{r.bound_bytes:.1f}",
                f"{r.predicted_edge_p99:.1f}",
                f"{r.apply_p99:.1f}",
                f"{r.availability_min:.3f}",
                f"{r.region_survival:.2f}",
                "yes" if r.consistent else "NO",
            )
            for r in rows
        ],
    )
