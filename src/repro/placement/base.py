"""Placement problem statement, result container and policy interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..core.errors import PlacementError
from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..core.share_graph import ShareGraph
from ..topo.delays import LatencyDelayModel
from ..topo.model import NodeId, Topology

__all__ = ["PlacementPolicy", "PlacementResult", "PlacementSpec"]


@dataclass(frozen=True)
class PlacementSpec:
    """What a placement policy must realise on a topology.

    Parameters
    ----------
    topology:
        The measured network to place onto.
    num_replicas:
        Replica budget; each replica is pinned to its own topology node,
        so this may not exceed the node count.
    registers:
        The register names to place.
    replication_factor:
        Copies per register the policy must place (before any repair
        copies needed for coverage/connectivity), between 1 and
        ``num_replicas``.
    capacity:
        Maximum registers a single replica may store, or ``None`` for
        unbounded.  The budget must leave slack for the repair copies
        that guarantee every replica stores a register and the share
        graph is connected (at most ``num_replicas - 1`` extra copies).
    """

    topology: Topology
    num_replicas: int
    registers: Tuple[Register, ...]
    replication_factor: int = 2
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "registers", tuple(dict.fromkeys(str(r) for r in self.registers))
        )
        if self.num_replicas < 1:
            raise PlacementError(
                f"need at least one replica, got {self.num_replicas}"
            )
        if self.num_replicas > self.topology.num_nodes:
            raise PlacementError(
                f"{self.num_replicas} replicas do not fit on topology "
                f"{self.topology.name!r} with {self.topology.num_nodes} nodes "
                "(each replica is pinned to its own node)"
            )
        if not self.registers:
            raise PlacementError("need at least one register to place")
        if not 1 <= self.replication_factor <= self.num_replicas:
            raise PlacementError(
                f"replication factor {self.replication_factor} must be in "
                f"[1, {self.num_replicas}]"
            )
        if self.capacity is not None:
            needed = (
                len(self.registers) * self.replication_factor
                + max(0, self.num_replicas - 1)
            )
            if self.capacity < 1:
                raise PlacementError(f"capacity must be >= 1, got {self.capacity}")
            if self.capacity * self.num_replicas < needed:
                raise PlacementError(
                    f"capacity {self.capacity} x {self.num_replicas} replicas "
                    f"< {needed} register copies "
                    f"({len(self.registers)} registers x rf "
                    f"{self.replication_factor} plus connectivity slack)"
                )

    @classmethod
    def make(
        cls,
        topology: Topology,
        num_replicas: int,
        num_registers: int,
        replication_factor: int = 2,
        capacity: Optional[int] = None,
    ) -> "PlacementSpec":
        """Spec with auto-named registers ``x00, x01, …``."""
        width = max(2, len(str(max(0, num_registers - 1))))
        return cls(
            topology=topology,
            num_replicas=num_replicas,
            registers=tuple(f"x{k:0{width}d}" for k in range(num_registers)),
            replication_factor=replication_factor,
            capacity=capacity,
        )

    @property
    def replica_ids(self) -> Tuple[ReplicaId, ...]:
        """The replica ids a policy must assign: ``1..num_replicas``."""
        return tuple(range(1, self.num_replicas + 1))


@dataclass(frozen=True)
class PlacementResult:
    """A realised placement: replicas on nodes, registers on replicas.

    ``assignment`` pins each replica id to a distinct topology node;
    ``placement`` is the register map whose induced share graph the
    protocol runs.  Everything downstream (delay model, live-cluster
    placement, availability regions) derives from these two maps.
    """

    spec: PlacementSpec
    policy: str
    seed: int
    assignment: Mapping[ReplicaId, NodeId]
    placement: RegisterPlacement

    def __post_init__(self) -> None:
        assignment = dict(self.assignment)
        expected = set(self.spec.replica_ids)
        if set(assignment) != expected:
            raise PlacementError(
                f"assignment covers replicas {sorted(assignment)}, "
                f"spec requires {sorted(expected)}"
            )
        nodes = list(assignment.values())
        if len(set(nodes)) != len(nodes):
            raise PlacementError(
                "assignment maps two replicas to the same topology node"
            )
        for rid, node in assignment.items():
            if not self.spec.topology.has_node(node):
                raise PlacementError(
                    f"replica {rid} assigned to unknown node {node!r}"
                )
        if set(self.placement.replica_ids) != expected:
            raise PlacementError(
                f"register placement covers replicas "
                f"{sorted(self.placement.replica_ids)}, "
                f"spec requires {sorted(expected)}"
            )
        missing = set(self.spec.registers) - set(self.placement.registers)
        if missing:
            raise PlacementError(
                f"placement left registers unplaced: {sorted(missing)}"
            )
        object.__setattr__(self, "assignment", assignment)

    @property
    def topology(self) -> Topology:
        """The topology this placement lives on."""
        return self.spec.topology

    @property
    def share_graph(self) -> ShareGraph:
        """The share graph induced by the register placement (cached)."""
        cached = self.__dict__.get("_share_graph_cache")
        if cached is None:
            cached = ShareGraph.from_placement(self.placement)
            self.__dict__["_share_graph_cache"] = cached
        return cached

    def node_of(self, replica_id: ReplicaId) -> NodeId:
        """Topology node hosting ``replica_id``."""
        try:
            return self.assignment[replica_id]
        except KeyError:
            raise PlacementError(f"unknown replica id {replica_id!r}") from None

    def region_of(self, replica_id: ReplicaId) -> str:
        """Region of the node hosting ``replica_id``."""
        return self.topology.region_of(self.node_of(replica_id))

    def replicas_in_region(self, region: str) -> Tuple[ReplicaId, ...]:
        """All replicas whose node lies in ``region``, sorted."""
        return tuple(
            sorted(
                rid
                for rid in self.assignment
                if self.region_of(rid) == region
            )
        )

    def regions_of_register(self, register: Register) -> Tuple[str, ...]:
        """Distinct regions holding a copy of ``register``, sorted."""
        return tuple(
            sorted(
                {
                    self.region_of(rid)
                    for rid in self.placement.replicas_storing(register)
                }
            )
        )

    def delay_model(
        self, jitter: float = 0.0, local_latency_ms: float = 0.1
    ) -> LatencyDelayModel:
        """A :class:`LatencyDelayModel` for this placement's channels."""
        return LatencyDelayModel(
            self.topology,
            self.assignment,
            jitter=jitter,
            local_latency_ms=local_latency_ms,
        )

    def live_placement(self) -> Dict[str, Tuple[ReplicaId, ...]]:
        """Replica grouping for ``LiveCluster(placement=...)``.

        Keys are the topology node names hosting at least one replica;
        each replica lands on the OS process standing in for its node.
        """
        by_node: Dict[str, list] = {}
        for rid in sorted(self.assignment):
            by_node.setdefault(self.assignment[rid], []).append(rid)
        return {node: tuple(rids) for node, rids in sorted(by_node.items())}

    def describe(self) -> str:
        """One-line summary for tables and logs."""
        graph = self.share_graph
        return (
            f"{self.policy} on {self.topology.name!r}: "
            f"{self.spec.num_replicas} replicas, "
            f"{len(self.spec.registers)} registers, "
            f"{len(graph.undirected_edges)} share edges"
        )


class PlacementPolicy:
    """Interface every placement policy implements.

    ``place`` must be a pure function of ``(spec, seed)``: identical
    inputs yield identical results (the property tests enforce this), and
    policies that use no randomness simply ignore the seed.
    """

    #: Short name used in registries, tables and benchmark gates.
    name: str = "abstract"

    def place(self, spec: PlacementSpec, seed: int = 0) -> PlacementResult:
        """Realise ``spec`` on its topology."""
        raise NotImplementedError
