"""Score a placement in the paper's own objective.

A placement is good when the share graph it induces is cheap to track
(few edge-indexed counters → few timestamp bytes, measured against the
closed-form lower bounds of Theorem 15), its share edges are short on
the measured topology (propagation latency), and its register copies
span failure domains (a region kill leaves every register readable).
:func:`score_placement` computes all three families from a
:class:`~repro.placement.base.PlacementResult` without running a
simulation — experiment E21 then confirms the static predictions with
live traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lower_bounds.closed_form import (
    algorithm_bits,
    algorithm_counters,
    lower_bound_bits,
)
from .base import PlacementResult

__all__ = ["PlacementScore", "score_placement"]


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(math.ceil(fraction * len(ordered))) - 1)
    return ordered[max(0, index)]


@dataclass(frozen=True)
class PlacementScore:
    """Static quality metrics of one placement."""

    policy: str
    topology: str
    #: Mean per-replica counter count |E_i| (the metadata the algorithm keeps).
    counters_mean: float
    #: Mean per-replica timestamp bits under the edge-indexed algorithm.
    algorithm_bits_mean: float
    #: Mean closed-form lower bound over replicas where one exists
    #: (trees/cycles/cliques), else ``None`` — general graphs have no
    #: closed form and are compared on counters alone.
    bound_bits_mean: Optional[float]
    #: Mean / p99 share-edge latency (ms) between the assigned nodes.
    edge_latency_mean: float
    edge_latency_p99: float
    #: Worst-case fraction of registers still holding a live copy after
    #: killing any single region (1.0 = every register survives every
    #: single-region failure).
    region_survival_min: float
    #: Number of share-graph edges (undirected).
    share_edges: int

    @property
    def algorithm_bytes_mean(self) -> float:
        """Timestamp bytes per replica."""
        return self.algorithm_bits_mean / 8.0

    @property
    def bound_bytes_mean(self) -> Optional[float]:
        """Lower-bound bytes per replica, if a closed form applies."""
        if self.bound_bits_mean is None:
            return None
        return self.bound_bits_mean / 8.0


def score_placement(
    result: PlacementResult, max_updates: int = 2**16
) -> PlacementScore:
    """Compute the static score of ``result``.

    ``max_updates`` is the per-counter budget ``m`` used for the bit
    counts — the same convention the tightness tables use.
    """
    graph = result.share_graph
    replicas = graph.replica_ids
    counters = [algorithm_counters(graph, rid) for rid in replicas]
    bits = [algorithm_bits(graph, rid, max_updates) for rid in replicas]
    bounds = [lower_bound_bits(graph, rid, max_updates) for rid in replicas]
    # E16 convention: average over the replicas where a closed form exists
    # (trees/cycles/cliques reached through a replica's local view), None
    # when no replica has one — general graphs compare on counters alone.
    known_bounds = [b for b in bounds if b is not None]
    bound_mean = sum(known_bounds) / len(known_bounds) if known_bounds else None
    latencies: List[float] = []
    for pair in graph.undirected_edges:
        i, j = sorted(pair)
        latencies.append(
            result.topology.path_latency(result.node_of(i), result.node_of(j))
        )
    survival = _region_survival(result)
    return PlacementScore(
        policy=result.policy,
        topology=result.topology.name,
        counters_mean=sum(counters) / len(counters),
        algorithm_bits_mean=sum(bits) / len(bits),
        bound_bits_mean=bound_mean,
        edge_latency_mean=(sum(latencies) / len(latencies)) if latencies else 0.0,
        edge_latency_p99=_percentile(latencies, 0.99),
        region_survival_min=survival,
        share_edges=len(graph.undirected_edges),
    )


def _region_survival(result: PlacementResult) -> float:
    """Worst-case surviving-register fraction over single-region kills."""
    regions = {result.region_of(rid) for rid in result.assignment}
    registers: Tuple[str, ...] = tuple(sorted(result.placement.registers))
    if len(regions) <= 1:
        # Killing the only region kills everything; report the honest 0.
        return 0.0
    worst = 1.0
    for region in sorted(regions):
        surviving = sum(
            1
            for register in registers
            if any(
                result.region_of(rid) != region
                for rid in result.placement.replicas_storing(register)
            )
        )
        worst = min(worst, surviving / len(registers))
    return worst
