"""Placement policies: from a measured topology to an optimized share graph.

Everywhere else in the library the share graph is an *input* — a
hand-picked tree, ring or clique.  This package turns it into an
*output*: a :class:`~repro.placement.base.PlacementPolicy` takes a
:class:`~repro.placement.base.PlacementSpec` (a measured
:class:`~repro.topo.Topology`, a replica budget, registers with a
replication factor and per-replica capacity) and emits a
:class:`~repro.placement.base.PlacementResult` — replicas pinned to
topology nodes plus a register placement whose induced share graph the
protocol then runs, with delays driven by the measured latencies.

Three policies span the design space (the YAFS random/greedy/partition
triple, SNIPPETS #1–2):

* :class:`~repro.placement.policies.RandomPlacement` — the baseline every
  benchmark gate compares against;
* :class:`~repro.placement.policies.LatencyGreedyPlacement` — cluster
  register copies on the closest replicas, ignoring failure domains;
* :class:`~repro.placement.policies.AvailabilityAwarePlacement` — place
  every register across ≥2 regions (graph-partition style) while still
  choosing the cheapest cross-region pairs the geometry offers.

:mod:`~repro.placement.score` scores a result in the paper's own
objective — timestamp counters and bytes against the closed-form lower
bounds — alongside predicted latency and region-kill survival.
"""

from .base import PlacementPolicy, PlacementResult, PlacementSpec
from .policies import (
    AvailabilityAwarePlacement,
    LatencyGreedyPlacement,
    RandomPlacement,
    placement_policies,
)
from .score import PlacementScore, score_placement

__all__ = [
    "AvailabilityAwarePlacement",
    "LatencyGreedyPlacement",
    "PlacementPolicy",
    "PlacementResult",
    "PlacementScore",
    "PlacementSpec",
    "RandomPlacement",
    "placement_policies",
    "score_placement",
]
