"""The placement policies: random, latency-greedy, availability-aware.

All three share the same skeleton: pick topology nodes for the replicas,
pick owner replicas for each register, then run two repair passes that
make the result runnable regardless of how the budgets divide —

* *coverage repair*: every replica must store at least one register
  (the workload generators issue an operation at every replica);
* *connectivity repair*: the share graph must be connected, or updates
  could never propagate between components.

Each repair adds single register copies, so it costs at most
``num_replicas - 1`` capacity slots — exactly the slack
:class:`~repro.placement.base.PlacementSpec` reserves.

Determinism: every tie is broken by sorted order, and the only random
draws come from a generator seeded with ``place(..., seed)``; the same
``(spec, seed)`` always yields the same placement.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

from ..core.errors import PlacementError
from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..topo.model import NodeId, Topology
from .base import PlacementPolicy, PlacementResult, PlacementSpec

__all__ = [
    "AvailabilityAwarePlacement",
    "LatencyGreedyPlacement",
    "RandomPlacement",
    "placement_policies",
]


def _latency_sum(topology: Topology, node: NodeId) -> float:
    """Total shortest-path latency from ``node`` to every other node."""
    return sum(topology.all_pairs_latency()[node].values())


def _medoid_order(topology: Topology) -> List[NodeId]:
    """Nodes from most to least central (total latency, then name)."""
    return sorted(
        topology.nodes, key=lambda n: (_latency_sum(topology, n), n)
    )


class _Builder:
    """Mutable register-placement under construction, capacity-aware."""

    def __init__(self, spec: PlacementSpec, assignment: Dict[ReplicaId, NodeId]):
        self.spec = spec
        self.assignment = assignment
        self.stores: Dict[ReplicaId, Set[Register]] = {
            rid: set() for rid in spec.replica_ids
        }
        pairs = spec.topology.all_pairs_latency()
        self.latency: Dict[Tuple[ReplicaId, ReplicaId], float] = {}
        for i in spec.replica_ids:
            for j in spec.replica_ids:
                if i != j:
                    self.latency[(i, j)] = pairs[assignment[i]][assignment[j]]

    def load(self, rid: ReplicaId) -> int:
        return len(self.stores[rid])

    def has_capacity(self, rid: ReplicaId) -> bool:
        cap = self.spec.capacity
        return cap is None or self.load(rid) < cap

    def add(self, rid: ReplicaId, register: Register) -> None:
        if register not in self.stores[rid] and not self.has_capacity(rid):
            raise PlacementError(
                f"replica {rid} is at capacity {self.spec.capacity} while "
                f"placing {register!r}"
            )
        self.stores[rid].add(register)

    def open_replicas(self) -> List[ReplicaId]:
        """Replicas with capacity left, least-loaded first (then id)."""
        return sorted(
            (r for r in self.spec.replica_ids if self.has_capacity(r)),
            key=lambda r: (self.load(r), r),
        )

    # -- repair passes ------------------------------------------------
    def repair_coverage(self) -> None:
        """Give every empty replica a copy of its nearest neighbour's register."""
        for rid in self.spec.replica_ids:
            if self.stores[rid]:
                continue
            donors = sorted(
                (d for d in self.spec.replica_ids if self.stores[d]),
                key=lambda d: (self.latency[(rid, d)], d),
            )
            if not donors:
                # No replica stores anything yet: seed with the first register.
                self.add(rid, self.spec.registers[0])
                continue
            donor = donors[0]
            self.add(rid, min(self.stores[donor]))

    def repair_connectivity(self) -> None:
        """Merge share-graph components along the cheapest replica pairs."""
        while True:
            components = self._components()
            if len(components) <= 1:
                return
            # Cheapest inter-component pair where the receiver has room.
            best = None
            anchor = components[0]
            for other in components[1:]:
                for i in sorted(anchor):
                    for j in sorted(other):
                        if not (self.has_capacity(i) or self.has_capacity(j)):
                            continue
                        key = (self.latency[(i, j)], i, j)
                        if best is None or key < best[0]:
                            best = (key, i, j)
            if best is None:
                raise PlacementError(
                    "cannot connect share-graph components: every "
                    "cross-component replica pair is at capacity"
                )
            _, i, j = best
            # Copy a register across the pair, into whichever side has room.
            if self.has_capacity(j):
                self.add(j, min(self.stores[i]))
            else:
                self.add(i, min(self.stores[j]))

    def _components(self) -> List[Set[ReplicaId]]:
        """Connected components of the share graph under construction."""
        seen: Set[ReplicaId] = set()
        components: List[Set[ReplicaId]] = []
        for start in self.spec.replica_ids:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for other in self.spec.replica_ids:
                    if other in component:
                        continue
                    if self.stores[current] & self.stores[other]:
                        component.add(other)
                        frontier.append(other)
            seen |= component
            components.append(component)
        return components

    def finish(self, policy: str, seed: int) -> PlacementResult:
        self.repair_coverage()
        self.repair_connectivity()
        return PlacementResult(
            spec=self.spec,
            policy=policy,
            seed=seed,
            assignment=self.assignment,
            placement=RegisterPlacement.from_dict(self.stores),
        )


class RandomPlacement(PlacementPolicy):
    """Uniformly random nodes and owner sets — the baseline.

    This is the "no operator insight" strawman every gate compares
    against: replicas land on arbitrary sites, register copies on
    arbitrary replica subsets, so share edges routinely span the
    topology's diameter and registers routinely sit inside one region.
    """

    name = "random"

    def place(self, spec: PlacementSpec, seed: int = 0) -> PlacementResult:
        rng = random.Random(seed)
        nodes = rng.sample(sorted(spec.topology.nodes), spec.num_replicas)
        assignment = dict(zip(spec.replica_ids, nodes))
        builder = _Builder(spec, assignment)
        for register in spec.registers:
            owners: List[ReplicaId] = []
            for _ in range(spec.replication_factor):
                candidates = [
                    r for r in builder.open_replicas() if r not in owners
                ]
                if not candidates:
                    raise PlacementError(
                        f"no replica has capacity for {register!r}"
                    )
                owners.append(rng.choice(candidates))
            for rid in owners:
                builder.add(rid, register)
        return builder.finish(self.name, seed)


class LatencyGreedyPlacement(PlacementPolicy):
    """Cluster copies on the closest replicas, ignoring failure domains.

    Replicas take the most central nodes and grow outward greedily
    (nearest node to the chosen set first), and each register's extra
    copies go to the replicas nearest its primary.  This is the latency
    optimum of the design space — and the availability worst case, since
    nearest neighbours share a region and die together.
    """

    name = "latency-greedy"

    def place(self, spec: PlacementSpec, seed: int = 0) -> PlacementResult:
        topology = spec.topology
        order = _medoid_order(topology)
        chosen: List[NodeId] = [order[0]]
        remaining = [n for n in order if n != order[0]]
        while len(chosen) < spec.num_replicas:
            remaining.sort(
                key=lambda n: (
                    min(topology.path_latency(n, c) for c in chosen),
                    n,
                )
            )
            chosen.append(remaining.pop(0))
        assignment = dict(zip(spec.replica_ids, chosen))
        builder = _Builder(spec, assignment)
        for register in spec.registers:
            primary = builder.open_replicas()
            if not primary:
                raise PlacementError(f"no replica has capacity for {register!r}")
            owners = [primary[0]]
            while len(owners) < spec.replication_factor:
                candidates = sorted(
                    (
                        r
                        for r in builder.open_replicas()
                        if r not in owners
                    ),
                    key=lambda r: (builder.latency[(owners[0], r)], r),
                )
                if not candidates:
                    raise PlacementError(
                        f"no replica has capacity for {register!r}"
                    )
                owners.append(candidates[0])
            for rid in owners:
                builder.add(rid, register)
        return builder.finish(self.name, seed)


class AvailabilityAwarePlacement(PlacementPolicy):
    """Spread every register across regions, on the cheapest cross pairs.

    The graph-partition idea of the YAFS community placement (SNIPPETS
    #1–2) applied to failure domains: replicas are spread round-robin
    over the topology's regions (most central node of each region
    first), and each register's copies must cover at least
    ``min_region_coverage`` distinct regions — choosing, among the
    region-diverse candidates, the *nearest* ones the measured geometry
    offers (adjacent regions are often single-digit milliseconds apart).
    One region can fail and every register still has a live copy, while
    latency stays close to the greedy optimum and the share graph stays
    sparse (each replica partners with its nearest cross-region peers).

    Topologies with fewer regions than ``min_region_coverage`` degrade
    gracefully to covering every region there is.
    """

    name = "availability-aware"

    def __init__(self, min_region_coverage: int = 2) -> None:
        if min_region_coverage < 1:
            raise PlacementError(
                f"min_region_coverage must be >= 1, got {min_region_coverage}"
            )
        self.min_region_coverage = min_region_coverage

    def place(self, spec: PlacementSpec, seed: int = 0) -> PlacementResult:
        topology = spec.topology
        assignment = dict(
            zip(spec.replica_ids, self._spread_nodes(spec))
        )
        builder = _Builder(spec, assignment)
        region_of = {
            rid: topology.region_of(node) for rid, node in assignment.items()
        }
        coverage_target = min(
            self.min_region_coverage,
            len(set(region_of.values())),
            spec.replication_factor,
        )
        for register in spec.registers:
            open_replicas = builder.open_replicas()
            if not open_replicas:
                raise PlacementError(f"no replica has capacity for {register!r}")
            owners = [open_replicas[0]]
            regions = {region_of[owners[0]]}
            while len(owners) < spec.replication_factor:
                candidates = [
                    r for r in builder.open_replicas() if r not in owners
                ]
                if not candidates:
                    raise PlacementError(
                        f"no replica has capacity for {register!r}"
                    )
                need_new_region = len(regions) < coverage_target
                diverse = [
                    r for r in candidates if region_of[r] not in regions
                ]
                pool = diverse if (need_new_region and diverse) else candidates
                pool.sort(key=lambda r: (builder.latency[(owners[0], r)], r))
                owners.append(pool[0])
                regions.add(region_of[pool[0]])
            for rid in owners:
                builder.add(rid, register)
        return builder.finish(self.name, seed)

    def _spread_nodes(self, spec: PlacementSpec) -> List[NodeId]:
        """Round-robin the most central node of each region, repeating."""
        topology = spec.topology
        by_region: Dict[str, List[NodeId]] = {}
        for node in _medoid_order(topology):
            by_region.setdefault(topology.region_of(node), []).append(node)
        regions = sorted(by_region, key=lambda r: (-len(by_region[r]), r))
        chosen: List[NodeId] = []
        while len(chosen) < spec.num_replicas:
            progressed = False
            for region in regions:
                if by_region[region]:
                    chosen.append(by_region[region].pop(0))
                    progressed = True
                    if len(chosen) == spec.num_replicas:
                        break
            if not progressed:  # pragma: no cover - spec validation forbids
                raise PlacementError("ran out of topology nodes")
        return chosen


def placement_policies(
    min_region_coverage: int = 2,
) -> Dict[str, PlacementPolicy]:
    """Name → instance registry over the built-in policies."""
    policies: Sequence[PlacementPolicy] = (
        RandomPlacement(),
        LatencyGreedyPlacement(),
        AvailabilityAwarePlacement(min_region_coverage=min_region_coverage),
    )
    return {policy.name: policy for policy in policies}
