"""Length-prefixed stream framing: byte-exact frames over a TCP byte stream.

TCP delivers a byte *stream*: one ``send`` may arrive split across many
reads, and many sends may coalesce into one read.  The framing layer
restores message boundaries with the cheapest self-describing envelope that
composes with the :mod:`repro.wire` primitives::

    [uvarint length][1 byte kind][payload: length-1 bytes]

``length`` counts the kind byte plus the payload, so an empty frame (a
bare control signal) costs two bytes.  The kind byte dispatches into the
control vocabulary of :mod:`repro.net.frames`; data frames carry an encoded
:class:`~repro.wire.batch.MessageBatch` as their payload, unchanged from
the simulator's wire accounting — the bytes the simulator books are the
bytes the live runtime ships.

:class:`StreamDecoder` is the incremental receiving half: feed it whatever
chunks the socket produces and it yields exactly the frames that were
encoded, however the chunk boundaries fall.  The hypothesis property tests
(``tests/test_net_framing.py``) fuzz arbitrary fragmentation/coalescing
against ``decode ∘ encode = id``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..wire.primitives import WireFormatError, encode_uvarint

#: Refuse frames larger than this (64 MiB): a corrupt or misaligned stream
#: otherwise manifests as an absurd length prefix and an unbounded buffer.
MAX_FRAME_SIZE = 64 * 1024 * 1024

#: A decoded frame: ``(kind byte, payload bytes)``.
Frame = Tuple[int, bytes]


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    """Encode one frame: uvarint length prefix, kind byte, payload."""
    if not 0 <= kind <= 255:
        raise WireFormatError(f"frame kind must fit one byte, got {kind}")
    body_size = 1 + len(payload)
    if body_size > MAX_FRAME_SIZE:
        raise WireFormatError(
            f"frame of {body_size} bytes exceeds MAX_FRAME_SIZE ({MAX_FRAME_SIZE})"
        )
    return encode_uvarint(body_size) + bytes((kind,)) + payload


class StreamDecoder:
    """Incremental frame decoder over an arbitrary chunking of the stream.

    Feed raw chunks with :meth:`feed`; complete frames come back in stream
    order.  Partial frames (a length prefix split across chunks, a body
    still in flight) are buffered until their bytes arrive.  The decoder
    never inspects payloads — framing and content are separate layers.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Body size of the frame currently being assembled, or ``None``
        #: while the length prefix itself is still incomplete.
        self._need: int | None = None

    def feed(self, chunk: bytes) -> List[Frame]:
        """Absorb one chunk; return every frame it completed."""
        self._buffer += chunk
        return list(self._drain())

    def _drain(self) -> Iterator[Frame]:
        while True:
            if self._need is None:
                parsed = self._try_parse_length()
                if parsed is None:
                    return
                self._need = parsed
            if len(self._buffer) < self._need:
                return
            body = self._buffer[: self._need]
            del self._buffer[: self._need]
            self._need = None
            yield body[0], bytes(body[1:])

    def _try_parse_length(self) -> int | None:
        """Parse the uvarint length prefix, or ``None`` if incomplete.

        On success the prefix bytes are consumed from the buffer.  The
        prefix of a valid frame is at most 4 bytes (``MAX_FRAME_SIZE`` <
        2^28); a longer unterminated run of continuation bytes can never
        become a valid length, so it is rejected immediately.
        """
        value = 0
        shift = 0
        for index, byte in enumerate(self._buffer):
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                if not 0 < value <= MAX_FRAME_SIZE:
                    raise WireFormatError(
                        f"frame length {value} outside (0, {MAX_FRAME_SIZE}]"
                    )
                del self._buffer[: index + 1]
                return value
            shift += 7
            if shift > 28:
                raise WireFormatError("unterminated frame length prefix")
        return None

    @property
    def buffered(self) -> int:
        """Bytes held for a frame still in flight (for tests/diagnostics)."""
        return len(self._buffer)

    def at_boundary(self) -> bool:
        """``True`` when no partial frame is buffered (a clean stream end)."""
        return not self._buffer and self._need is None


def decode_all(data: bytes) -> List[Frame]:
    """Decode a complete byte string into frames (must end on a boundary)."""
    decoder = StreamDecoder()
    frames = decoder.feed(data)
    if not decoder.at_boundary():
        raise WireFormatError(
            f"trailing partial frame: {decoder.buffered} bytes after the "
            "last complete frame"
        )
    return frames
