"""Length-prefixed stream framing: byte-exact frames over a TCP byte stream.

TCP delivers a byte *stream*: one ``send`` may arrive split across many
reads, and many sends may coalesce into one read.  The framing layer
restores message boundaries with the cheapest self-describing envelope that
composes with the :mod:`repro.wire` primitives::

    [uvarint length][1 byte kind][payload: length-1 bytes]

``length`` counts the kind byte plus the payload, so an empty frame (a
bare control signal) costs two bytes.  The kind byte dispatches into the
control vocabulary of :mod:`repro.net.frames`; data frames carry an encoded
:class:`~repro.wire.batch.MessageBatch` as their payload, unchanged from
the simulator's wire accounting — the bytes the simulator books are the
bytes the live runtime ships.

:class:`StreamDecoder` is the incremental receiving half: feed it whatever
chunks the socket produces and it yields exactly the frames that were
encoded, however the chunk boundaries fall.  It is **zero-copy** on the
common path: received chunks are kept as-is in a deque, and a frame whose
body lies inside a single chunk is handed out as a ``memoryview`` slice of
that chunk — no per-frame reassembly buffer.  Only a body that genuinely
spans chunks is stitched together (one copy, unavoidable).  Payloads are
therefore *buffer objects*, not necessarily ``bytes``; every decoder in
:mod:`repro.wire` / :mod:`repro.net.frames` accepts them directly.  The
hypothesis property tests (``tests/test_net_framing.py``) fuzz arbitrary
fragmentation/coalescing against ``decode ∘ encode = id``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Tuple, Union

from ..wire.primitives import WireFormatError, encode_uvarint_into

#: Refuse frames larger than this (64 MiB): a corrupt or misaligned stream
#: otherwise manifests as an absurd length prefix and an unbounded buffer.
MAX_FRAME_SIZE = 64 * 1024 * 1024

#: A decoded frame: ``(kind byte, payload)``.  The payload is a read-only
#: buffer — ``bytes`` or a zero-copy ``memoryview`` of a received chunk —
#: that compares equal to the original bytes and decodes in place.
Frame = Tuple[int, Union[bytes, memoryview]]


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    """Encode one frame: uvarint length prefix, kind byte, payload."""
    out = bytearray()
    encode_frame_into(out, kind, payload)
    return bytes(out)


def encode_frame_into(out: bytearray, kind: int, payload: bytes = b"") -> None:
    """Append one encoded frame to ``out`` (shared-buffer encode path)."""
    if not 0 <= kind <= 255:
        raise WireFormatError(f"frame kind must fit one byte, got {kind}")
    body_size = 1 + len(payload)
    if body_size > MAX_FRAME_SIZE:
        raise WireFormatError(
            f"frame of {body_size} bytes exceeds MAX_FRAME_SIZE ({MAX_FRAME_SIZE})"
        )
    encode_uvarint_into(out, body_size)
    out.append(kind)
    out += payload


class StreamDecoder:
    """Incremental frame decoder over an arbitrary chunking of the stream.

    Feed raw chunks with :meth:`feed`; complete frames come back in stream
    order.  Partial frames (a length prefix split across chunks, a body
    still in flight) stay buffered — as the original chunk objects, never
    copied into a contiguous staging buffer — until their bytes arrive.
    The decoder never inspects payloads: framing and content are separate
    layers.
    """

    def __init__(self) -> None:
        #: Received chunks not yet fully consumed, in arrival order.
        self._chunks: Deque[bytes] = deque()
        #: Read position inside ``_chunks[0]``.
        self._offset = 0
        #: Total unread bytes across all chunks.
        self._buffered = 0
        #: Body size of the frame currently being assembled, or ``None``
        #: while the length prefix itself is still incomplete.
        self._need: int | None = None

    def feed(self, chunk: bytes) -> List[Frame]:
        """Absorb one chunk; return every frame it completed."""
        if chunk:
            if not isinstance(chunk, bytes):
                # Mutable buffers (bytearray, writable memoryview) are
                # snapshotted: the zero-copy payload views below must not
                # alias memory the caller may overwrite or resize.
                chunk = bytes(chunk)
            self._chunks.append(chunk)
            self._buffered += len(chunk)
        return list(self._drain())

    def _drain(self) -> Iterator[Frame]:
        while True:
            if self._need is None:
                parsed = self._try_parse_length()
                if parsed is None:
                    return
                self._need = parsed
            if self._buffered < self._need:
                return
            need = self._need
            self._need = None
            yield self._take_frame(need)

    def _take_frame(self, need: int) -> Frame:
        """Consume ``need`` body bytes; zero-copy when one chunk holds them."""
        chunks = self._chunks
        offset = self._offset
        first = chunks[0]
        end = offset + need
        if end <= len(first):
            kind = first[offset]
            payload = memoryview(first)[offset + 1 : end]
            if end == len(first):
                chunks.popleft()
                self._offset = 0
            else:
                self._offset = end
            self._buffered -= need
            return kind, payload
        # The body spans chunks: stitch exactly once.
        pieces = []
        remaining = need
        while remaining:
            first = chunks[0]
            available = len(first) - offset
            if available <= remaining:
                pieces.append(first[offset:] if offset else first)
                chunks.popleft()
                offset = 0
                remaining -= available
            else:
                pieces.append(first[offset : offset + remaining])
                offset += remaining
                remaining = 0
        self._offset = offset
        self._buffered -= need
        body = b"".join(pieces)
        return body[0], memoryview(body)[1:]

    def _try_parse_length(self) -> int | None:
        """Parse the uvarint length prefix, or ``None`` if incomplete.

        On success the prefix bytes are consumed.  The prefix of a valid
        frame is at most 4 bytes (``MAX_FRAME_SIZE`` < 2^28); a longer
        unterminated run of continuation bytes can never become a valid
        length, so it is rejected immediately.
        """
        value = 0
        shift = 0
        consumed = 0
        position = self._offset
        for chunk in self._chunks:
            size = len(chunk)
            while position < size:
                byte = chunk[position]
                position += 1
                consumed += 1
                value |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    if not 0 < value <= MAX_FRAME_SIZE:
                        raise WireFormatError(
                            f"frame length {value} outside (0, {MAX_FRAME_SIZE}]"
                        )
                    self._discard(consumed)
                    return value
                shift += 7
                if shift > 28:
                    raise WireFormatError("unterminated frame length prefix")
            position = 0
        return None

    def _discard(self, count: int) -> None:
        """Drop ``count`` unread bytes from the front of the chunk deque."""
        chunks = self._chunks
        offset = self._offset
        self._buffered -= count
        while count:
            available = len(chunks[0]) - offset
            if available <= count:
                chunks.popleft()
                count -= available
                offset = 0
            else:
                offset += count
                count = 0
        self._offset = offset

    @property
    def buffered(self) -> int:
        """Bytes held for a frame still in flight (for tests/diagnostics)."""
        return self._buffered

    def at_boundary(self) -> bool:
        """``True`` when no partial frame is buffered (a clean stream end)."""
        return not self._buffered and self._need is None


def decode_all(data: bytes) -> List[Frame]:
    """Decode a complete byte string into frames (must end on a boundary)."""
    decoder = StreamDecoder()
    frames = decoder.feed(data)
    if not decoder.at_boundary():
        raise WireFormatError(
            f"trailing partial frame: {decoder.buffered} bytes after the "
            "last complete frame"
        )
    return frames
