"""Log-structured durability for live replicas: checkpoint + write-ahead log.

Until PR 8 every persist wrote the node's whole durable state as one pickle
— O(replica state) per operation, the dominant cost of the live hot path
once histories grow.  This module replaces it with the classic
log-structured pair:

* a **checkpoint** (``replica-<id>.ckpt``): the full durable state
  (:class:`WalCheckpoint`) written rarely — at compaction — via the
  fsync-then-atomic-rename discipline, so a crash at any instant leaves
  either the old or the new checkpoint intact, never a torn one;
* a **write-ahead log** (``replica-<id>.wal.<generation>``): one framed
  record appended per state change, O(delta) per operation.  Records reuse
  the :mod:`repro.net.framing` envelope and the :mod:`repro.wire` codecs —
  the bytes in the log are the bytes of the wire.

Recovery loads the checkpoint (if any) and replays the log tail.  Replay
is deterministic: a ``WRITE`` record re-executes the original
``replica.write`` at its recorded time, regenerating the *identical*
update id and outgoing copies (the protocol derives both from durable
replica state); a ``DELIVER`` record re-applies the received batch; an
``ACK`` record re-prunes the sent-log.  A SIGKILL can truncate the final
record mid-append — the replay parser stops at the torn tail and the
reopened log truncates it away, exactly the prefix-durability a
write-ahead log promises.

Compaction runs when the log outgrows ``compact_bytes``: snapshot the
current state into the next-generation checkpoint (fsync, rename), start
an empty next-generation log, delete the old one.  The generation number
stored *inside* the checkpoint names the log that extends it, so a crash
between any two compaction steps recovers an unambiguous pair.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from ..core.protocol import UpdateId, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..wire.batch import MessageBatch, decode_batch, encode_batch
from ..wire.codecs import decode_value, encode_value
from ..wire.primitives import (
    WireFormatError,
    decode_atom,
    decode_uvarint,
    encode_atom,
)
from .framing import MAX_FRAME_SIZE, encode_frame

Channel = Tuple[ReplicaId, ReplicaId]

# Record kinds (disjoint from repro.net.frames kinds only by convention;
# the namespaces never share a stream).
W_WRITE = 1
W_READ = 2
W_DELIVER = 3
W_ACK = 4


@dataclass
class WalCheckpoint:
    """One replica's full durable state at a compaction point."""

    replica: Any  # ReplicaSnapshot
    sent_log: Dict[ReplicaId, Dict[UpdateId, UpdateMessage]]
    outbox_total: Dict[ReplicaId, int]
    streams: Dict[Channel, List[UpdateId]]
    apply_times: Dict[UpdateId, float]
    #: The log generation this checkpoint is extended by.
    generation: int = 0
    issue_times: Dict[UpdateId, float] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Record payload codecs (wire primitives, same trust domain as the log)
# ----------------------------------------------------------------------

def encode_write_record(register: Register, value: Any, at: float) -> bytes:
    return encode_atom(register) + encode_value(value) + encode_value(at)


def decode_write_record(payload: bytes) -> Tuple[Register, Any, float]:
    register, offset = decode_atom(payload)
    value, offset = decode_value(payload, offset)
    at, _ = decode_value(payload, offset)
    return register, value, at


def encode_read_record(register: Register, at: float) -> bytes:
    return encode_atom(register) + encode_value(at)


def decode_read_record(payload: bytes) -> Tuple[Register, float]:
    register, offset = decode_atom(payload)
    at, _ = decode_value(payload, offset)
    return register, at


def encode_deliver_record(received_at: float, batch: MessageBatch,
                          codec: Any) -> bytes:
    # Full frames (no delta chain): every record must replay standalone —
    # a log is not a stream, compaction may drop any prefix.
    data, _ = encode_batch(batch, encoder=None, codec=codec)
    return encode_value(received_at) + data


def decode_deliver_record(payload: bytes) -> Tuple[float, MessageBatch]:
    received_at, offset = decode_value(payload)
    batch, _ = decode_batch(payload, offset=offset, decoder=None)
    return received_at, batch


def encode_ack_record(destination: ReplicaId, uids: List[UpdateId]) -> bytes:
    from . import frames

    return encode_atom(destination) + frames.encode_uid_list(uids)


def decode_ack_record(payload: bytes) -> Tuple[ReplicaId, List[UpdateId]]:
    from . import frames

    destination, offset = decode_atom(payload)
    uids, _ = frames.decode_uid_list(payload, offset)
    return destination, uids


def _parse_records(data: bytes) -> Tuple[List[Tuple[int, bytes]], int]:
    """Parse framed records; returns ``(records, valid byte length)``.

    Stops — without raising — at a torn tail: a truncated length prefix,
    kind byte or body ends the valid log, which is exactly what a crash
    mid-append leaves behind.
    """
    records: List[Tuple[int, bytes]] = []
    offset = 0
    size = len(data)
    while offset < size:
        try:
            body, after = decode_uvarint(data, offset)
        except WireFormatError:
            break
        if body <= 0 or body > MAX_FRAME_SIZE or after + body > size:
            break
        records.append((data[after], bytes(data[after + 1:after + body])))
        offset = after + body
    return records, offset


class ReplicaWAL:
    """One replica's durable state: a checkpoint plus an append-only log.

    ``append`` is the per-operation hot path: one framed record, one
    buffered write, one flush to the OS — O(record), never O(state).
    ``checkpoint`` is the rare path and the only place the full state is
    serialised.
    """

    def __init__(self, directory: str, replica_id: ReplicaId,
                 compact_bytes: int = 1 << 18) -> None:
        self.directory = directory
        self.replica_id = replica_id
        self.compact_bytes = compact_bytes
        self.checkpoint_path = os.path.join(directory, f"replica-{replica_id}.ckpt")
        self.generation = 0
        self._log: Optional[IO[bytes]] = None
        #: Bytes appended to the current log generation.
        self.wal_bytes = 0
        #: Records appended over this process's lifetime (telemetry).
        self.records_appended = 0
        #: Compactions performed over this process's lifetime (telemetry).
        self.compactions = 0

    def _log_path(self, generation: int) -> str:
        return os.path.join(
            self.directory, f"replica-{self.replica_id}.wal.{generation}"
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def load(self) -> Tuple[Optional[WalCheckpoint], List[Tuple[int, bytes]]]:
        """Read the durable pair; opens the log for appending.

        Returns ``(checkpoint or None, log records after it)``.  A torn
        final record is truncated away; an orphaned ``.ckpt.tmp`` (a
        compaction that never committed) is discarded — the previous
        checkpoint + log remain authoritative; stale log generations from
        interrupted compactions are deleted.
        """
        checkpoint: Optional[WalCheckpoint] = None
        if os.path.exists(self.checkpoint_path):
            with open(self.checkpoint_path, "rb") as handle:
                checkpoint = pickle.load(handle)
            self.generation = checkpoint.generation
        tmp = self.checkpoint_path + ".tmp"
        if os.path.exists(tmp):
            os.unlink(tmp)
        records: List[Tuple[int, bytes]] = []
        valid = 0
        path = self._log_path(self.generation)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                records, valid = _parse_records(handle.read())
        self._open_log(truncate_to=valid if os.path.exists(path) else None)
        self._cleanup_stale()
        return checkpoint, records

    def _open_log(self, truncate_to: Optional[int] = None) -> None:
        path = self._log_path(self.generation)
        if truncate_to is not None:
            self._log = open(path, "r+b")
            self._log.truncate(truncate_to)
            self._log.seek(truncate_to)
            self.wal_bytes = truncate_to
        else:
            self._log = open(path, "wb")
            self.wal_bytes = 0

    def _cleanup_stale(self) -> None:
        prefix = f"replica-{self.replica_id}.wal."
        for name in os.listdir(self.directory):
            if not name.startswith(prefix):
                continue
            try:
                generation = int(name[len(prefix):])
            except ValueError:
                continue
            if generation != self.generation:
                os.unlink(os.path.join(self.directory, name))

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def append(self, kind: int, payload: bytes) -> None:
        """Append one record and flush it to the OS.

        The flush makes the record SIGKILL-durable (the process can die,
        the kernel keeps the page); full power-loss durability would add
        an fsync here, a policy knob the fault model does not require —
        the crash injector kills processes, not the machine.
        """
        if self._log is None:
            self._open_log()
        frame = encode_frame(kind, payload)
        self._log.write(frame)
        self._log.flush()
        self.wal_bytes += len(frame)
        self.records_appended += 1

    def should_compact(self) -> bool:
        return self.wal_bytes >= self.compact_bytes

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def checkpoint(self, state: WalCheckpoint) -> None:
        """Fold the log into a fresh checkpoint (fsync, then atomic rename).

        Crash-window analysis, step by step: (1) the next-generation log is
        created empty — a crash now leaves it stale, cleaned up on the next
        load; (2) the checkpoint is written to ``.tmp`` and **fsynced
        before the rename**, so the rename can never publish a name whose
        bytes are still in flight; (3) ``os.replace`` commits — before it,
        recovery sees the old checkpoint + old log; after it, the new
        checkpoint + empty new log; (4) the old log is deleted — a crash
        first leaves an orphan, cleaned up on the next load.
        """
        next_generation = self.generation + 1
        state.generation = next_generation
        next_log = open(self._log_path(next_generation), "wb")
        tmp = self.checkpoint_path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)
        old_log, old_path = self._log, self._log_path(self.generation)
        self.generation = next_generation
        self._log = next_log
        self.wal_bytes = 0
        self.compactions += 1
        if old_log is not None:
            old_log.close()
        if os.path.exists(old_path):
            os.unlink(old_path)

    def close(self) -> None:
        if self._log is not None:
            self._log.flush()
            self._log.close()
            self._log = None
