"""The multi-process launcher: a live cluster of multi-tenant nodes.

:class:`LiveCluster` deploys a share graph onto OS processes under a
**placement** — a map from node id to the replicas it hosts.  The default
placement is one replica per node (node id == replica id), the shape every
pre-existing test drives; ``nodes=k`` splits the sorted replica ids
contiguously across ``k`` nodes, so a 512-replica graph runs in 8
processes instead of 512.  Each process is one
:class:`~repro.net.node.LiveNode` (:func:`repro.net.node.node_main` under
the ``spawn`` start method, so each node owns a clean interpreter and
asyncio loop); the launcher wires the node address map, drives client
operations over per-node control connections, and collects the
end-of-run reports the consistency checker consumes.

The launcher is deliberately synchronous — plain sockets plus one reader
thread per control link — so tests and benchmarks drive it like any other
fixture.  The interesting concurrency all lives in the nodes.

Lifecycle::

    with LiveCluster(graph, nodes=8, durable_dir=tmp) as cluster:
        result = cluster.run_open_loop(workload)           # client + drain
        report = result.check_consistency()

Fault injection is first-class: :meth:`LiveCluster.kill` SIGKILLs a node
mid-run (taking all its tenants down at once) and
:meth:`LiveCluster.restart` boots a fresh process that replays each
tenant's checkpoint + WAL tail (:mod:`repro.net.wal`); the stream
reconnect + ``SYNC`` resync protocol (:mod:`repro.net.node`) brings it
back in sync, exactly like the simulator's crash/restart path.

**Quiescence detection.**  The launcher polls every node's ``STATS`` frame
and declares the cluster drained when (a) every per-channel durable
progress book matches — for each directed share-graph edge ``(i, j)``,
``i``'s hosting node has logged exactly as many updates on channel
``(i, j)`` as ``j``'s hosting node has ever first-received on it — and
(b) every node reports empty send queues, no unacked messages and an
empty pending buffer, and (c) the whole snapshot is stable across
consecutive polls.  The books are keyed by *channel*, not peer, so they
are placement-independent: co-hosting replicas moves a channel off the
wire without changing what the books say.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.consistency import ConsistencyChecker, ConsistencyReport
from ..core.errors import ConfigurationError, SimulationError
from ..core.host import LatencySummary, RunMetrics
from ..core.protocol import ReplicaEvent, UpdateId
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..sim.engine import ReliabilityConfig
from ..wire.primitives import WireFormatError
from . import frames
from .framing import StreamDecoder, encode_frame
from .node import (
    Address,
    BatchPolicy,
    Channel,
    NodeConfig,
    NodeId,
    _id_order,
    edge_indexed_factory,
    node_main,
)


class LiveRuntimeError(SimulationError):
    """A live-cluster orchestration failure (boot, drain, or collection)."""


# ======================================================================
# Control links (launcher → node)
# ======================================================================

class ControlLink:
    """One synchronous control connection to a node.

    Writes happen on the caller's thread (serialised by a lock); a daemon
    reader thread decodes incoming frames and dispatches operation replies,
    stats and reports to their waiters.  :meth:`close` joins the reader, so
    every frame the node flushed before exiting — including a REPORT racing
    the shutdown — is dispatched, never dropped on the floor.
    """

    def __init__(self, address: Address, timeout: float = 5.0) -> None:
        self.address = address
        self.sock = socket.create_connection(address, timeout=timeout)
        self.sock.settimeout(None)
        self.alive = True
        self._send_lock = threading.Lock()
        self._stats: "queue.Queue[bytes]" = queue.Queue()
        self._reports: "queue.Queue[bytes]" = queue.Queue()
        #: op_id -> (submit wall time, reply slot); filled by the reader.
        self._pending_ops: Dict[int, List[Any]] = {}
        self._ops_lock = threading.Lock()
        self.op_replies: Dict[int, Tuple[float, int, Any]] = {}
        #: TELEMETRY pushes collected by the reader thread, in arrival
        #: order: ``(sample time, node id, samples)`` triples.
        self.telemetry: List[Tuple[float, Any, list]] = []
        #: Frames of unknown kind, surfaced for the harness to inspect
        #: instead of silently discarded (a version-skewed node speaking a
        #: newer vocabulary should be a visible condition, not a mystery).
        self.unclaimed: List[Tuple[int, bytes]] = []
        self.send(frames.CONTROL_HELLO)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def send(self, kind: int, payload: bytes = b"") -> None:
        data = encode_frame(kind, payload)
        with self._send_lock:
            self.sock.sendall(data)

    def submit_op(self, op_id: int, replica: ReplicaId, kind: str,
                  register: Any, value: Any) -> None:
        """Fire one operation at a hosted replica (open-loop: the reply
        arrives asynchronously)."""
        with self._ops_lock:
            self._pending_ops[op_id] = [time.perf_counter()]
        self.send(
            frames.OP, frames.encode_op(op_id, replica, kind, register, value)
        )

    def outstanding_ops(self) -> int:
        with self._ops_lock:
            return len(self._pending_ops)

    def request_stats(
        self, timeout: float = 5.0
    ) -> Tuple[frames.NodeStats, dict, dict]:
        self.send(frames.STATS_REQ)
        try:
            payload = self._stats.get(timeout=timeout)
        except queue.Empty:
            raise LiveRuntimeError(
                f"node at {self.address} did not answer STATS within {timeout}s"
            ) from None
        return frames.decode_stats_payload(payload)

    def request_report(self, timeout: float = 10.0) -> Dict[str, Any]:
        self.send(frames.REPORT_REQ)
        try:
            payload = self._reports.get(timeout=timeout)
        except queue.Empty:
            raise LiveRuntimeError(
                f"node at {self.address} did not answer REPORT within {timeout}s"
            ) from None
        return pickle.loads(payload)

    def close(self, timeout: float = 2.0) -> None:
        """Shut the link down without losing frames already in flight.

        Half-close the socket (we will send no more), then join the reader
        thread with a timeout: the reader keeps dispatching until the node
        closes its end, so a REPORT or TELEMETRY frame racing the close
        still lands in its queue.  Only if the node never hangs up within
        the timeout is the socket forced closed — a bounded wait, so
        :meth:`LiveCluster.stop` cannot hang on a wedged node.
        """
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._reader.join(timeout=timeout)
        if self._reader.is_alive():
            # The node side never closed: force EOF under the reader (a
            # full shutdown wakes a blocked recv, which a bare close does
            # not) and give it one more bounded chance to finish.
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
            self._reader.join(timeout=timeout)
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass

    def _read_loop(self) -> None:
        decoder = StreamDecoder()
        try:
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    break
                for kind, payload in decoder.feed(chunk):
                    self._dispatch(kind, payload)
        except (OSError, WireFormatError):
            pass
        finally:
            self.alive = False

    def _dispatch(self, kind: int, payload: bytes) -> None:
        if kind == frames.OP_REPLY:
            op_id, status, value = frames.decode_op_reply(payload)
            with self._ops_lock:
                entry = self._pending_ops.pop(op_id, None)
            if entry is not None:
                self.op_replies[op_id] = (
                    time.perf_counter() - entry[0], status, value
                )
        elif kind == frames.STATS:
            self._stats.put(payload)
        elif kind == frames.REPORT:
            self._reports.put(payload)
        elif kind == frames.TELEMETRY:
            self.telemetry.append(frames.decode_telemetry_payload(payload))
        else:
            self.unclaimed.append((kind, payload))


# ======================================================================
# The run result
# ======================================================================

@dataclass
class LiveRunResult:
    """Everything a finished (drained) live run reports.

    The cluster-wide view stitched from the per-node reports: the same
    event traces, metrics and verdicts the simulator produces, fed from
    wall-clock processes — which is exactly what the differential harness
    compares.  ``reports`` stays keyed by *replica* id regardless of
    placement (the consistency checker thinks in replicas); the per-node
    transport footprint lives in ``node_reports``.
    """

    share_graph: ShareGraph
    reports: Dict[ReplicaId, Dict[str, Any]]
    #: Merged cluster metrics; times are seconds relative to the cluster's
    #: clock origin.
    metrics: RunMetrics
    #: Wall-clock seconds the workload + drain took (the live makespan).
    wall_duration: float = 0.0
    #: Per-node TELEMETRY streams collected during the run: node id →
    #: ``[(sample time, node id, samples), …]`` in arrival order.
    telemetry: Dict[Any, List[Tuple[float, Any, list]]] = field(
        default_factory=dict
    )
    #: Node-level reports (transport footprint, WAL counters), keyed by
    #: node id; the tenant payloads are flattened into ``reports``.
    node_reports: Dict[Any, Dict[str, Any]] = field(default_factory=dict)

    def events_by_replica(self) -> Dict[ReplicaId, Sequence[ReplicaEvent]]:
        """Each replica's local issue/apply/read trace."""
        return {rid: report["events"] for rid, report in self.reports.items()}

    def check_consistency(self, check_liveness: bool = True) -> ConsistencyReport:
        """Validate the live execution against the paper's Definition 2.

        Same checker, same inputs as
        :meth:`repro.core.host.ReplicaHost.check_consistency` — the oracle
        does not care whether the trace came from simulated or real time.
        """
        checker = ConsistencyChecker(self.share_graph)
        return checker.check(
            self.events_by_replica(), check_liveness=check_liveness
        )

    def channel_streams(self) -> Dict[Channel, Tuple[UpdateId, ...]]:
        """First-receipt update-id stream per directed channel."""
        out: Dict[Channel, Tuple[UpdateId, ...]] = {}
        for report in self.reports.values():
            for channel, uids in report["streams"].items():
                out[channel] = tuple(uids)
        return out

    def final_state(self) -> Dict[Register, Dict[ReplicaId, Any]]:
        """Final value of every register at every replica storing it."""
        out: Dict[Register, Dict[ReplicaId, Any]] = {}
        for rid, report in self.reports.items():
            for register, value in report["store"].items():
                out.setdefault(register, {})[rid] = value
        return out

    def values(self, register: Register) -> Dict[ReplicaId, Any]:
        """The final value of ``register`` at every replica storing it."""
        return dict(self.final_state().get(register, {}))

    def trace_events(self) -> List[Tuple[float, str, UpdateId, ReplicaId, ReplicaId]]:
        """The merged cluster-wide lifecycle trace, sorted by time.

        Every node records into its own process-local
        :class:`~repro.obs.trace.TraceRecorder` against the shared
        ``clock_origin``, so concatenating the per-replica event lists
        yields one coherent wall-relative trace — the same cross-process
        join the apply-latency merge performs, keyed by update id.
        """
        events: List[Any] = []
        for report in self.reports.values():
            events.extend(report.get("trace", ()))
        events.sort()
        return events

    def channel_wire_stats(self) -> Dict[Channel, Any]:
        """Per-channel outgoing wire books, merged across replicas.

        Each directed channel is owned by exactly one sending replica, so
        the merge is a plain union — the live counterpart of the
        simulator's ``NetworkStats.per_channel``.  Channels between
        co-hosted replicas short-circuit in process and never appear: no
        bytes, no book.
        """
        out: Dict[Channel, Any] = {}
        for report in self.reports.values():
            out.update(report.get("wire_stats", {}))
        return out

    def open_connections(self) -> int:
        """Cluster-wide transport footprint: outbound streams + inbound
        sockets (control links included), summed across nodes."""
        total = 0
        for report in self.node_reports.values():
            transport = report.get("transport", {})
            total += transport.get("open_streams", 0)
            total += transport.get("inbound_connections", 0)
        return total

    @property
    def delivered_ops_per_sec(self) -> float:
        """Remote applies per wall-clock second over the whole run."""
        if self.wall_duration <= 0:
            return 0.0
        return self.metrics.applies / self.wall_duration

    def operation_latency_summary(self) -> LatencySummary:
        return self.metrics.operation_latency_summary()

    def apply_latency_summary(self) -> LatencySummary:
        return self.metrics.apply_latency_summary()


def merge_reports(
    share_graph: ShareGraph,
    reports: Dict[ReplicaId, Dict[str, Any]],
    operation_latencies: Optional[List[float]] = None,
    rejected_operations: int = 0,
    wall_duration: float = 0.0,
    crashes: int = 0,
    restarts: int = 0,
    downtime: Optional[Dict[ReplicaId, List[Tuple[float, float]]]] = None,
    telemetry: Optional[Dict[Any, List[Tuple[float, Any, list]]]] = None,
    node_reports: Optional[Dict[Any, Dict[str, Any]]] = None,
) -> LiveRunResult:
    """Fold per-replica reports into one cluster-wide :class:`LiveRunResult`.

    Remote-apply latencies are joined across replicas: each replica reports
    when it applied each update (wall-relative), the issuer reports when it
    was issued; the difference is the live analogue of the simulator's
    issue→apply latency samples.
    """
    metrics = RunMetrics()
    issue_times: Dict[UpdateId, float] = {}
    for report in reports.values():
        issue_times.update(report["issue_times"])
    for rid, report in reports.items():
        node_metrics: RunMetrics = report["metrics"]
        metrics.writes += node_metrics.writes
        metrics.reads += node_metrics.reads
        metrics.applies += node_metrics.applies
        metrics.apply_times.extend(node_metrics.apply_times)
        metrics.operation_times.extend(node_metrics.operation_times)
        for rid_pending, depth in node_metrics.max_pending.items():
            previous = metrics.max_pending.get(rid_pending, 0)
            metrics.max_pending[rid_pending] = max(previous, depth)
        for uid, applied_at in report["apply_times"].items():
            if uid[0] == rid:
                continue  # the issuer's own apply is not a remote apply
            issued_at = issue_times.get(uid)
            if issued_at is not None:
                metrics.apply_latencies.append(applied_at - issued_at)
    metrics.apply_times.sort()
    metrics.operation_times.sort()
    metrics.operation_latencies = list(operation_latencies or [])
    metrics.rejected_operations = rejected_operations
    # Fault accounting comes from the launcher — it injected the kills, so
    # it owns the timeline (a SIGKILLed process cannot count its own death,
    # and a restarted node's in-memory counters start from zero).
    metrics.crashes = crashes
    metrics.restarts = restarts
    metrics.downtime = {
        rid: list(intervals) for rid, intervals in (downtime or {}).items()
    }
    return LiveRunResult(
        share_graph=share_graph,
        reports=reports,
        metrics=metrics,
        wall_duration=wall_duration,
        telemetry=dict(telemetry or {}),
        node_reports=dict(node_reports or {}),
    )


# ======================================================================
# The launcher
# ======================================================================

def contiguous_placement(
    share_graph: ShareGraph, nodes: int
) -> Dict[NodeId, Tuple[ReplicaId, ...]]:
    """Split the sorted replica ids contiguously across ``nodes`` nodes.

    Contiguity keeps ring/torus neighbours co-hosted, so the short-circuit
    path absorbs most traffic on locality-friendly topologies.  Node ids
    are ``"n0" … "n{k-1}"``; empty groups (more nodes than replicas) are
    dropped.
    """
    if nodes < 1:
        raise ConfigurationError("a live cluster needs at least one node")
    rids = sorted(share_graph.replica_ids, key=_id_order)
    count = min(nodes, len(rids))
    base, extra = divmod(len(rids), count)
    placement: Dict[NodeId, Tuple[ReplicaId, ...]] = {}
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        placement[f"n{index}"] = tuple(rids[start:start + size])
        start += size
    return placement


@dataclass
class _Member:
    """One node process's launcher-side bookkeeping."""

    config: NodeConfig
    process: Any = None
    link: Optional[ControlLink] = None


class LiveCluster:
    """A live deployment of one share graph across multi-tenant nodes.

    Parameters
    ----------
    share_graph:
        The register placement / share graph to deploy.
    replica_factory:
        Protocol family per replica (default: the paper's edge-indexed
        algorithm).  Must be a picklable module-level callable (the spawn
        start method ships it to the child).
    batching, reliability:
        Wire-layer knobs forwarded to every node (seconds, not simulated
        units).
    durable_dir:
        Directory for per-replica checkpoint + WAL files; required for
        :meth:`kill`/:meth:`restart` recovery.  ``None`` runs diskless.
    nodes:
        Host the replicas on this many OS processes (contiguous split of
        the sorted replica ids).  Default: one node per replica, node id
        == replica id — the shape single-tenant tests expect.
    placement:
        Explicit node id → hosted replica ids map (overrides ``nodes``).
        Must partition the share graph's replicas exactly.
    wal_compact_bytes:
        Per-replica WAL size that triggers compaction into a checkpoint.
    tracing:
        Record the message-lifecycle trace at every replica (wall-relative
        stamps against the shared clock origin); the merged trace comes
        back via :meth:`LiveRunResult.trace_events`.
    telemetry_interval:
        Seconds between ``TELEMETRY`` pushes from each node over the
        control link (``0`` disables); samples land on
        :attr:`LiveRunResult.telemetry`.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_factory: Callable = edge_indexed_factory,
        batching: Optional[BatchPolicy] = None,
        reliability: Optional[ReliabilityConfig] = None,
        durable_dir: Optional[str] = None,
        listen_host: str = "127.0.0.1",
        tracing: bool = False,
        telemetry_interval: float = 0.0,
        nodes: Optional[int] = None,
        placement: Optional[Mapping[NodeId, Sequence[ReplicaId]]] = None,
        wal_compact_bytes: int = 1 << 18,
    ) -> None:
        self.share_graph = share_graph
        self.listen_host = listen_host
        self.clock_origin = time.time()
        self._ctx = multiprocessing.get_context("spawn")
        self._ready: Any = self._ctx.Queue()
        self._members: Dict[NodeId, _Member] = {}
        self.addresses: Dict[NodeId, Address] = {}
        self._op_counter = 0
        self._started = False
        #: Launcher-side fault accounting (the launcher injects the faults,
        #: so it owns the timeline — node processes cannot count their own
        #: SIGKILLs).  Times are seconds relative to clock_origin.
        self._crashes = 0
        self._restarts = 0
        self._down_since: Dict[ReplicaId, float] = {}
        self._downtime: Dict[ReplicaId, List[Tuple[float, float]]] = {}
        batching = batching or BatchPolicy()
        reliability = reliability or ReliabilityConfig(
            resend_timeout=1.0, max_retries=8
        )
        if durable_dir is not None:
            os.makedirs(durable_dir, exist_ok=True)
        self.placement = self._resolve_placement(nodes, placement)
        #: replica id → hosting node id, the inverse of ``placement``.
        self._replica_node: Dict[ReplicaId, NodeId] = {
            rid: node_id
            for node_id, rids in self.placement.items()
            for rid in rids
        }
        for node_id, rids in self.placement.items():
            self._members[node_id] = _Member(config=NodeConfig(
                node_id=node_id,
                share_graph=share_graph,
                replica_ids=tuple(rids),
                replica_nodes=dict(self._replica_node),
                listen_host=listen_host,
                replica_factory=replica_factory,
                batching=batching,
                reliability=reliability,
                durable_dir=durable_dir,
                wal_compact_bytes=wal_compact_bytes,
                clock_origin=self.clock_origin,
                tracing=tracing,
                telemetry_interval=telemetry_interval,
            ))

    def _resolve_placement(
        self,
        nodes: Optional[int],
        placement: Optional[Mapping[NodeId, Sequence[ReplicaId]]],
    ) -> Dict[NodeId, Tuple[ReplicaId, ...]]:
        if placement is not None:
            resolved = {
                node_id: tuple(rids) for node_id, rids in placement.items()
            }
            hosted = [rid for rids in resolved.values() for rid in rids]
            if sorted(hosted, key=_id_order) != sorted(
                self.share_graph.replica_ids, key=_id_order
            ) or len(hosted) != len(set(hosted)):
                raise ConfigurationError(
                    "placement must partition the share graph's replicas "
                    "exactly (every replica on exactly one node)"
                )
            return resolved
        if nodes is not None:
            return contiguous_placement(self.share_graph, nodes)
        # The single-tenant default: node id == replica id, so fault
        # injection and link lookup by replica id keep working verbatim.
        return {
            rid: (rid,)
            for rid in sorted(self.share_graph.replica_ids, key=_id_order)
        }

    def _resolve_node(self, member_id: Any) -> NodeId:
        """Accept either a node id or a hosted replica id."""
        if member_id in self._members:
            return member_id
        node_id = self._replica_node.get(member_id)
        if node_id is None:
            raise LiveRuntimeError(f"unknown node or replica {member_id!r}")
        return node_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "LiveCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self, timeout: Optional[float] = None) -> None:
        """Boot every node process and wire the address map.

        The default ready deadline scales with cluster size: every tenant
        builds its Definition 5 timestamp graph during boot, so a 512-way
        multi-tenant cluster legitimately takes far longer to come up than
        an 8-process single-tenant one — especially on a single core,
        where the node processes serialise.
        """
        if timeout is None:
            timeout = 30.0 + 0.2 * len(self._replica_node)
        if self._started:
            return
        self._started = True
        for member in self._members.values():
            self._spawn(member)
        deadline = time.monotonic() + timeout
        while len(self.addresses) < len(self._members):
            self._collect_ready(deadline)
        for node_id in sorted(self._members, key=_id_order):
            self._connect_control(node_id)
        self._broadcast_addresses()

    def _spawn(self, member: _Member) -> None:
        member.process = self._ctx.Process(
            target=node_main,
            args=(member.config, self._ready),
            daemon=True,
            name=f"repro-node-{member.config.node_id}",
        )
        member.process.start()

    def _collect_ready(self, deadline: float) -> None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            missing = sorted(
                set(self._members) - set(self.addresses), key=_id_order
            )
            raise LiveRuntimeError(f"nodes {missing} never reported ready")
        try:
            node_id, port = self._ready.get(timeout=min(remaining, 0.5))
        except queue.Empty:
            return
        self.addresses[node_id] = (self.listen_host, port)

    def _connect_control(self, node_id: NodeId) -> None:
        member = self._members[node_id]
        member.link = ControlLink(self.addresses[node_id])

    def _broadcast_addresses(self) -> None:
        for node_id, address in sorted(self.addresses.items(), key=lambda kv: _id_order(kv[0])):
            payload = frames.encode_addr(node_id, *address)
            for other, member in self._members.items():
                if other != node_id and member.link is not None and member.link.alive:
                    member.link.send(frames.ADDR, payload)

    def stop(self, timeout: float = 5.0) -> None:
        """Shut every node down (graceful SHUTDOWN, then terminate)."""
        for member in self._members.values():
            link = member.link
            if link is not None and link.alive:
                try:
                    link.send(frames.SHUTDOWN)
                except OSError:
                    pass
        for member in self._members.values():
            process = member.process
            if process is not None and process.is_alive():
                process.join(timeout=timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=timeout)
            if member.link is not None:
                member.link.close()
        self._started = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def kill(self, member_id: Any) -> None:
        """SIGKILL a node mid-run: no warning, no flush, no goodbye.

        Accepts a node id or any replica id it hosts; every tenant goes
        down with the process.  What survives is each tenant's durable
        checkpoint + WAL tail; peers' streams break and enter their
        reconnect loops.
        """
        node_id = self._resolve_node(member_id)
        member = self._members[node_id]
        if member.process is None or not member.process.is_alive():
            raise LiveRuntimeError(f"node {node_id!r} is not running")
        member.process.kill()
        member.process.join()
        if member.link is not None:
            member.link.close()
            member.link = None
        self.addresses.pop(node_id, None)
        self._crashes += 1
        down_at = time.time() - self.clock_origin
        for rid in member.config.replica_ids:
            self._down_since[rid] = down_at

    def restart(self, member_id: Any, timeout: float = 30.0) -> None:
        """Boot a fresh process for the node from its durable state.

        The new node replays each tenant's checkpoint + WAL tail, binds a
        fresh port, reconnects its peer streams (learning addresses from
        the map in its config) and answers every peer's ``SYNC`` with the
        updates they missed — the live crash-recovery path.
        """
        node_id = self._resolve_node(member_id)
        member = self._members[node_id]
        if member.process is not None and member.process.is_alive():
            raise LiveRuntimeError(f"node {node_id!r} is still running")
        if member.config.durable_dir is None:
            raise LiveRuntimeError(
                "restart requires durable state (a diskless node would "
                "reissue already-used update ids); construct the cluster "
                "with durable_dir"
            )
        member.config = dataclasses.replace(
            member.config, peers=dict(self.addresses), listen_port=0
        )
        self._spawn(member)
        deadline = time.monotonic() + timeout
        while node_id not in self.addresses:
            self._collect_ready(deadline)
        self._connect_control(node_id)
        self._broadcast_addresses()
        self._restarts += 1
        up_at = time.time() - self.clock_origin
        for rid in member.config.replica_ids:
            down_at = self._down_since.pop(rid, None)
            if down_at is not None:
                self._downtime.setdefault(rid, []).append((down_at, up_at))

    def alive(self, member_id: Any) -> bool:
        """``True`` while the node's process runs and its link is open."""
        node_id = self._resolve_node(member_id)
        member = self._members[node_id]
        return (
            member.process is not None
            and member.process.is_alive()
            and member.link is not None
            and member.link.alive
        )

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def link(self, member_id: Any) -> Optional[ControlLink]:
        """The hosting node's control link, or ``None`` while it is down.

        Accepts a node id or a replica id — clients address replicas; the
        placement decides which process answers.
        """
        try:
            node_id = self._resolve_node(member_id)
        except LiveRuntimeError:
            return None
        member = self._members.get(node_id)
        if member is None or member.link is None or not member.link.alive:
            return None
        return member.link

    def next_op_id(self) -> int:
        self._op_counter += 1
        return self._op_counter

    def run_open_loop(self, workload: Any, time_scale: float = 0.001,
                      drain_timeout: float = 60.0) -> LiveRunResult:
        """Drive an open-loop workload, drain, and collect the result.

        Convenience wrapper around :class:`~repro.net.client.OpenLoopClient`
        + :meth:`drain` + :meth:`collect`.
        """
        from .client import OpenLoopClient

        started = time.perf_counter()
        client = OpenLoopClient(self)
        outcome = client.run(workload, time_scale=time_scale)
        self.drain(timeout=drain_timeout)
        wall = time.perf_counter() - started
        return self.collect(
            operation_latencies=outcome.latencies,
            rejected_operations=outcome.rejected,
            wall_duration=wall,
        )

    # ------------------------------------------------------------------
    # Quiescence and collection
    # ------------------------------------------------------------------
    def poll_stats(self) -> Dict[NodeId, Tuple[frames.NodeStats, dict, dict]]:
        """One STATS round-trip per live node."""
        out = {}
        for node_id in sorted(self._members, key=_id_order):
            link = self.link(node_id)
            if link is not None:
                out[node_id] = link.request_stats()
        return out

    def _quiescent(
        self, snapshot: Dict[NodeId, Tuple[frames.NodeStats, dict, dict]]
    ) -> bool:
        if set(snapshot) != set(self._members):
            return False
        for stats, _, _ in snapshot.values():
            if stats.pending or stats.send_queue or stats.unacked:
                return False
        # Channel-keyed progress books: compare what i's hosting node has
        # logged on channel (i, j) against what j's hosting node has
        # first-received on it.  Placement-independent — an intra-node
        # channel's books live on the same node, but the comparison is
        # identical.
        for i, j in self.share_graph.edges:
            sent = snapshot[self._replica_node[i]][1].get((i, j), 0)
            got = snapshot[self._replica_node[j]][2].get((i, j), 0)
            if sent != got:
                return False
        return True

    def drain(self, timeout: float = 60.0, poll_interval: float = 0.05,
              stable_polls: int = 2) -> None:
        """Block until the cluster has fully propagated and applied.

        Raises :class:`LiveRuntimeError` with the last stats snapshot when
        the deadline passes — the live analogue of the simulator's
        ``run_until_quiescent`` step budget.
        """
        deadline = time.monotonic() + timeout
        stable = 0
        previous = None
        while time.monotonic() < deadline:
            snapshot = self.poll_stats()
            if self._quiescent(snapshot):
                stable = stable + 1 if snapshot == previous else 1
                if stable >= stable_polls:
                    return
            else:
                stable = 0
            previous = snapshot
            time.sleep(poll_interval)
        raise LiveRuntimeError(
            f"cluster did not quiesce within {timeout}s; last stats: "
            f"{ {node_id: entry[0] for node_id, entry in self.poll_stats().items()} }"
        )

    def collect(self, operation_latencies: Optional[List[float]] = None,
                rejected_operations: int = 0,
                wall_duration: float = 0.0) -> LiveRunResult:
        """Fetch every node's report and merge the cluster-wide result."""
        reports: Dict[ReplicaId, Dict[str, Any]] = {}
        node_reports: Dict[NodeId, Dict[str, Any]] = {}
        for node_id in sorted(self._members, key=_id_order):
            link = self.link(node_id)
            if link is None:
                raise LiveRuntimeError(
                    f"cannot collect from down node {node_id!r}; restart it first"
                )
            node_report = link.request_report()
            node_reports[node_id] = {
                key: value
                for key, value in node_report.items()
                if key != "tenants"
            }
            reports.update(node_report["tenants"])
        telemetry = {
            node_id: list(member.link.telemetry)
            for node_id, member in sorted(
                self._members.items(), key=lambda kv: _id_order(kv[0])
            )
            if member.link is not None and member.link.telemetry
        }
        return merge_reports(
            self.share_graph,
            reports,
            operation_latencies=operation_latencies,
            rejected_operations=rejected_operations,
            wall_duration=wall_duration,
            crashes=self._crashes,
            restarts=self._restarts,
            downtime=self._downtime,
            telemetry=telemetry,
            node_reports=node_reports,
        )
