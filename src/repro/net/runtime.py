"""The multi-process launcher: a live cluster of replica nodes on localhost.

:class:`LiveCluster` spawns one OS process per replica
(:func:`repro.net.node.node_main` under the ``spawn`` start method, so each
node owns a clean interpreter and asyncio loop), wires the address map,
drives client operations over per-node control connections, and collects
the end-of-run reports the consistency checker consumes.

The launcher is deliberately synchronous — plain sockets plus one reader
thread per control link — so tests and benchmarks drive it like any other
fixture.  The interesting concurrency all lives in the nodes.

Lifecycle::

    with LiveCluster(graph, durable_dir=tmp) as cluster:   # start() implied
        result = cluster.run_open_loop(workload)           # client + drain
        report = result.check_consistency()

Fault injection is first-class: :meth:`LiveCluster.kill` SIGKILLs a node
mid-run and :meth:`LiveCluster.restart` boots a fresh process from the
node's durable snapshot; the channel reconnect + ``SYNC`` resync protocol
(:mod:`repro.net.node`) brings it back in sync, exactly like the
simulator's crash/restart path.

**Quiescence detection.**  The launcher polls every node's ``STATS`` frame
and declares the cluster drained when (a) every per-channel durable
progress book matches — for each directed share-graph edge ``e_ij``, node
``i`` has logged exactly as many updates for ``j`` as ``j`` has ever
received from ``i`` — and (b) every node reports empty send queues, no
unacked messages and an empty pending buffer, and (c) the whole snapshot
is stable across consecutive polls.  The books are derived from
crash-durable state, so the condition stays sound across kill/restart
cycles.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.consistency import ConsistencyChecker, ConsistencyReport
from ..core.errors import SimulationError
from ..core.host import LatencySummary, RunMetrics
from ..core.protocol import ReplicaEvent, UpdateId
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..sim.engine import ReliabilityConfig
from ..wire.primitives import WireFormatError
from . import frames
from .framing import StreamDecoder, encode_frame
from .node import (
    Address,
    BatchPolicy,
    Channel,
    NodeConfig,
    edge_indexed_factory,
    node_main,
)


class LiveRuntimeError(SimulationError):
    """A live-cluster orchestration failure (boot, drain, or collection)."""


# ======================================================================
# Control links (launcher → node)
# ======================================================================

class ControlLink:
    """One synchronous control connection to a node.

    Writes happen on the caller's thread (serialised by a lock); a daemon
    reader thread decodes incoming frames and dispatches operation replies,
    stats and reports to their waiters.
    """

    def __init__(self, address: Address, timeout: float = 5.0) -> None:
        self.address = address
        self.sock = socket.create_connection(address, timeout=timeout)
        self.sock.settimeout(None)
        self.alive = True
        self._send_lock = threading.Lock()
        self._stats: "queue.Queue[bytes]" = queue.Queue()
        self._reports: "queue.Queue[bytes]" = queue.Queue()
        #: op_id -> (submit wall time, reply slot); filled by the reader.
        self._pending_ops: Dict[int, List[Any]] = {}
        self._ops_lock = threading.Lock()
        self.op_replies: Dict[int, Tuple[float, int, Any]] = {}
        #: TELEMETRY pushes collected by the reader thread, in arrival
        #: order: ``(sample time, replica id, samples)`` triples.
        self.telemetry: List[Tuple[float, Any, list]] = []
        self.send(frames.CONTROL_HELLO)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def send(self, kind: int, payload: bytes = b"") -> None:
        data = encode_frame(kind, payload)
        with self._send_lock:
            self.sock.sendall(data)

    def submit_op(self, op_id: int, kind: str, register: Any, value: Any) -> None:
        """Fire one operation (open-loop: the reply arrives asynchronously)."""
        with self._ops_lock:
            self._pending_ops[op_id] = [time.perf_counter()]
        self.send(frames.OP, frames.encode_op(op_id, kind, register, value))

    def outstanding_ops(self) -> int:
        with self._ops_lock:
            return len(self._pending_ops)

    def request_stats(
        self, timeout: float = 5.0
    ) -> Tuple[frames.NodeStats, dict, dict]:
        self.send(frames.STATS_REQ)
        try:
            payload = self._stats.get(timeout=timeout)
        except queue.Empty:
            raise LiveRuntimeError(
                f"node at {self.address} did not answer STATS within {timeout}s"
            ) from None
        return frames.decode_stats_payload(payload)

    def request_report(self, timeout: float = 10.0) -> Dict[str, Any]:
        self.send(frames.REPORT_REQ)
        try:
            payload = self._reports.get(timeout=timeout)
        except queue.Empty:
            raise LiveRuntimeError(
                f"node at {self.address} did not answer REPORT within {timeout}s"
            ) from None
        return pickle.loads(payload)

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass

    def _read_loop(self) -> None:
        decoder = StreamDecoder()
        try:
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    break
                for kind, payload in decoder.feed(chunk):
                    self._dispatch(kind, payload)
        except (OSError, WireFormatError):
            pass
        finally:
            self.alive = False

    def _dispatch(self, kind: int, payload: bytes) -> None:
        if kind == frames.OP_REPLY:
            op_id, status, value = frames.decode_op_reply(payload)
            with self._ops_lock:
                entry = self._pending_ops.pop(op_id, None)
            if entry is not None:
                self.op_replies[op_id] = (
                    time.perf_counter() - entry[0], status, value
                )
        elif kind == frames.STATS:
            self._stats.put(payload)
        elif kind == frames.REPORT:
            self._reports.put(payload)
        elif kind == frames.TELEMETRY:
            self.telemetry.append(frames.decode_telemetry_payload(payload))


# ======================================================================
# The run result
# ======================================================================

@dataclass
class LiveRunResult:
    """Everything a finished (drained) live run reports.

    The cluster-wide view stitched from the per-node reports: the same
    event traces, metrics and verdicts the simulator produces, fed from
    wall-clock processes — which is exactly what the differential harness
    compares.
    """

    share_graph: ShareGraph
    reports: Dict[ReplicaId, Dict[str, Any]]
    #: Merged cluster metrics; times are seconds relative to the cluster's
    #: clock origin.
    metrics: RunMetrics
    #: Wall-clock seconds the workload + drain took (the live makespan).
    wall_duration: float = 0.0
    #: Per-node TELEMETRY streams collected during the run: replica id →
    #: ``[(sample time, replica id, samples), …]`` in arrival order.
    telemetry: Dict[ReplicaId, List[Tuple[float, ReplicaId, list]]] = field(
        default_factory=dict
    )

    def events_by_replica(self) -> Dict[ReplicaId, Sequence[ReplicaEvent]]:
        """Each node's local issue/apply/read trace."""
        return {rid: report["events"] for rid, report in self.reports.items()}

    def check_consistency(self, check_liveness: bool = True) -> ConsistencyReport:
        """Validate the live execution against the paper's Definition 2.

        Same checker, same inputs as
        :meth:`repro.core.host.ReplicaHost.check_consistency` — the oracle
        does not care whether the trace came from simulated or real time.
        """
        checker = ConsistencyChecker(self.share_graph)
        return checker.check(
            self.events_by_replica(), check_liveness=check_liveness
        )

    def channel_streams(self) -> Dict[Channel, Tuple[UpdateId, ...]]:
        """First-receipt update-id stream per directed channel."""
        out: Dict[Channel, Tuple[UpdateId, ...]] = {}
        for report in self.reports.values():
            for channel, uids in report["streams"].items():
                out[channel] = tuple(uids)
        return out

    def final_state(self) -> Dict[Register, Dict[ReplicaId, Any]]:
        """Final value of every register at every replica storing it."""
        out: Dict[Register, Dict[ReplicaId, Any]] = {}
        for rid, report in self.reports.items():
            for register, value in report["store"].items():
                out.setdefault(register, {})[rid] = value
        return out

    def values(self, register: Register) -> Dict[ReplicaId, Any]:
        """The final value of ``register`` at every replica storing it."""
        return dict(self.final_state().get(register, {}))

    def trace_events(self) -> List[Tuple[float, str, UpdateId, ReplicaId, ReplicaId]]:
        """The merged cluster-wide lifecycle trace, sorted by time.

        Every node records into its own process-local
        :class:`~repro.obs.trace.TraceRecorder` against the shared
        ``clock_origin``, so concatenating the per-node event lists yields
        one coherent wall-relative trace — the same cross-process join the
        apply-latency merge performs, keyed by update id.
        """
        events: List[Any] = []
        for report in self.reports.values():
            events.extend(report.get("trace", ()))
        events.sort()
        return events

    def channel_wire_stats(self) -> Dict[Channel, Any]:
        """Per-channel outgoing wire books, merged across nodes.

        Each directed channel is owned by exactly one sending node, so the
        merge is a plain union — the live counterpart of the simulator's
        ``NetworkStats.per_channel``.
        """
        out: Dict[Channel, Any] = {}
        for report in self.reports.values():
            out.update(report.get("wire_stats", {}))
        return out

    @property
    def delivered_ops_per_sec(self) -> float:
        """Remote applies per wall-clock second over the whole run."""
        if self.wall_duration <= 0:
            return 0.0
        return self.metrics.applies / self.wall_duration

    def operation_latency_summary(self) -> LatencySummary:
        return self.metrics.operation_latency_summary()

    def apply_latency_summary(self) -> LatencySummary:
        return self.metrics.apply_latency_summary()


def merge_reports(
    share_graph: ShareGraph,
    reports: Dict[ReplicaId, Dict[str, Any]],
    operation_latencies: Optional[List[float]] = None,
    rejected_operations: int = 0,
    wall_duration: float = 0.0,
    crashes: int = 0,
    restarts: int = 0,
    downtime: Optional[Dict[ReplicaId, List[Tuple[float, float]]]] = None,
    telemetry: Optional[Dict[ReplicaId, List[Tuple[float, ReplicaId, list]]]] = None,
) -> LiveRunResult:
    """Fold per-node reports into one cluster-wide :class:`LiveRunResult`.

    Remote-apply latencies are joined across nodes: each node reports when
    it applied each update (wall-relative), the issuer reports when it was
    issued; the difference is the live analogue of the simulator's
    issue→apply latency samples.
    """
    metrics = RunMetrics()
    issue_times: Dict[UpdateId, float] = {}
    for report in reports.values():
        issue_times.update(report["issue_times"])
    for rid, report in reports.items():
        node_metrics: RunMetrics = report["metrics"]
        metrics.writes += node_metrics.writes
        metrics.reads += node_metrics.reads
        metrics.applies += node_metrics.applies
        metrics.apply_times.extend(node_metrics.apply_times)
        metrics.operation_times.extend(node_metrics.operation_times)
        for rid_pending, depth in node_metrics.max_pending.items():
            previous = metrics.max_pending.get(rid_pending, 0)
            metrics.max_pending[rid_pending] = max(previous, depth)
        for uid, applied_at in report["apply_times"].items():
            if uid[0] == rid:
                continue  # the issuer's own apply is not a remote apply
            issued_at = issue_times.get(uid)
            if issued_at is not None:
                metrics.apply_latencies.append(applied_at - issued_at)
    metrics.apply_times.sort()
    metrics.operation_times.sort()
    metrics.operation_latencies = list(operation_latencies or [])
    metrics.rejected_operations = rejected_operations
    # Fault accounting comes from the launcher — it injected the kills, so
    # it owns the timeline (a SIGKILLed process cannot count its own death,
    # and a restarted node's in-memory counters start from zero).
    metrics.crashes = crashes
    metrics.restarts = restarts
    metrics.downtime = {
        rid: list(intervals) for rid, intervals in (downtime or {}).items()
    }
    return LiveRunResult(
        share_graph=share_graph,
        reports=reports,
        metrics=metrics,
        wall_duration=wall_duration,
        telemetry=dict(telemetry or {}),
    )


# ======================================================================
# The launcher
# ======================================================================

@dataclass
class _Member:
    """One cluster member's process-side bookkeeping."""

    config: NodeConfig
    process: Any = None
    link: Optional[ControlLink] = None


class LiveCluster:
    """A live deployment of one share graph: one OS process per replica.

    Parameters
    ----------
    share_graph:
        The register placement / share graph to deploy.
    replica_factory:
        Protocol family per replica (default: the paper's edge-indexed
        algorithm).  Must be a picklable module-level callable (the spawn
        start method ships it to the child).
    batching, reliability:
        Wire-layer knobs forwarded to every node (seconds, not simulated
        units).
    durable_dir:
        Directory for per-node snapshot files; required for
        :meth:`kill`/:meth:`restart` recovery.  ``None`` runs diskless.
    tracing:
        Record the message-lifecycle trace at every node (wall-relative
        stamps against the shared clock origin); the merged trace comes
        back via :meth:`LiveRunResult.trace_events`.
    telemetry_interval:
        Seconds between ``TELEMETRY`` pushes from each node over the
        control link (``0`` disables); samples land on
        :attr:`LiveRunResult.telemetry`.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_factory: Callable = edge_indexed_factory,
        batching: Optional[BatchPolicy] = None,
        reliability: Optional[ReliabilityConfig] = None,
        durable_dir: Optional[str] = None,
        listen_host: str = "127.0.0.1",
        tracing: bool = False,
        telemetry_interval: float = 0.0,
    ) -> None:
        self.share_graph = share_graph
        self.listen_host = listen_host
        self.clock_origin = time.time()
        self._ctx = multiprocessing.get_context("spawn")
        self._ready: Any = self._ctx.Queue()
        self._members: Dict[ReplicaId, _Member] = {}
        self.addresses: Dict[ReplicaId, Address] = {}
        self._op_counter = 0
        self._started = False
        #: Launcher-side fault accounting (the launcher injects the faults,
        #: so it owns the timeline — node processes cannot count their own
        #: SIGKILLs).  Times are seconds relative to clock_origin.
        self._crashes = 0
        self._restarts = 0
        self._down_since: Dict[ReplicaId, float] = {}
        self._downtime: Dict[ReplicaId, List[Tuple[float, float]]] = {}
        batching = batching or BatchPolicy()
        reliability = reliability or ReliabilityConfig(
            resend_timeout=1.0, max_retries=8
        )
        if durable_dir is not None:
            os.makedirs(durable_dir, exist_ok=True)
        for rid in share_graph.replica_ids:
            snapshot_path = None
            if durable_dir is not None:
                snapshot_path = os.path.join(durable_dir, f"node-{rid}.state")
            self._members[rid] = _Member(config=NodeConfig(
                replica_id=rid,
                share_graph=share_graph,
                listen_host=listen_host,
                replica_factory=replica_factory,
                batching=batching,
                reliability=reliability,
                snapshot_path=snapshot_path,
                clock_origin=self.clock_origin,
                tracing=tracing,
                telemetry_interval=telemetry_interval,
            ))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "LiveCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self, timeout: float = 30.0) -> None:
        """Boot every node process and wire the address map."""
        if self._started:
            return
        self._started = True
        for member in self._members.values():
            self._spawn(member)
        deadline = time.monotonic() + timeout
        while len(self.addresses) < len(self._members):
            self._collect_ready(deadline)
        for rid in sorted(self._members):
            self._connect_control(rid)
        self._broadcast_addresses()

    def _spawn(self, member: _Member) -> None:
        member.process = self._ctx.Process(
            target=node_main,
            args=(member.config, self._ready),
            daemon=True,
            name=f"repro-node-{member.config.replica_id}",
        )
        member.process.start()

    def _collect_ready(self, deadline: float) -> None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            missing = sorted(set(self._members) - set(self.addresses))
            raise LiveRuntimeError(f"nodes {missing} never reported ready")
        try:
            rid, port = self._ready.get(timeout=min(remaining, 0.5))
        except queue.Empty:
            return
        self.addresses[rid] = (self.listen_host, port)

    def _connect_control(self, rid: ReplicaId) -> None:
        member = self._members[rid]
        member.link = ControlLink(self.addresses[rid])

    def _broadcast_addresses(self) -> None:
        for rid, address in sorted(self.addresses.items()):
            payload = frames.encode_addr(rid, *address)
            for other, member in self._members.items():
                if other != rid and member.link is not None and member.link.alive:
                    member.link.send(frames.ADDR, payload)

    def stop(self, timeout: float = 5.0) -> None:
        """Shut every node down (graceful SHUTDOWN, then terminate)."""
        for member in self._members.values():
            link = member.link
            if link is not None and link.alive:
                try:
                    link.send(frames.SHUTDOWN)
                except OSError:
                    pass
        for member in self._members.values():
            process = member.process
            if process is not None and process.is_alive():
                process.join(timeout=timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=timeout)
            if member.link is not None:
                member.link.close()
        self._started = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def kill(self, replica_id: ReplicaId) -> None:
        """SIGKILL a node mid-run: no warning, no flush, no goodbye.

        The process dies with its in-memory queues; what survives is the
        durable snapshot + sent-log it last persisted.  Peers' channel
        connections break and enter their reconnect loops.
        """
        member = self._members[replica_id]
        if member.process is None or not member.process.is_alive():
            raise LiveRuntimeError(f"replica {replica_id!r} is not running")
        member.process.kill()
        member.process.join()
        if member.link is not None:
            member.link.close()
            member.link = None
        self.addresses.pop(replica_id, None)
        self._crashes += 1
        self._down_since[replica_id] = time.time() - self.clock_origin

    def restart(self, replica_id: ReplicaId, timeout: float = 30.0) -> None:
        """Boot a fresh process for ``replica_id`` from its durable state.

        The new node loads its snapshot + sent-log, binds a fresh port,
        reconnects its outbound channels (learning peers from the address
        map in its config) and answers every peer's ``SYNC`` with the
        updates they missed — the live crash-recovery path.
        """
        member = self._members[replica_id]
        if member.process is not None and member.process.is_alive():
            raise LiveRuntimeError(f"replica {replica_id!r} is still running")
        if member.config.snapshot_path is None:
            raise LiveRuntimeError(
                "restart requires durable snapshots (a diskless node would "
                "reissue already-used update ids); construct the cluster "
                "with durable_dir"
            )
        member.config = dataclasses.replace(
            member.config, peers=dict(self.addresses), listen_port=0
        )
        self._spawn(member)
        deadline = time.monotonic() + timeout
        while replica_id not in self.addresses:
            self._collect_ready(deadline)
        self._connect_control(replica_id)
        self._broadcast_addresses()
        self._restarts += 1
        down_at = self._down_since.pop(replica_id, None)
        if down_at is not None:
            self._downtime.setdefault(replica_id, []).append(
                (down_at, time.time() - self.clock_origin)
            )

    def alive(self, replica_id: ReplicaId) -> bool:
        """``True`` while the node's process runs and its link is open."""
        member = self._members[replica_id]
        return (
            member.process is not None
            and member.process.is_alive()
            and member.link is not None
            and member.link.alive
        )

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def link(self, replica_id: ReplicaId) -> Optional[ControlLink]:
        """The node's control link, or ``None`` while it is down."""
        member = self._members.get(replica_id)
        if member is None or member.link is None or not member.link.alive:
            return None
        return member.link

    def next_op_id(self) -> int:
        self._op_counter += 1
        return self._op_counter

    def run_open_loop(self, workload: Any, time_scale: float = 0.001,
                      drain_timeout: float = 60.0) -> LiveRunResult:
        """Drive an open-loop workload, drain, and collect the result.

        Convenience wrapper around :class:`~repro.net.client.OpenLoopClient`
        + :meth:`drain` + :meth:`collect`.
        """
        from .client import OpenLoopClient

        started = time.perf_counter()
        client = OpenLoopClient(self)
        outcome = client.run(workload, time_scale=time_scale)
        self.drain(timeout=drain_timeout)
        wall = time.perf_counter() - started
        return self.collect(
            operation_latencies=outcome.latencies,
            rejected_operations=outcome.rejected,
            wall_duration=wall,
        )

    # ------------------------------------------------------------------
    # Quiescence and collection
    # ------------------------------------------------------------------
    def poll_stats(self) -> Dict[ReplicaId, Tuple[frames.NodeStats, dict, dict]]:
        """One STATS round-trip per live node."""
        out = {}
        for rid in sorted(self._members):
            link = self.link(rid)
            if link is not None:
                out[rid] = link.request_stats()
        return out

    def _quiescent(
        self, snapshot: Dict[ReplicaId, Tuple[frames.NodeStats, dict, dict]]
    ) -> bool:
        if set(snapshot) != set(self._members):
            return False
        for stats, _, _ in snapshot.values():
            if stats.pending or stats.send_queue or stats.unacked:
                return False
        for i, j in self.share_graph.edges:
            sent = snapshot[i][1].get(j, 0)
            got = snapshot[j][2].get(i, 0)
            if sent != got:
                return False
        return True

    def drain(self, timeout: float = 60.0, poll_interval: float = 0.05,
              stable_polls: int = 2) -> None:
        """Block until the cluster has fully propagated and applied.

        Raises :class:`LiveRuntimeError` with the last stats snapshot when
        the deadline passes — the live analogue of the simulator's
        ``run_until_quiescent`` step budget.
        """
        deadline = time.monotonic() + timeout
        stable = 0
        previous = None
        while time.monotonic() < deadline:
            snapshot = self.poll_stats()
            if self._quiescent(snapshot):
                stable = stable + 1 if snapshot == previous else 1
                if stable >= stable_polls:
                    return
            else:
                stable = 0
            previous = snapshot
            time.sleep(poll_interval)
        raise LiveRuntimeError(
            f"cluster did not quiesce within {timeout}s; last stats: "
            f"{ {rid: entry[0] for rid, entry in self.poll_stats().items()} }"
        )

    def collect(self, operation_latencies: Optional[List[float]] = None,
                rejected_operations: int = 0,
                wall_duration: float = 0.0) -> LiveRunResult:
        """Fetch every node's report and merge the cluster-wide result."""
        reports = {}
        for rid in sorted(self._members):
            link = self.link(rid)
            if link is None:
                raise LiveRuntimeError(
                    f"cannot collect from down replica {rid!r}; restart it first"
                )
            reports[rid] = link.request_report()
        telemetry = {
            rid: list(member.link.telemetry)
            for rid, member in sorted(self._members.items())
            if member.link is not None and member.link.telemetry
        }
        return merge_reports(
            self.share_graph,
            reports,
            operation_latencies=operation_latencies,
            rejected_operations=rejected_operations,
            wall_duration=wall_duration,
            crashes=self._crashes,
            restarts=self._restarts,
            downtime=self._downtime,
            telemetry=telemetry,
        )
