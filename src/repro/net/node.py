"""One live node: an asyncio process hosting many replicas over TCP.

A :class:`LiveNode` hosts a set of :class:`~repro.core.protocol.CausalReplica`
*tenants* — the paper's algorithm by default — behind a single listener, and
decouples the logical communication graph from the physical one:

* **one peer stream per ordered node pair**: instead of one TCP connection
  per directed share-graph edge, a node opens exactly one connection to
  each peer node it has traffic for and multiplexes every channel between
  replicas on the two nodes onto it.  A :class:`~repro.wire.batch.MessageBatch`
  envelope already names its channel ``(sender, destination)``, so frames
  from many channels interleave with no extra tag; the receiver
  demultiplexes by destination replica.  FD count drops from O(|E|) to
  O(hosts²);
* **per-channel FIFO, batching and delta chains, preserved per tag**: each
  channel keeps its own bounded send queue (backpressure), batching window
  (flushed by count or wall-clock deadline) and outstanding set; the
  per-stream :class:`~repro.wire.channel.ChannelDeltaEncoder` keys its
  timestamp chains by channel, and a reconnect resets *all* chains on that
  stream — the multiplexed reading of the simulator's channel epochs;
* **intra-node short-circuit**: a channel between two tenants of the same
  node never touches a socket or a codec — the copy goes straight through
  the in-process batch-apply path (:meth:`LiveNodeHost.deliver`) and acks
  synchronously;
* **ack + resend reliability** mirroring
  :class:`~repro.sim.engine.ReliabilityConfig`: ACK/SYNC frames ride the
  peer stream tagged with the replica they speak for; unacknowledged
  messages are re-offered after ``resend_timeout`` seconds and on every
  reconnect, and duplicate suppression keeps delivery exactly-once;
* **log-structured durability** (:mod:`repro.net.wal`): with a
  ``durable_dir`` configured every state change appends one O(delta)
  record to the tenant's write-ahead log — client writes and reads as
  replayable operations, delivered batches as wire frames, acks as
  sent-log prunes — with periodic compaction into a checkpoint.  A
  SIGKILLed node replays checkpoint + log tail and resyncs over the
  ``SYNC`` exchange, exactly like a simulated crash.

Each tenant keeps its own :class:`LiveNodeHost` (the shared
:class:`~repro.core.host.ReplicaHost` surface), so metrics, event traces
and the consistency check are per-replica and the simulator stays the
executable spec.

Nodes are normally spawned by :class:`~repro.net.runtime.LiveCluster`; the
module-level :func:`node_main` is the process entry point.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError, ReproError
from ..core.host import ReplicaHost
from ..core.protocol import CausalReplica, UpdateId, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..sim.engine import ChannelWireStats, ReliabilityConfig
from ..wire.batch import MessageBatch, decode_batch, encode_batch
from ..wire.channel import ChannelDeltaDecoder, ChannelDeltaEncoder
from ..wire.primitives import WireFormatError
from . import frames
from . import wal as wal_records
from .framing import StreamDecoder, encode_frame
from .wal import ReplicaWAL, WalCheckpoint

Channel = Tuple[ReplicaId, ReplicaId]
Address = Tuple[str, int]
#: Node identifiers are atoms (ints or short strings), like replica ids.
NodeId = Any


def _id_order(value: Any) -> Tuple[bool, Any]:
    """Deterministic sort key for mixed int/str atom identifiers."""
    return (isinstance(value, str), value)


def edge_indexed_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """The default live factory: the paper's edge-indexed algorithm."""
    return EdgeIndexedReplica(graph, replica_id)


@dataclass(frozen=True)
class BatchPolicy:
    """The live analogue of :class:`~repro.sim.engine.BatchingConfig`.

    Same knobs, wall-clock units: a channel's window flushes at
    ``max_messages`` or after ``max_delay`` *seconds*, whichever first.
    """

    max_messages: int = 16
    max_delay: float = 0.002
    delta_encoding: bool = True

    def __post_init__(self) -> None:
        if self.max_messages < 1:
            raise ConfigurationError("batching max_messages must be at least 1")
        if self.max_delay < 0:
            raise ConfigurationError("batching max_delay must be non-negative")


@dataclass(frozen=True)
class NodeConfig:
    """Everything one node process needs to boot (picklable for spawn)."""

    node_id: NodeId
    share_graph: ShareGraph
    #: The replicas this node hosts.
    replica_ids: Tuple[ReplicaId, ...]
    #: Cluster-wide placement: replica id → hosting node id.  Replicas
    #: absent from the map are assumed to live on a node named after them
    #: (the single-tenant default).
    replica_nodes: Mapping[ReplicaId, NodeId] = field(default_factory=dict)
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    #: Initial peer-node address map; updated at runtime by ``ADDR`` frames
    #: and stream hellos (a restarted peer announces its new port).
    peers: Mapping[NodeId, Address] = field(default_factory=dict)
    replica_factory: Callable[[ShareGraph, ReplicaId], CausalReplica] = (
        edge_indexed_factory
    )
    batching: BatchPolicy = field(default_factory=BatchPolicy)
    #: Ack + resend parameters, in seconds (the live reading of the same
    #: contract the simulator's transport enforces in simulated units).
    reliability: ReliabilityConfig = field(
        default_factory=lambda: ReliabilityConfig(resend_timeout=1.0, max_retries=8)
    )
    #: Bound of each per-channel send queue (the backpressure limit).
    send_queue_limit: int = 4096
    #: Directory for per-replica checkpoint + WAL files; ``None`` runs
    #: diskless (no crash recovery).
    durable_dir: Optional[str] = None
    #: Compact a tenant's log into a checkpoint once it exceeds this size.
    wal_compact_bytes: int = 1 << 18
    #: Wall-clock epoch all host times are measured from (the launcher's
    #: start time, shared by every node so latencies compose).
    clock_origin: float = 0.0
    reconnect_backoff: float = 0.05
    reconnect_backoff_max: float = 1.0
    #: Record the message-lifecycle trace (issue/send/wire/deliver/apply
    #: stamps, wall time relative to ``clock_origin``); off by default —
    #: the untraced hot path pays one ``is not None`` check per hook.
    tracing: bool = False
    #: Push a ``TELEMETRY`` frame (queue depths, wire-byte counters,
    #: transport footprint, WAL counters) over every open control
    #: connection each interval; ``0`` disables.
    telemetry_interval: float = 0.0


class LiveNodeHost(ReplicaHost):
    """The :class:`~repro.core.host.ReplicaHost` of one live tenant.

    One replica per host, wall-clock time (seconds since the cluster's
    ``clock_origin``).  A multi-tenant node keeps one host per tenant so
    metrics, issue books and traces stay per-replica; the launcher
    stitches them back into a cluster-wide view at report collection.

    The optional ``at`` arguments pin an operation to a recorded time —
    the WAL replay path re-executes logged operations at their original
    stamps, regenerating the identical event trace.
    """

    def __init__(self, share_graph: ShareGraph, replica: CausalReplica,
                 clock_origin: float = 0.0) -> None:
        super().__init__(share_graph)
        self.replica = replica
        self._replicas = {replica.replica_id: replica}
        self._clock_origin = clock_origin or time.time()
        self._time_override: Optional[float] = None

    @property
    def now(self) -> float:
        """Seconds since the cluster's shared clock origin (wall clock)."""
        if self._time_override is not None:
            return self._time_override
        return time.time() - self._clock_origin

    def _replica_map(self) -> Mapping[ReplicaId, CausalReplica]:
        return self._replicas

    # ------------------------------------------------------------------
    # Client operations (the live counterpart of Cluster.write/read)
    # ------------------------------------------------------------------
    def perform_write(self, register: Register, value: Any,
                      at: Optional[float] = None):
        """Apply a write locally; returns ``(update, outgoing messages)``."""
        self._time_override = at
        try:
            messages = self.replica.write(register, value, sim_time=self.now)
            self._record_operation("write")
            update = self.replica.applied[-1]
            self._note_issue(update)
        finally:
            self._time_override = None
        return update, messages

    def perform_read(self, register: Register,
                     at: Optional[float] = None) -> Any:
        """Serve a read from the local copy."""
        self._time_override = at
        try:
            self._record_operation("read")
            return self.replica.read(register, sim_time=self.now)
        finally:
            self._time_override = None

    def submit_operation(self, operation: Any) -> Any:
        """Execute one workload operation (messages are NOT transported).

        Exists for surface parity with the simulator hosts; the node's
        async op handler uses :meth:`perform_write` / :meth:`perform_read`
        directly so it can route the returned messages onto the channels.
        """
        if operation.kind == "write":
            return self.perform_write(operation.register, operation.value)[0]
        if operation.kind == "read":
            return self.perform_read(operation.register)
        raise ConfigurationError(f"unknown operation kind {operation.kind!r}")

    def deliver(self, messages: List[UpdateMessage],
                at: Optional[float] = None):
        """Buffer a received batch and run one apply pass (as the sim does)."""
        self._time_override = at
        try:
            return self._apply_batch(self.replica, messages)
        finally:
            self._time_override = None


class _Tenant:
    """One hosted replica's complete per-replica state.

    Everything that was per-node before multi-tenancy is per-tenant now:
    the replica, its host (metrics/trace/issue books), the durable
    sent-log + outbox totals, the first-receipt streams, counters, wire
    books and the write-ahead log.
    """

    def __init__(self, node: "LiveNode", replica_id: ReplicaId) -> None:
        config = node.config
        graph = config.share_graph
        self.replica_id = replica_id
        self.replica = config.replica_factory(graph, replica_id)
        self.host = LiveNodeHost(graph, self.replica,
                                 clock_origin=node.clock_origin)
        #: Durable per-destination outbox, mirrored from the simulator's
        #: transport sent-log (PR 2); the SYNC exchange re-sends from it.
        #: Pruned on ack — an acked update is durable at its receiver.
        self.sent_log: Dict[ReplicaId, Dict[UpdateId, UpdateMessage]] = {}
        #: Total updates ever logged per destination (survives pruning and
        #: crashes; the launcher's drain books compare this against the
        #: receiver's first-receipt count).
        self.outbox_total: Dict[ReplicaId, int] = {}
        #: First-receipt uid stream per incoming channel (differential data).
        self.streams: Dict[Channel, List[UpdateId]] = {}
        #: Wall-relative apply time per uid (cross-node latency joins).
        self.apply_times: Dict[UpdateId, float] = {}
        self.counters: Dict[str, int] = {
            "ops_done": 0, "issued": 0, "enqueued": 0, "sent": 0,
            "received": 0, "delivered": 0, "duplicates": 0,
            "retransmissions": 0, "resyncs": 0,
            "delta_frames": 0, "full_frames": 0,
        }
        #: Byte-accurate per-channel outgoing wire books, fed by every
        #: stream flush — the live mirror of the simulator's
        #: ``NetworkStats.per_channel``.  Intra-node channels ship no
        #: bytes and never appear here.
        self.wire_stats: Dict[Channel, ChannelWireStats] = {}
        self.tracer: Optional[Any] = None
        if config.tracing:
            from ..obs.trace import TraceRecorder
            self.tracer = TraceRecorder()
            self.host.tracer = self.tracer
        self.wal: Optional[ReplicaWAL] = None
        if config.durable_dir:
            self.wal = ReplicaWAL(config.durable_dir, replica_id,
                                  compact_bytes=config.wal_compact_bytes)
        self.recovered = False
        #: Uids this tenant has seen (applied + pending), for first-receipt
        #: stream recording; rebuilt from the replica after recovery.
        self.seen_uids: set = set()

    # ------------------------------------------------------------------
    # Wire accounting
    # ------------------------------------------------------------------
    def account_wire(self, channel: Channel, sizes: Any, messages: int) -> None:
        """Book one flushed batch into the per-channel wire statistics."""
        book = self.wire_stats.setdefault(channel, ChannelWireStats())
        book.messages += messages
        book.batches += 1
        book.header_bytes += sizes.header_bytes
        book.timestamp_bytes += sizes.timestamp_bytes
        book.payload_bytes += sizes.payload_bytes
        self.counters["delta_frames"] += sizes.delta_frames
        self.counters["full_frames"] += sizes.full_frames

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def note_acked(self, destination: ReplicaId, uids: List[UpdateId],
                   log: bool = True) -> None:
        """Prune acked updates from the sent-log (and make it durable)."""
        book = self.sent_log.get(destination)
        if not book:
            return
        pruned = [uid for uid in uids if book.pop(uid, None) is not None]
        if pruned and log and self.wal is not None:
            self.wal.append(
                wal_records.W_ACK,
                wal_records.encode_ack_record(destination, pruned),
            )

    def checkpoint_state(self) -> WalCheckpoint:
        return WalCheckpoint(
            replica=self.replica.snapshot(),
            sent_log=self.sent_log,
            outbox_total=self.outbox_total,
            streams=self.streams,
            apply_times=self.apply_times,
            issue_times=dict(self.host._issue_times),
        )

    def maybe_compact(self) -> None:
        if self.wal is not None and self.wal.should_compact():
            self.wal.checkpoint(self.checkpoint_state())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def telemetry_samples(self) -> List[Tuple[str, tuple, float]]:
        me = (("replica", str(self.replica_id)),)
        samples: List[Tuple[str, tuple, float]] = [
            (f"repro_node_{name}_total", me, float(value))
            for name, value in sorted(self.counters.items())
        ]
        samples.append((
            "repro_node_pending_depth", me, float(self.replica.pending_count()),
        ))
        for (src, dst), book in sorted(self.wire_stats.items()):
            channel_labels = (("dst", str(dst)), ("src", str(src)))
            samples.append((
                "repro_node_wire_messages_total", channel_labels,
                float(book.messages)))
            samples.append((
                "repro_node_wire_batches_total", channel_labels,
                float(book.batches)))
            samples.append((
                "repro_node_wire_timestamp_bytes_total", channel_labels,
                float(book.timestamp_bytes)))
            samples.append((
                "repro_node_wire_payload_bytes_total", channel_labels,
                float(book.payload_bytes)))
        return samples

    def report(self) -> Dict[str, Any]:
        """The per-replica report the launcher folds into the cluster view."""
        return {
            "replica_id": self.replica_id,
            "events": tuple(self.replica.events),
            "store": dict(self.replica.store),
            "streams": {
                channel: list(uids) for channel, uids in self.streams.items()
            },
            "metrics": self.host.metrics,
            "issue_times": dict(self.host._issue_times),
            "apply_times": dict(self.apply_times),
            "duplicates_ignored": self.replica.duplicates_ignored,
            "metadata_size": self.replica.metadata_size(),
            "counters": dict(self.counters),
            "recovered": self.recovered,
            "wire_stats": dict(self.wire_stats),
            "trace": list(self.tracer.events) if self.tracer is not None else [],
        }


class _ChannelState:
    """One channel's slice of a peer stream: FIFO queue, window, reliability."""

    __slots__ = ("channel", "queue", "inflight", "outstanding", "window",
                 "deadline", "seq")

    def __init__(self, channel: Channel, queue_limit: int) -> None:
        self.channel = channel
        self.queue: "asyncio.Queue[UpdateMessage]" = asyncio.Queue(
            maxsize=queue_limit
        )
        #: Uids somewhere between enqueue and ack (queue, open window, or
        #: outstanding).  The SYNC resync skips these: a message already on
        #: its way must not be re-offered just because the peer's known-set
        #: predates it.
        self.inflight: set = set()
        #: uid -> (message, last send wall time, attempts).
        self.outstanding: Dict[UpdateId, Tuple[UpdateMessage, float, int]] = {}
        self.window: List[UpdateMessage] = []
        self.deadline = 0.0
        self.seq = 0


class _PeerStream:
    """The sending half of one ordered node pair.

    Owns the single TCP connection to ``peer``, the per-channel states
    multiplexed onto it, the stream-wide delta encoder (keyed by channel
    internally; ``reset()`` on a fresh connection restarts every chain —
    the per-stream epoch), the reconnect loop and the ACK/SYNC reply
    reader.  One send-loop task drains every channel — tasks scale with
    node pairs, not share-graph edges.
    """

    def __init__(self, node: "LiveNode", peer: NodeId) -> None:
        self.node = node
        self.peer = peer
        self.channels: Dict[Channel, _ChannelState] = {}
        policy = node.config.batching
        self.encoder = ChannelDeltaEncoder() if policy.delta_encoding else None
        #: Channels with queued messages, in arrival order (dict-as-ordered-set).
        self._dirty: Dict[Channel, None] = {}
        self._wake = asyncio.Event()
        self.connected = False

    def channel_state(self, channel: Channel) -> _ChannelState:
        state = self.channels.get(channel)
        if state is None:
            state = _ChannelState(channel, self.node.config.send_queue_limit)
            self.channels[channel] = state
        return state

    async def enqueue(self, message: UpdateMessage) -> None:
        """Join the channel's FIFO stream (blocks when saturated)."""
        channel = (message.sender, message.destination)
        state = self.channel_state(channel)
        tenant = self.node.tenants[message.sender]
        tenant.counters["enqueued"] += 1
        state.inflight.add(message.update.uid)
        if tenant.tracer is not None:
            tenant.tracer.record("send", message.update.uid,
                                 channel[0], channel[1], self.node.now)
        await state.queue.put(message)
        self._dirty[channel] = None
        self._wake.set()

    def offer(self, message: UpdateMessage) -> bool:
        """Non-blocking enqueue for retransmissions; ``False`` when full."""
        channel = (message.sender, message.destination)
        state = self.channel_state(channel)
        try:
            state.queue.put_nowait(message)
        except asyncio.QueueFull:
            return False
        state.inflight.add(message.update.uid)
        self._dirty[channel] = None
        self._wake.set()
        return True

    # ------------------------------------------------------------------
    # The stream task
    # ------------------------------------------------------------------
    async def run(self) -> None:
        backoff = self.node.config.reconnect_backoff
        while not self.node.stopping.is_set():
            address = self.node.addresses.get(self.peer)
            if address is None:
                await asyncio.sleep(backoff)
                continue
            try:
                reader, writer = await asyncio.open_connection(*address)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.node.config.reconnect_backoff_max)
                continue
            backoff = self.node.config.reconnect_backoff
            self.connected = True
            # A fresh connection is a fresh byte stream: every channel's
            # delta chain and batch sequence restart, exactly like a
            # post-crash sim epoch — one reset covers all chains because
            # the encoder keys them per channel.
            if self.encoder is not None:
                self.encoder.reset()
            for state in self.channels.values():
                state.seq = 0
            reply_task = asyncio.create_task(self._read_replies(reader))
            try:
                writer.write(encode_frame(
                    frames.HELLO,
                    frames.encode_hello(self.node.node_id, self.node.port),
                ))
                await writer.drain()
                # Unacked survivors of the previous connection go first (the
                # stream they rode died with that connection).
                for state in self.channels.values():
                    for uid in sorted(state.outstanding):
                        message, _, _ = state.outstanding[uid]
                        self.offer(message)
                await self._send_loop(writer)
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                self.connected = False
                reply_task.cancel()
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass

    async def _send_loop(self, writer: asyncio.StreamWriter) -> None:
        policy = self.node.config.batching
        open_windows: Dict[Channel, _ChannelState] = {}
        while True:
            stopping = self.node.stopping.is_set()
            # Pull queued messages into their channel windows; a full
            # window flushes immediately.
            while self._dirty:
                channel = next(iter(self._dirty))
                del self._dirty[channel]
                state = self.channels[channel]
                while True:
                    try:
                        message = state.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if not state.window:
                        state.deadline = time.monotonic() + policy.max_delay
                        open_windows[channel] = state
                    state.window.append(message)
                    if len(state.window) >= policy.max_messages:
                        await self._flush(writer, state)
                        open_windows.pop(channel, None)
            # Flush expired (or closing) windows.
            now = time.monotonic()
            for channel in list(open_windows):
                state = open_windows[channel]
                if stopping or state.deadline <= now:
                    await self._flush(writer, state)
                    del open_windows[channel]
            if stopping and not self._dirty and not open_windows:
                if all(state.queue.empty() for state in self.channels.values()):
                    return
                continue
            # Sleep until new traffic or the earliest window deadline.
            timeout = None
            if open_windows:
                soonest = min(s.deadline for s in open_windows.values())
                timeout = max(0.0, soonest - time.monotonic())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    async def _flush(self, writer: asyncio.StreamWriter,
                     state: _ChannelState) -> None:
        window = state.window
        if not window:
            return
        src, dst = state.channel
        batch = MessageBatch(
            sender=src, destination=dst, seq=state.seq, messages=tuple(window),
        )
        state.seq += 1
        tenant = self.node.tenants[src]
        data, sizes = encode_batch(
            batch, encoder=self.encoder, codec=tenant.replica.wire_codec()
        )
        tenant.account_wire(state.channel, sizes, messages=len(window))
        now = time.time()
        for message in window:
            uid = message.update.uid
            attempts = state.outstanding.get(uid, (None, 0.0, 0))[2]
            state.outstanding[uid] = (message, now, attempts + 1)
        tenant.counters["sent"] += len(window)
        if tenant.tracer is not None:
            flushed_at = self.node.now
            for message in window:
                tenant.tracer.record("wire", message.update.uid, src, dst,
                                     flushed_at)
        # The window empties before the write: on a mid-write connection
        # error its messages are already in ``outstanding`` and will be
        # re-offered by the reconnect path.
        state.window = []
        writer.write(encode_frame(frames.BATCH, data))
        await writer.drain()

    async def _read_replies(self, reader: asyncio.StreamReader) -> None:
        """Consume ACK/SYNC frames flowing back on the stream."""
        decoder = StreamDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for kind, payload in decoder.feed(chunk):
                    if kind == frames.ACK:
                        destination, uids = frames.decode_tagged_uids(payload)
                        self._handle_ack(destination, uids)
                    elif kind == frames.SYNC:
                        destination, known = frames.decode_tagged_uids(payload)
                        await self.node.resync(destination, set(known), self)
        except (OSError, ConnectionError, WireFormatError,
                asyncio.CancelledError):
            return

    def _handle_ack(self, destination: ReplicaId,
                    uids: List[UpdateId]) -> None:
        # An update's issuer is its sender (direct multicast, no
        # forwarding), so the uid itself names the channel.
        by_source: Dict[ReplicaId, List[UpdateId]] = {}
        for uid in uids:
            source = uid[0]
            state = self.channels.get((source, destination))
            if state is not None:
                state.outstanding.pop(uid, None)
                state.inflight.discard(uid)
            by_source.setdefault(source, []).append(uid)
        for source, acked in by_source.items():
            tenant = self.node.tenants.get(source)
            if tenant is not None:
                # Acked ⇒ durable at the receiver: prune the sent-log copy
                # (resync filters by the receiver's known set anyway, and
                # the drain books ride outbox_total).
                tenant.note_acked(destination, acked)

    def retransmit_due(self) -> None:
        """Re-offer every outstanding message older than the resend timeout."""
        config = self.node.config.reliability
        now = time.time()
        for state in self.channels.values():
            for uid in list(state.outstanding):
                message, sent_at, attempts = state.outstanding[uid]
                if now - sent_at < config.resend_timeout:
                    continue
                if attempts > config.max_retries:
                    # Resend timers give up; the SYNC exchange on the next
                    # reconnect is the recovery of last resort.
                    continue
                if self.offer(message):
                    source = state.channel[0]
                    self.node.tenants[source].counters["retransmissions"] += 1
                    state.outstanding[uid] = (message, now, attempts)

    def queued(self) -> int:
        return sum(state.queue.qsize() for state in self.channels.values())

    def unacked(self) -> int:
        return sum(len(state.outstanding) for state in self.channels.values())


class LiveNode:
    """One live node process: listener, tenants, peer streams, durability."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.node_id = config.node_id
        self.clock_origin = config.clock_origin or time.time()
        self.tenants: Dict[ReplicaId, _Tenant] = {
            rid: _Tenant(self, rid) for rid in config.replica_ids
        }
        self.addresses: Dict[NodeId, Address] = dict(config.peers)
        self.addresses.pop(self.node_id, None)
        self.peer_streams: Dict[NodeId, _PeerStream] = {}
        self.stopping = asyncio.Event()
        self.port: int = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: List[asyncio.Task] = []
        #: Control-connection writers subscribed to TELEMETRY pushes.
        self._telemetry_writers: List[asyncio.StreamWriter] = []
        self._inbound_connections = 0
        self._control_connections = 0
        self._recover()

    @property
    def now(self) -> float:
        return time.time() - self.clock_origin

    def _hosting_node(self, replica_id: ReplicaId) -> NodeId:
        return self.config.replica_nodes.get(replica_id, replica_id)

    # ------------------------------------------------------------------
    # Recovery (checkpoint + WAL replay)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        if not self.config.durable_dir:
            for tenant in self.tenants.values():
                tenant.seen_uids = set(tenant.replica.known_update_ids())
            return
        for rid in sorted(self.tenants, key=_id_order):
            self._recover_tenant(self.tenants[rid])
        # Phase 2: re-deliver intra-node copies that never became durable
        # at their co-hosted destination (the crash window between the
        # sender's WRITE record and the receiver's DELIVER record).  The
        # wire path's analogue is the SYNC exchange on reconnect; the
        # short-circuit path settles it here, at boot.  Copies already
        # delivered are deduplicated and merely re-acked.
        for src in sorted(self.tenants, key=_id_order):
            tenant = self.tenants[src]
            for destination in sorted(tenant.sent_log, key=_id_order):
                if destination not in self.tenants:
                    continue
                book = tenant.sent_log[destination]
                for uid in list(book):
                    message = book.get(uid)
                    if message is not None:
                        self._deliver_intra(tenant, message)

    def _recover_tenant(self, tenant: _Tenant) -> None:
        checkpoint, records = tenant.wal.load()
        if checkpoint is not None:
            tenant.replica.restore(checkpoint.replica)
            tenant.sent_log = checkpoint.sent_log
            tenant.outbox_total = checkpoint.outbox_total
            tenant.streams = checkpoint.streams
            tenant.apply_times = checkpoint.apply_times
            tenant.host._issue_times.update(checkpoint.issue_times)
        tenant.seen_uids = set(tenant.replica.known_update_ids())
        if checkpoint is not None or records:
            tenant.recovered = True
        for kind, payload in records:
            if kind == wal_records.W_WRITE:
                register, value, at = wal_records.decode_write_record(payload)
                # Replay is deterministic: the replica derives the uid and
                # the outgoing copies from durable state, so re-executing
                # the write at its recorded time regenerates both exactly.
                update, messages = tenant.host.perform_write(
                    register, value, at=at
                )
                tenant.counters["issued"] += 1
                tenant.counters["ops_done"] += 1
                tenant.apply_times[update.uid] = at
                for message in messages:
                    book = tenant.sent_log.setdefault(message.destination, {})
                    book[message.update.uid] = message
                    tenant.outbox_total[message.destination] = (
                        tenant.outbox_total.get(message.destination, 0) + 1
                    )
            elif kind == wal_records.W_READ:
                register, at = wal_records.decode_read_record(payload)
                tenant.host.perform_read(register, at=at)
                tenant.counters["ops_done"] += 1
            elif kind == wal_records.W_DELIVER:
                received_at, batch = wal_records.decode_deliver_record(payload)
                self._deliver(tenant, batch.channel, list(batch.messages),
                              received_at=received_at, log=False)
            elif kind == wal_records.W_ACK:
                destination, uids = wal_records.decode_ack_record(payload)
                tenant.note_acked(destination, uids, log=False)

    # ------------------------------------------------------------------
    # Delivery (shared by the wire path, the short-circuit and replay)
    # ------------------------------------------------------------------
    def _deliver(self, tenant: _Tenant, channel: Channel,
                 messages: List[UpdateMessage],
                 received_at: Optional[float] = None,
                 log: bool = True) -> List[UpdateMessage]:
        """First-receipt bookkeeping, WAL append, batch apply.

        ``log=False`` is the replay path: the record being replayed is
        already in the log, and times come from it, not the clock.
        """
        if received_at is None:
            received_at = self.now
        counters = tenant.counters
        fresh: List[UpdateMessage] = []
        for message in messages:
            uid = message.update.uid
            counters["received"] += 1
            if uid in tenant.seen_uids:
                counters["duplicates"] += 1
                continue
            tenant.seen_uids.add(uid)
            tenant.streams.setdefault(channel, []).append(uid)
            counters["delivered"] += 1
            fresh.append(message)
            if tenant.tracer is not None:
                tenant.tracer.record("deliver", uid, channel[0], channel[1],
                                     received_at)
        if not fresh:
            return fresh
        if log and tenant.wal is not None:
            # Ack (and apply) only after the receipt is durable: the WAL
            # record carries the fresh messages as standalone wire frames.
            record_batch = MessageBatch(
                sender=channel[0], destination=channel[1], seq=0,
                messages=tuple(fresh),
            )
            tenant.wal.append(
                wal_records.W_DELIVER,
                wal_records.encode_deliver_record(
                    received_at, record_batch, tenant.replica.wire_codec()
                ),
            )
        if log:
            applied = tenant.host.deliver(fresh)
            applied_at = self.now
        else:
            applied = tenant.host.deliver(fresh, at=received_at)
            applied_at = received_at
        for update in applied:
            tenant.apply_times[update.uid] = applied_at
        if log:
            tenant.maybe_compact()
        return fresh

    def _deliver_intra(self, src_tenant: _Tenant,
                       message: UpdateMessage) -> None:
        """The short-circuit: co-hosted delivery with no socket, no codec."""
        uid = message.update.uid
        src, destination = message.sender, message.destination
        counters = src_tenant.counters
        counters["enqueued"] += 1
        counters["sent"] += 1
        if src_tenant.tracer is not None:
            now = self.now
            src_tenant.tracer.record("send", uid, src, destination, now)
            src_tenant.tracer.record("wire", uid, src, destination, now)
        self._deliver(self.tenants[destination], (src, destination), [message])
        # The short-circuit acks synchronously: the copy is durable at its
        # receiver the moment _deliver returns.
        src_tenant.note_acked(destination, [uid])

    # ------------------------------------------------------------------
    # The process main loop
    # ------------------------------------------------------------------
    async def serve(self, on_ready: Optional[Callable[[int], None]] = None) -> None:
        """Run the node until a SHUTDOWN frame (or cancellation)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.listen_host,
            port=self.config.listen_port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self.port)
        peers = set()
        graph = self.config.share_graph
        for rid in self.tenants:
            for neighbour in graph.neighbors(rid):
                peer = self._hosting_node(neighbour)
                if peer != self.node_id:
                    peers.add(peer)
        for peer in sorted(peers, key=_id_order):
            self._start_stream(peer)
        self._tasks.append(asyncio.create_task(self._retransmit_loop()))
        if self.config.telemetry_interval > 0:
            self._tasks.append(asyncio.create_task(self._telemetry_loop()))
        try:
            await self.stopping.wait()
        finally:
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._server.close()
            await self._server.wait_closed()
            for tenant in self.tenants.values():
                if tenant.wal is not None:
                    tenant.wal.close()

    def _start_stream(self, peer: NodeId) -> _PeerStream:
        stream = _PeerStream(self, peer)
        self.peer_streams[peer] = stream
        self._tasks.append(asyncio.create_task(stream.run()))
        return stream

    def _stream_for(self, replica_id: ReplicaId) -> _PeerStream:
        peer = self._hosting_node(replica_id)
        stream = self.peer_streams.get(peer)
        if stream is None:
            stream = self._start_stream(peer)
        return stream

    async def _retransmit_loop(self) -> None:
        interval = max(self.config.reliability.resend_timeout / 2, 0.05)
        while not self.stopping.is_set():
            await asyncio.sleep(interval)
            for stream in self.peer_streams.values():
                stream.retransmit_due()

    # ------------------------------------------------------------------
    # Telemetry (live metrics export)
    # ------------------------------------------------------------------
    def telemetry_samples(self) -> List[Tuple[str, tuple, float]]:
        """One flat metrics sample: per-tenant counters plus the node's
        transport footprint (open sockets/streams) and WAL counters.

        The shape :func:`repro.obs.registry.fold_samples` consumes —
        ``(name, sorted label items, value)``; cumulative families carry
        the ``_total`` suffix, instantaneous ones are gauges.
        """
        samples: List[Tuple[str, tuple, float]] = []
        for rid in sorted(self.tenants, key=_id_order):
            samples.extend(self.tenants[rid].telemetry_samples())
        me = (("node", str(self.node_id)),)
        streams = self.peer_streams.values()
        samples.append((
            "repro_node_send_queue_depth", me,
            float(sum(stream.queued() for stream in streams)),
        ))
        samples.append((
            "repro_node_unacked", me,
            float(sum(stream.unacked() for stream in streams)),
        ))
        samples.append((
            "repro_node_peer_streams", me, float(len(self.peer_streams)),
        ))
        samples.append((
            "repro_node_open_streams", me,
            float(sum(1 for stream in streams if stream.connected)),
        ))
        samples.append((
            "repro_node_inbound_connections", me,
            float(self._inbound_connections),
        ))
        wals = [t.wal for t in self.tenants.values() if t.wal is not None]
        samples.append((
            "repro_node_wal_bytes", me,
            float(sum(w.wal_bytes for w in wals)),
        ))
        samples.append((
            "repro_node_wal_records_total", me,
            float(sum(w.records_appended for w in wals)),
        ))
        samples.append((
            "repro_node_wal_compactions_total", me,
            float(sum(w.compactions for w in wals)),
        ))
        return samples

    async def _telemetry_loop(self) -> None:
        """Push a TELEMETRY frame to every subscribed control connection."""
        interval = self.config.telemetry_interval
        while not self.stopping.is_set():
            await asyncio.sleep(interval)
            await self._push_telemetry()

    async def _push_telemetry(self) -> None:
        if not self._telemetry_writers:
            return
        frame = encode_frame(frames.TELEMETRY, frames.encode_telemetry_payload(
            self.now, self.node_id, self.telemetry_samples()
        ))
        alive: List[asyncio.StreamWriter] = []
        for writer in self._telemetry_writers:
            if writer.is_closing():
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (OSError, ConnectionError):
                continue
            alive.append(writer)
        self._telemetry_writers = alive

    # ------------------------------------------------------------------
    # Resync (the live anti-entropy exchange)
    # ------------------------------------------------------------------
    async def resync(self, destination: ReplicaId, known: set,
                     stream: _PeerStream) -> None:
        """Re-send every sent-log entry ``destination`` does not hold.

        Triggered by the peer node's ``SYNC`` frame (one per hosted
        replica) on every (re)established stream; mirrors
        :meth:`~repro.sim.engine.Transport.resync` exactly — same inputs
        (the receiver's durable uid set), same source (the sender's durable
        outbox), same delivery path (the channel's normal FIFO queue).
        """
        for src in sorted(self.tenants, key=_id_order):
            tenant = self.tenants[src]
            book = tenant.sent_log.get(destination)
            if not book:
                continue
            state = stream.channels.get((src, destination))
            inflight = state.inflight if state is not None else set()
            missing = [
                message for uid, message in book.items()
                if uid not in known and uid not in inflight
            ]
            if missing:
                tenant.counters["resyncs"] += 1
            for message in missing:
                await stream.enqueue(message)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        decoder = StreamDecoder()
        state: Dict[str, Any] = {"peer": None, "decoder": None, "control": False}
        self._inbound_connections += 1
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for kind, payload in decoder.feed(chunk):
                    await self._handle_frame(kind, payload, writer, state)
                    if self.stopping.is_set():
                        return
        except WireFormatError:
            # A corrupt or misaligned stream: drop the connection (the
            # peer's reconnect + resync path recovers), keep the node up.
            return
        except (OSError, ConnectionError):
            return
        except asyncio.CancelledError:
            # Loop teardown while blocked in read(): finish quietly — the
            # connection is closed in the finally block either way.
            return
        finally:
            self._inbound_connections -= 1
            if state["control"]:
                self._control_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _handle_frame(self, kind: int, payload: bytes,
                            writer: asyncio.StreamWriter,
                            state: Dict[str, Any]) -> None:
        if kind == frames.HELLO:
            peer, port = frames.decode_hello(payload)
            state["peer"] = peer
            # One decoder per inbound connection: its delta chains are
            # keyed by channel, mirroring the sender's stream encoder.
            state["decoder"] = (
                ChannelDeltaDecoder() if self.config.batching.delta_encoding
                else None
            )
            # The peer listens on the host it dialled from, at the port it
            # announced — so a restarted peer's new address propagates with
            # its first frame.
            peername = writer.get_extra_info("peername")
            peer_host = peername[0] if peername else self.config.listen_host
            self.addresses[peer] = (peer_host, port)
            # Offer the anti-entropy exchange, once per hosted replica
            # with traffic from the connecting node: tell it what each
            # tenant holds durably; it re-sends the rest.
            graph = self.config.share_graph
            for rid in sorted(self.tenants, key=_id_order):
                tenant = self.tenants[rid]
                if any(self._hosting_node(nb) == peer
                       for nb in graph.neighbors(rid)):
                    writer.write(encode_frame(
                        frames.SYNC,
                        frames.encode_tagged_uids(
                            rid, sorted(tenant.replica.known_update_ids())
                        ),
                    ))
            await writer.drain()
        elif kind == frames.BATCH:
            await self._handle_batch(payload, writer, state)
        elif kind == frames.CONTROL_HELLO:
            state["control"] = True
            self._control_connections += 1
            if self.config.telemetry_interval > 0:
                self._telemetry_writers.append(writer)
        elif kind == frames.ADDR:
            node_id, host, port = frames.decode_addr(payload)
            if node_id != self.node_id:
                self.addresses[node_id] = (host, port)
        elif kind == frames.OP:
            await self._handle_op(payload, writer)
        elif kind == frames.STATS_REQ:
            writer.write(encode_frame(frames.STATS, self._stats_payload()))
            await writer.drain()
        elif kind == frames.REPORT_REQ:
            # Final telemetry sample ahead of the report, on the same
            # stream: FIFO ordering lands it before the REPORT reply the
            # launcher blocks on, so even a run shorter than one sampling
            # interval exports its end-of-run counters.
            if self.config.telemetry_interval > 0:
                writer.write(encode_frame(
                    frames.TELEMETRY, frames.encode_telemetry_payload(
                        self.now, self.node_id, self.telemetry_samples(),
                    )))
            writer.write(encode_frame(frames.REPORT, pickle.dumps(
                self.report(), protocol=pickle.HIGHEST_PROTOCOL
            )))
            await writer.drain()
        elif kind == frames.SHUTDOWN:
            self.stopping.set()
        # Unknown kinds are ignored: wire-compatible newer launchers may
        # probe; dropping beats crashing a live node.

    async def _handle_batch(self, payload: bytes, writer: asyncio.StreamWriter,
                            state: Dict[str, Any]) -> None:
        batch, _ = decode_batch(payload, decoder=state["decoder"])
        tenant = self.tenants.get(batch.destination)
        if tenant is None:
            # Misrouted (stale placement at the sender): drop; its resend
            # gives up after max_retries and resync corrects the books.
            return
        uids = [message.update.uid for message in batch.messages]
        self._deliver(tenant, batch.channel, list(batch.messages))
        # Ack after the WAL append inside _deliver: an ack promises the
        # update survives a crash.  Duplicates are re-acked so a
        # retransmitting sender settles.
        writer.write(encode_frame(
            frames.ACK, frames.encode_tagged_uids(batch.destination, uids)
        ))
        await writer.drain()

    async def _handle_op(self, payload: bytes,
                         writer: asyncio.StreamWriter) -> None:
        op_id, replica_id, kind, register, value = frames.decode_op(payload)
        tenant = self.tenants.get(replica_id)
        status = frames.OP_OK
        reply_value: Any = None
        messages: List[UpdateMessage] = []
        issued_at = self.now
        if tenant is None:
            status = frames.OP_REJECTED
        else:
            try:
                # Validation raises *before* any state mutates (the replica
                # checks register membership first), so a rejection is
                # always a clean no-op.  Infrastructure failures after the
                # mutation (WAL I/O, codec bugs) deliberately propagate
                # instead of masquerading as rejections — the connection
                # drops, the client sees an unanswered op, and the durable
                # trace still tells the truth about what was applied.
                if kind == "write":
                    update, messages = tenant.host.perform_write(
                        register, value, at=issued_at
                    )
                else:
                    reply_value = tenant.host.perform_read(
                        register, at=issued_at
                    )
                    if tenant.wal is not None:
                        # The READ trace event is durable state too.
                        tenant.wal.append(
                            wal_records.W_READ,
                            wal_records.encode_read_record(register, issued_at),
                        )
                        tenant.maybe_compact()
            except ReproError:
                status = frames.OP_REJECTED
                messages = []
        if status == frames.OP_OK and kind == "write":
            tenant.counters["issued"] += 1
            tenant.apply_times[update.uid] = issued_at
            for message in messages:
                book = tenant.sent_log.setdefault(message.destination, {})
                book[message.update.uid] = message
                tenant.outbox_total[message.destination] = (
                    tenant.outbox_total.get(message.destination, 0) + 1
                )
            if tenant.wal is not None:
                # One O(delta) record instead of a whole-state snapshot:
                # replaying the write at its recorded time regenerates the
                # update, its uid and every outgoing copy.
                tenant.wal.append(
                    wal_records.W_WRITE,
                    wal_records.encode_write_record(register, value, issued_at),
                )
                tenant.maybe_compact()
            local = [m for m in messages if m.destination in self.tenants]
            remote = [m for m in messages if m.destination not in self.tenants]
            for message in local:
                self._deliver_intra(tenant, message)
            for message in remote:
                await self._stream_for(message.destination).enqueue(message)
        if tenant is not None:
            tenant.counters["ops_done"] += 1
        writer.write(encode_frame(
            frames.OP_REPLY, frames.encode_op_reply(op_id, status, reply_value)
        ))
        await writer.drain()

    # ------------------------------------------------------------------
    # Harness surface
    # ------------------------------------------------------------------
    def _stats_payload(self) -> bytes:
        totals = {
            "ops_done": 0, "issued": 0, "enqueued": 0, "sent": 0,
            "received": 0, "delivered": 0, "duplicates": 0,
            "retransmissions": 0, "resyncs": 0,
        }
        applied = pending = 0
        outbox: Dict[Channel, int] = {}
        inbox: Dict[Channel, int] = {}
        for rid, tenant in self.tenants.items():
            for name in totals:
                totals[name] += tenant.counters[name]
            applied += len(tenant.replica.applied)
            pending += tenant.replica.pending_count()
            for destination, count in tenant.outbox_total.items():
                outbox[(rid, destination)] = count
            for channel, uids in tenant.streams.items():
                inbox[channel] = len(uids)
        streams = self.peer_streams.values()
        stats = frames.NodeStats(
            applied=applied,
            pending=pending,
            send_queue=sum(stream.queued() for stream in streams),
            unacked=sum(stream.unacked() for stream in streams),
            **totals,
        )
        # The progress books are derived from durable state (outbox
        # counters / first-receipt streams), so drain detection survives
        # SIGKILLs and sent-log pruning alike.
        return frames.encode_stats_payload(stats, outbox, inbox)

    def report(self) -> Dict[str, Any]:
        """The end-of-run report: per-tenant reports + transport footprint."""
        wals = [t.wal for t in self.tenants.values() if t.wal is not None]
        return {
            "node_id": self.node_id,
            "tenants": {
                rid: tenant.report() for rid, tenant in self.tenants.items()
            },
            "transport": {
                "peer_streams": len(self.peer_streams),
                "open_streams": sum(
                    1 for s in self.peer_streams.values() if s.connected
                ),
                "inbound_connections": self._inbound_connections,
                "control_connections": self._control_connections,
                "wal_bytes": sum(w.wal_bytes for w in wals),
                "wal_records": sum(w.records_appended for w in wals),
                "wal_compactions": sum(w.compactions for w in wals),
            },
        }


def _install_uvloop() -> bool:
    """Install uvloop's event-loop policy when opted in and available.

    ``REPRO_UVLOOP=1`` requests uvloop (the ``repro[uvloop]`` extra); the
    default — and any environment where uvloop is not importable — stays on
    the stdlib event loop, so the opt-in can never break a deployment.
    """
    if os.environ.get("REPRO_UVLOOP", "") in ("", "0"):
        return False
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def node_main(config: NodeConfig, ready_queue: Any) -> None:
    """Process entry point: run one node, reporting its port when bound."""
    _install_uvloop()
    node = LiveNode(config)

    def on_ready(port: int) -> None:
        ready_queue.put((config.node_id, port))

    asyncio.run(node.serve(on_ready))
