"""One live replica: an asyncio process speaking the wire format over TCP.

A :class:`ReplicaNode` hosts exactly one
:class:`~repro.core.protocol.CausalReplica` — the paper's algorithm by
default — and gives it the transport the simulator only models:

* **one streaming connection per share-graph channel**: for every directed
  edge ``e_ij`` the sending replica ``i`` opens a TCP connection to ``j``
  and ships :class:`~repro.wire.batch.MessageBatch` frames on it (batching
  window flushed by count or wall-clock deadline, per-channel timestamp
  delta encoding), under the length-prefixed framing of
  :mod:`repro.net.framing`.  The connection *is* the stream the delta
  codecs assume: a fresh connection starts a fresh chain, exactly like the
  simulator's channel epochs;
* **per-channel FIFO send queues with backpressure**: a bounded
  :class:`asyncio.Queue` feeds each channel; writers block (``await``)
  when the channel is saturated, and the socket's own flow control
  (``writer.drain()``) propagates TCP backpressure into the queue;
* **ack + resend reliability** mirroring
  :class:`~repro.sim.engine.ReliabilityConfig`: the receiver acknowledges
  update ids after applying *and persisting* them; unacknowledged messages
  are re-offered to the channel after ``resend_timeout`` seconds (up to
  ``max_retries`` times) and whenever the connection is re-established.
  The replica's duplicate suppression keeps delivery exactly-once, as in
  the simulator;
* **durable snapshots + sent-log**: with a ``snapshot_path`` configured the
  node persists its replica snapshot (the PR 2 durable state) *and* its
  per-destination sent-log after every state change, so a SIGKILLed
  process restarts from disk and recovers exactly like a simulated crash:
  on every (re)established channel the accepting side sends the update ids
  it holds (``SYNC``) and the connecting side re-sends the sent-log
  entries outside that set — the live mirror of
  :meth:`~repro.sim.engine.Transport.resync`.

The node's :class:`LiveNodeHost` subclasses the same
:class:`~repro.core.host.ReplicaHost` surface as the simulator's
:class:`~repro.sim.engine.SimulationHost`, so metrics, event traces and the
consistency check are shared — the simulator stays the executable spec.

Nodes are normally spawned by :class:`~repro.net.runtime.LiveCluster`; the
module-level :func:`node_main` is the process entry point.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError, ReproError
from ..core.host import ReplicaHost
from ..core.protocol import CausalReplica, UpdateId, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..sim.engine import ChannelWireStats, ReliabilityConfig
from ..wire.batch import MessageBatch, decode_batch, encode_batch
from ..wire.channel import ChannelDeltaDecoder, ChannelDeltaEncoder
from ..wire.primitives import WireFormatError
from . import frames
from .framing import StreamDecoder, encode_frame

Channel = Tuple[ReplicaId, ReplicaId]
Address = Tuple[str, int]


def edge_indexed_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """The default live factory: the paper's edge-indexed algorithm."""
    return EdgeIndexedReplica(graph, replica_id)


@dataclass(frozen=True)
class BatchPolicy:
    """The live analogue of :class:`~repro.sim.engine.BatchingConfig`.

    Same knobs, wall-clock units: a channel's window flushes at
    ``max_messages`` or after ``max_delay`` *seconds*, whichever first.
    """

    max_messages: int = 16
    max_delay: float = 0.002
    delta_encoding: bool = True

    def __post_init__(self) -> None:
        if self.max_messages < 1:
            raise ConfigurationError("batching max_messages must be at least 1")
        if self.max_delay < 0:
            raise ConfigurationError("batching max_delay must be non-negative")


@dataclass(frozen=True)
class NodeConfig:
    """Everything one node process needs to boot (picklable for spawn)."""

    replica_id: ReplicaId
    share_graph: ShareGraph
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    #: Initial peer address map; updated at runtime by ``ADDR`` frames and
    #: channel hellos (a restarted peer announces its new port).
    peers: Mapping[ReplicaId, Address] = field(default_factory=dict)
    replica_factory: Callable[[ShareGraph, ReplicaId], CausalReplica] = (
        edge_indexed_factory
    )
    batching: BatchPolicy = field(default_factory=BatchPolicy)
    #: Ack + resend parameters, in seconds (the live reading of the same
    #: contract the simulator's transport enforces in simulated units).
    reliability: ReliabilityConfig = field(
        default_factory=lambda: ReliabilityConfig(resend_timeout=1.0, max_retries=8)
    )
    #: Bound of each per-channel send queue (the backpressure limit).
    send_queue_limit: int = 4096
    #: Durable state file; ``None`` runs diskless (no crash recovery).
    snapshot_path: Optional[str] = None
    #: Wall-clock epoch all host times are measured from (the launcher's
    #: start time, shared by every node so latencies compose).
    clock_origin: float = 0.0
    reconnect_backoff: float = 0.05
    reconnect_backoff_max: float = 1.0
    #: Record the message-lifecycle trace (issue/send/wire/deliver/apply
    #: stamps, wall time relative to ``clock_origin``); off by default —
    #: the untraced hot path pays one ``is not None`` check per hook.
    tracing: bool = False
    #: Push a ``TELEMETRY`` frame (queue depths, wire-byte counters) over
    #: every open control connection each interval; ``0`` disables.
    telemetry_interval: float = 0.0


@dataclass
class NodeDurableState:
    """What survives a SIGKILL: the replica snapshot plus the sent-log."""

    replica: Any  # ReplicaSnapshot
    sent_log: Dict[ReplicaId, Dict[UpdateId, UpdateMessage]]
    #: Total updates ever logged per destination.  The sent-log itself is
    #: pruned as acks arrive (an acked update is durable at its receiver,
    #: so neither resync nor retransmission can ever need it again); this
    #: counter keeps the launcher's drain books monotone through pruning
    #: and crashes.
    outbox_total: Dict[ReplicaId, int]
    #: Per-incoming-channel first-receipt uid streams (kept durable so the
    #: differential harness sees whole-run streams through a crash).
    streams: Dict[Channel, List[UpdateId]]
    apply_times: Dict[UpdateId, float]


class LiveNodeHost(ReplicaHost):
    """The :class:`~repro.core.host.ReplicaHost` of one live process.

    One replica per host, wall-clock time (seconds since the cluster's
    ``clock_origin``).  The launcher stitches the per-node hosts back into
    a cluster-wide view at report collection.
    """

    def __init__(self, share_graph: ShareGraph, replica: CausalReplica,
                 clock_origin: float = 0.0) -> None:
        super().__init__(share_graph)
        self.replica = replica
        self._replicas = {replica.replica_id: replica}
        self._clock_origin = clock_origin or time.time()

    @property
    def now(self) -> float:
        """Seconds since the cluster's shared clock origin (wall clock)."""
        return time.time() - self._clock_origin

    def _replica_map(self) -> Mapping[ReplicaId, CausalReplica]:
        return self._replicas

    # ------------------------------------------------------------------
    # Client operations (the live counterpart of Cluster.write/read)
    # ------------------------------------------------------------------
    def perform_write(self, register: Register, value: Any):
        """Apply a write locally; returns ``(update, outgoing messages)``."""
        messages = self.replica.write(register, value, sim_time=self.now)
        self._record_operation("write")
        update = self.replica.applied[-1]
        self._note_issue(update)
        return update, messages

    def perform_read(self, register: Register) -> Any:
        """Serve a read from the local copy."""
        self._record_operation("read")
        return self.replica.read(register, sim_time=self.now)

    def submit_operation(self, operation: Any) -> Any:
        """Execute one workload operation (messages are NOT transported).

        Exists for surface parity with the simulator hosts; the node's
        async op handler uses :meth:`perform_write` / :meth:`perform_read`
        directly so it can route the returned messages onto the channels.
        """
        if operation.kind == "write":
            return self.perform_write(operation.register, operation.value)[0]
        if operation.kind == "read":
            return self.perform_read(operation.register)
        raise ConfigurationError(f"unknown operation kind {operation.kind!r}")

    def deliver(self, messages: List[UpdateMessage]):
        """Buffer a received batch and run one apply pass (as the sim does)."""
        return self._apply_batch(self.replica, messages)


class _ChannelSender:
    """The sending half of one directed share-graph channel.

    Owns the channel's FIFO queue, batching window, delta encoder,
    outstanding (unacked) set and the reconnect loop.  One asyncio task per
    channel (:meth:`run`).
    """

    def __init__(self, node: "ReplicaNode", destination: ReplicaId) -> None:
        self.node = node
        self.destination = destination
        self.queue: "asyncio.Queue[UpdateMessage]" = asyncio.Queue(
            maxsize=node.config.send_queue_limit
        )
        #: uid -> (message, last send wall time, attempts).
        self.outstanding: Dict[UpdateId, Tuple[UpdateMessage, float, int]] = {}
        #: Uids somewhere between enqueue and ack (queue, open window, or
        #: outstanding).  The SYNC resync skips these: a message already on
        #: its way must not be re-offered just because the peer's known-set
        #: predates it — otherwise every first connection double-sends the
        #: traffic that queued up while the channel was still dialling.
        self.inflight: set = set()
        policy = node.config.batching
        self.encoder = ChannelDeltaEncoder() if policy.delta_encoding else None
        self.seq = 0
        self.connected = False

    async def enqueue(self, message: UpdateMessage) -> None:
        """Join the channel's FIFO stream (blocks when saturated)."""
        self.node.counters["enqueued"] += 1
        self.inflight.add(message.update.uid)
        if self.node.tracer is not None:
            self.node.tracer.record("send", message.update.uid,
                                    self.node.replica_id, self.destination,
                                    self.node.host.now)
        await self.queue.put(message)

    def offer(self, message: UpdateMessage) -> bool:
        """Non-blocking enqueue for retransmissions; ``False`` when full."""
        try:
            self.queue.put_nowait(message)
        except asyncio.QueueFull:
            return False
        self.inflight.add(message.update.uid)
        return True

    # ------------------------------------------------------------------
    # The channel task
    # ------------------------------------------------------------------
    async def run(self) -> None:
        backoff = self.node.config.reconnect_backoff
        while not self.node.stopping.is_set():
            address = self.node.addresses.get(self.destination)
            if address is None:
                await asyncio.sleep(backoff)
                continue
            try:
                reader, writer = await asyncio.open_connection(*address)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.node.config.reconnect_backoff_max)
                continue
            backoff = self.node.config.reconnect_backoff
            self.connected = True
            # A fresh connection is a fresh byte stream: the delta chain and
            # batch sequence restart, exactly like a post-crash sim epoch.
            if self.encoder is not None:
                self.encoder.reset()
            self.seq = 0
            reply_task = asyncio.create_task(self._read_replies(reader))
            try:
                writer.write(encode_frame(
                    frames.HELLO,
                    frames.encode_hello(self.node.replica_id, self.node.port),
                ))
                await writer.drain()
                # Unacked survivors of the previous connection go first (the
                # stream they rode died with that connection).
                for uid in sorted(self.outstanding):
                    message, _, attempts = self.outstanding[uid]
                    self.offer(message)
                await self._send_loop(writer)
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                self.connected = False
                reply_task.cancel()
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass

    async def _send_loop(self, writer: asyncio.StreamWriter) -> None:
        policy = self.node.config.batching
        window: List[UpdateMessage] = []
        deadline: Optional[float] = None
        while True:
            if self.node.stopping.is_set() and not window and self.queue.empty():
                return
            timeout = None
            if window:
                timeout = max(0.0, deadline - time.monotonic())
            try:
                message = await asyncio.wait_for(self.queue.get(), timeout)
            except asyncio.TimeoutError:
                await self._flush(writer, window)
                window = []
                continue
            if not window:
                deadline = time.monotonic() + policy.max_delay
            window.append(message)
            if len(window) >= policy.max_messages or (
                self.queue.empty() and self.node.stopping.is_set()
            ):
                await self._flush(writer, window)
                window = []

    async def _flush(self, writer: asyncio.StreamWriter,
                     window: List[UpdateMessage]) -> None:
        if not window:
            return
        batch = MessageBatch(
            sender=self.node.replica_id,
            destination=self.destination,
            seq=self.seq,
            messages=tuple(window),
        )
        self.seq += 1
        data, sizes = encode_batch(
            batch, encoder=self.encoder, codec=self.node.replica.wire_codec()
        )
        self.node.account_wire(
            (self.node.replica_id, self.destination), sizes,
            messages=len(window),
        )
        now = time.time()
        for message in window:
            uid = message.update.uid
            attempts = self.outstanding.get(uid, (None, 0.0, 0))[2]
            self.outstanding[uid] = (message, now, attempts + 1)
        self.node.counters["sent"] += len(window)
        if self.node.tracer is not None:
            flushed_at = self.node.host.now
            for message in window:
                self.node.tracer.record("wire", message.update.uid,
                                        self.node.replica_id,
                                        self.destination, flushed_at)
        writer.write(encode_frame(frames.BATCH, data))
        await writer.drain()

    async def _read_replies(self, reader: asyncio.StreamReader) -> None:
        """Consume ACK/SYNC frames flowing back on the channel connection."""
        decoder = StreamDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for kind, payload in decoder.feed(chunk):
                    if kind == frames.ACK:
                        uids, _ = frames.decode_uid_list(payload)
                        log = self.node.sent_log.get(self.destination)
                        for uid in uids:
                            self.outstanding.pop(uid, None)
                            self.inflight.discard(uid)
                            # Acked ⇒ durable at the receiver: prune the
                            # sent-log copy (resync filters by the
                            # receiver's known set anyway, and the drain
                            # books ride outbox_total).
                            if log is not None:
                                log.pop(uid, None)
                    elif kind == frames.SYNC:
                        known, _ = frames.decode_uid_list(payload)
                        await self.node.resync(self.destination, set(known), self)
        except (OSError, ConnectionError, WireFormatError,
                asyncio.CancelledError):
            return

    def retransmit_due(self) -> None:
        """Re-offer every outstanding message older than the resend timeout."""
        config = self.node.config.reliability
        now = time.time()
        for uid in list(self.outstanding):
            message, sent_at, attempts = self.outstanding[uid]
            if now - sent_at < config.resend_timeout:
                continue
            if attempts > config.max_retries:
                # Resend timers give up; the SYNC exchange on the next
                # reconnect is the recovery of last resort.
                continue
            if self.offer(message):
                self.node.counters["retransmissions"] += 1
                self.outstanding[uid] = (message, now, attempts)


class ReplicaNode:
    """One live replica process: server, channels, durability, harness API."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.replica_id = config.replica_id
        graph = config.share_graph
        self.replica = config.replica_factory(graph, config.replica_id)
        self.host = LiveNodeHost(graph, self.replica,
                                 clock_origin=config.clock_origin)
        #: Durable per-destination outbox, mirrored from the simulator's
        #: transport sent-log (PR 2); the SYNC exchange re-sends from it.
        #: Pruned on ack — an acked update is durable at its receiver.
        self.sent_log: Dict[ReplicaId, Dict[UpdateId, UpdateMessage]] = {}
        #: Total updates ever logged per destination (survives pruning and
        #: crashes; the launcher's drain books compare this against the
        #: receiver's first-receipt count).
        self.outbox_total: Dict[ReplicaId, int] = {}
        #: First-receipt uid stream per incoming channel (differential data).
        self.streams: Dict[Channel, List[UpdateId]] = {}
        #: Wall-relative apply time per uid (cross-node latency joins).
        self.apply_times: Dict[UpdateId, float] = {}
        self.counters: Dict[str, int] = {
            "ops_done": 0, "issued": 0, "enqueued": 0, "sent": 0,
            "received": 0, "delivered": 0, "duplicates": 0,
            "retransmissions": 0, "resyncs": 0,
            "delta_frames": 0, "full_frames": 0,
        }
        #: Byte-accurate per-channel outgoing wire books, fed by every
        #: channel flush — the live mirror of the simulator's
        #: ``NetworkStats.per_channel`` (same ``ChannelWireStats`` shape,
        #: so the differential harness can assert byte parity).
        self.wire_stats: Dict[Channel, ChannelWireStats] = {}
        #: The lifecycle trace recorder (``None`` unless ``tracing`` is on);
        #: shared with the host so issue/apply stamps land in the same list
        #: as this node's send/wire/deliver stamps.
        self.tracer: Optional[Any] = None
        if config.tracing:
            from ..obs.trace import TraceRecorder
            self.tracer = TraceRecorder()
            self.host.tracer = self.tracer
        #: Control-connection writers subscribed to TELEMETRY pushes.
        self._telemetry_writers: List[asyncio.StreamWriter] = []
        self.recovered = False
        if config.snapshot_path and os.path.exists(config.snapshot_path):
            self._load_durable_state(config.snapshot_path)
        #: Uids this node has seen (applied + pending), for first-receipt
        #: stream recording; survives restarts via the replica snapshot.
        self.seen_uids = set(self.replica.known_update_ids())
        self.addresses: Dict[ReplicaId, Address] = dict(config.peers)
        self.addresses.pop(self.replica_id, None)
        self.channels: Dict[ReplicaId, _ChannelSender] = {}
        self.stopping = asyncio.Event()
        self.port: int = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Wire accounting
    # ------------------------------------------------------------------
    def account_wire(self, channel: Channel, sizes: Any, messages: int) -> None:
        """Book one flushed batch into the per-channel wire statistics.

        Every flush is one batch; the books use the same
        :class:`~repro.sim.engine.ChannelWireStats` fields the simulator's
        ``NetworkStats.per_channel`` keeps, so a clean live run's byte
        totals are directly comparable to (and asserted against) the sim's.
        """
        book = self.wire_stats.setdefault(channel, ChannelWireStats())
        book.messages += messages
        book.batches += 1
        book.header_bytes += sizes.header_bytes
        book.timestamp_bytes += sizes.timestamp_bytes
        book.payload_bytes += sizes.payload_bytes
        self.counters["delta_frames"] += sizes.delta_frames
        self.counters["full_frames"] += sizes.full_frames

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _load_durable_state(self, path: str) -> None:
        with open(path, "rb") as handle:
            state: NodeDurableState = pickle.load(handle)
        self.replica.restore(state.replica)
        self.sent_log = state.sent_log
        self.outbox_total = state.outbox_total
        self.streams = state.streams
        self.apply_times = state.apply_times
        self.recovered = True

    def persist(self) -> None:
        """Write the durable state atomically (tmp + rename).

        Called after every state change — the live reading of the fault
        model's synchronous write-ahead persistence — and always *before*
        the change's effects become visible on the wire (acks for applies,
        replies and sends for client writes).

        Cost: one full snapshot per persist, O(replica state), exactly
        like the simulator's deepcopy snapshot model; the sent-log is
        pruned on ack so it holds only unacked traffic, but the applied
        history still grows with the run.  Fine at test/bench scale;
        an incremental (append-only) log is the production follow-up.
        """
        path = self.config.snapshot_path
        if not path:
            return
        state = NodeDurableState(
            replica=self.replica.snapshot(),
            sent_log=self.sent_log,
            outbox_total=self.outbox_total,
            streams=self.streams,
            apply_times=self.apply_times,
        )
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # The process main loop
    # ------------------------------------------------------------------
    async def serve(self, on_ready: Optional[Callable[[int], None]] = None) -> None:
        """Run the node until a SHUTDOWN frame (or cancellation)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.listen_host,
            port=self.config.listen_port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self.port)
        for neighbour in self.config.share_graph.neighbors(self.replica_id):
            sender = _ChannelSender(self, neighbour)
            self.channels[neighbour] = sender
            self._tasks.append(asyncio.create_task(sender.run()))
        self._tasks.append(asyncio.create_task(self._retransmit_loop()))
        if self.config.telemetry_interval > 0:
            self._tasks.append(asyncio.create_task(self._telemetry_loop()))
        try:
            await self.stopping.wait()
        finally:
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._server.close()
            await self._server.wait_closed()
            self.persist()

    async def _retransmit_loop(self) -> None:
        interval = max(self.config.reliability.resend_timeout / 2, 0.05)
        while not self.stopping.is_set():
            await asyncio.sleep(interval)
            for sender in self.channels.values():
                sender.retransmit_due()

    # ------------------------------------------------------------------
    # Telemetry (live metrics export)
    # ------------------------------------------------------------------
    def telemetry_samples(self) -> List[Tuple[str, tuple, float]]:
        """One flat metrics sample: queue depths, counters, wire books.

        The shape :func:`repro.obs.registry.fold_samples` consumes —
        ``(name, sorted label items, value)``; cumulative families carry
        the ``_total`` suffix, instantaneous ones (queue depths, window
        occupancy) are gauges.
        """
        me = (("replica", str(self.replica_id)),)
        samples: List[Tuple[str, tuple, float]] = [
            (f"repro_node_{name}_total", me, float(value))
            for name, value in sorted(self.counters.items())
        ]
        samples.append((
            "repro_node_send_queue_depth", me,
            float(sum(c.queue.qsize() for c in self.channels.values())),
        ))
        samples.append((
            "repro_node_unacked", me,
            float(sum(len(c.outstanding) for c in self.channels.values())),
        ))
        samples.append((
            "repro_node_pending_depth", me, float(self.replica.pending_count()),
        ))
        for (src, dst), book in sorted(self.wire_stats.items()):
            channel_labels = (("dst", str(dst)), ("src", str(src)))
            samples.append((
                "repro_node_wire_messages_total", channel_labels,
                float(book.messages)))
            samples.append((
                "repro_node_wire_batches_total", channel_labels,
                float(book.batches)))
            samples.append((
                "repro_node_wire_timestamp_bytes_total", channel_labels,
                float(book.timestamp_bytes)))
            samples.append((
                "repro_node_wire_payload_bytes_total", channel_labels,
                float(book.payload_bytes)))
        return samples

    async def _telemetry_loop(self) -> None:
        """Push a TELEMETRY frame to every subscribed control connection."""
        interval = self.config.telemetry_interval
        while not self.stopping.is_set():
            await asyncio.sleep(interval)
            await self._push_telemetry()

    async def _push_telemetry(self) -> None:
        if not self._telemetry_writers:
            return
        frame = encode_frame(frames.TELEMETRY, frames.encode_telemetry_payload(
            self.host.now, self.replica_id, self.telemetry_samples()
        ))
        alive: List[asyncio.StreamWriter] = []
        for writer in self._telemetry_writers:
            if writer.is_closing():
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (OSError, ConnectionError):
                continue
            alive.append(writer)
        self._telemetry_writers = alive

    # ------------------------------------------------------------------
    # Resync (the live anti-entropy exchange)
    # ------------------------------------------------------------------
    async def resync(self, destination: ReplicaId, known: set,
                     sender: _ChannelSender) -> None:
        """Re-send every sent-log entry ``destination`` does not hold.

        Triggered by the peer's ``SYNC`` frame on every (re)established
        channel connection; mirrors
        :meth:`~repro.sim.engine.Transport.resync` exactly — same inputs
        (the receiver's durable uid set), same source (the sender's durable
        outbox), same delivery path (the channel's normal FIFO queue).
        """
        log = self.sent_log.get(destination, {})
        missing = [
            message
            for uid, message in log.items()
            if uid not in known and uid not in sender.inflight
        ]
        if missing:
            self.counters["resyncs"] += 1
        for message in missing:
            await sender.enqueue(message)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        decoder = StreamDecoder()
        state: Dict[str, Any] = {"peer": None, "decoder": None, "control": False}
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for kind, payload in decoder.feed(chunk):
                    await self._handle_frame(kind, payload, writer, state)
                    if self.stopping.is_set():
                        return
        except WireFormatError:
            # A corrupt or misaligned stream: drop the connection (the
            # peer's reconnect + resync path recovers), keep the node up.
            return
        except (OSError, ConnectionError):
            return
        except asyncio.CancelledError:
            # Loop teardown while blocked in read(): finish quietly — the
            # connection is closed in the finally block either way.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _handle_frame(self, kind: int, payload: bytes,
                            writer: asyncio.StreamWriter,
                            state: Dict[str, Any]) -> None:
        if kind == frames.HELLO:
            peer, port = frames.decode_hello(payload)
            state["peer"] = peer
            state["decoder"] = (
                ChannelDeltaDecoder() if self.config.batching.delta_encoding
                else None
            )
            # The peer listens on the host it dialled from, at the port it
            # announced — so a restarted peer's new address propagates with
            # its first frame.
            peername = writer.get_extra_info("peername")
            peer_host = peername[0] if peername else self.config.listen_host
            self.addresses[peer] = (peer_host, port)
            # Offer the anti-entropy exchange: tell the connecting sender
            # what this node holds durably; it re-sends the rest.
            writer.write(encode_frame(
                frames.SYNC,
                frames.encode_uid_list(sorted(self.replica.known_update_ids())),
            ))
            await writer.drain()
        elif kind == frames.BATCH:
            await self._handle_batch(payload, writer, state)
        elif kind == frames.CONTROL_HELLO:
            state["control"] = True
            if self.config.telemetry_interval > 0:
                self._telemetry_writers.append(writer)
        elif kind == frames.ADDR:
            replica_id, host, port = frames.decode_addr(payload)
            if replica_id != self.replica_id:
                self.addresses[replica_id] = (host, port)
        elif kind == frames.OP:
            await self._handle_op(payload, writer)
        elif kind == frames.STATS_REQ:
            writer.write(encode_frame(frames.STATS, self._stats_payload()))
            await writer.drain()
        elif kind == frames.REPORT_REQ:
            # Final telemetry sample ahead of the report, on the same
            # stream: FIFO ordering lands it before the REPORT reply the
            # launcher blocks on, so even a run shorter than one sampling
            # interval exports its end-of-run counters.
            if self.config.telemetry_interval > 0:
                writer.write(encode_frame(
                    frames.TELEMETRY, frames.encode_telemetry_payload(
                        self.host.now, self.replica_id,
                        self.telemetry_samples(),
                    )))
            writer.write(encode_frame(frames.REPORT, pickle.dumps(
                self.report(), protocol=pickle.HIGHEST_PROTOCOL
            )))
            await writer.drain()
        elif kind == frames.SHUTDOWN:
            self.stopping.set()
        # Unknown kinds are ignored: wire-compatible newer launchers may
        # probe; dropping beats crashing a live replica.

    async def _handle_batch(self, payload: bytes, writer: asyncio.StreamWriter,
                            state: Dict[str, Any]) -> None:
        batch, _ = decode_batch(payload, decoder=state["decoder"])
        channel = batch.channel
        received_at = self.host.now
        uids: List[UpdateId] = []
        fresh = 0
        for message in batch.messages:
            uid = message.update.uid
            uids.append(uid)
            self.counters["received"] += 1
            if uid in self.seen_uids:
                self.counters["duplicates"] += 1
            else:
                self.seen_uids.add(uid)
                self.streams.setdefault(channel, []).append(uid)
                self.counters["delivered"] += 1
                fresh += 1
                if self.tracer is not None:
                    self.tracer.record("deliver", uid, channel[0], channel[1],
                                       received_at)
        if fresh:
            applied = self.host.deliver(list(batch.messages))
            now = self.host.now
            for update in applied:
                self.apply_times[update.uid] = now
            self.persist()
        # Ack after persisting: an ack promises the update survives a crash.
        # Duplicates are re-acked so a retransmitting sender settles.
        writer.write(encode_frame(frames.ACK, frames.encode_uid_list(uids)))
        await writer.drain()

    async def _handle_op(self, payload: bytes,
                         writer: asyncio.StreamWriter) -> None:
        op_id, kind, register, value = frames.decode_op(payload)
        status = frames.OP_OK
        reply_value: Any = None
        try:
            # Validation raises *before* any state mutates (the replica
            # checks register membership first), so a rejection is always
            # a clean no-op.  Infrastructure failures after the mutation
            # (persist I/O, codec bugs) deliberately propagate instead of
            # masquerading as rejections — the connection drops, the
            # client sees an unanswered op, and the durable trace still
            # tells the truth about what was applied.
            if kind == "write":
                update, messages = self.host.perform_write(register, value)
            else:
                reply_value = self.host.perform_read(register)
                self.persist()  # the READ trace event is durable state too
                messages = []
        except ReproError:
            status = frames.OP_REJECTED
            messages = []
        if status == frames.OP_OK and kind == "write":
            self.counters["issued"] += 1
            self.apply_times[update.uid] = self.host.now
            for message in messages:
                log = self.sent_log.setdefault(message.destination, {})
                log[message.update.uid] = message
                self.outbox_total[message.destination] = (
                    self.outbox_total.get(message.destination, 0) + 1
                )
            self.persist()
            for message in messages:
                await self.channels[message.destination].enqueue(message)
        self.counters["ops_done"] += 1
        writer.write(encode_frame(
            frames.OP_REPLY, frames.encode_op_reply(op_id, status, reply_value)
        ))
        await writer.drain()

    # ------------------------------------------------------------------
    # Harness surface
    # ------------------------------------------------------------------
    def _stats_payload(self) -> bytes:
        counters = self.counters
        stats = frames.NodeStats(
            ops_done=counters["ops_done"],
            issued=counters["issued"],
            enqueued=counters["enqueued"],
            sent=counters["sent"],
            received=counters["received"],
            delivered=counters["delivered"],
            applied=len(self.replica.applied),
            pending=self.replica.pending_count(),
            send_queue=sum(c.queue.qsize() for c in self.channels.values()),
            unacked=sum(len(c.outstanding) for c in self.channels.values()),
            duplicates=counters["duplicates"],
            retransmissions=counters["retransmissions"],
            resyncs=counters["resyncs"],
        )
        # The progress books are derived from durable state (outbox
        # counters / first-receipt streams), so drain detection survives
        # SIGKILLs and sent-log pruning alike.
        inbox = {
            sender: len(uids) for (sender, _), uids in self.streams.items()
        }
        return frames.encode_stats_payload(stats, dict(self.outbox_total), inbox)

    def report(self) -> Dict[str, Any]:
        """The end-of-run report the launcher folds into the cluster view."""
        return {
            "replica_id": self.replica_id,
            "events": tuple(self.replica.events),
            "store": dict(self.replica.store),
            "streams": {channel: list(uids) for channel, uids in self.streams.items()},
            "metrics": self.host.metrics,
            "issue_times": dict(self.host._issue_times),
            "apply_times": dict(self.apply_times),
            "duplicates_ignored": self.replica.duplicates_ignored,
            "metadata_size": self.replica.metadata_size(),
            "counters": dict(self.counters),
            "recovered": self.recovered,
            "wire_stats": dict(self.wire_stats),
            "trace": list(self.tracer.events) if self.tracer is not None else [],
        }


def _install_uvloop() -> bool:
    """Install uvloop's event-loop policy when opted in and available.

    ``REPRO_UVLOOP=1`` requests uvloop (the ``repro[uvloop]`` extra); the
    default — and any environment where uvloop is not importable — stays on
    the stdlib event loop, so the opt-in can never break a deployment.
    """
    if os.environ.get("REPRO_UVLOOP", "") in ("", "0"):
        return False
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def node_main(config: NodeConfig, ready_queue: Any) -> None:
    """Process entry point: run one node, reporting its port when bound."""
    _install_uvloop()
    node = ReplicaNode(config)

    def on_ready(port: int) -> None:
        ready_queue.put((config.replica_id, port))

    asyncio.run(node.serve(on_ready))
