"""The live asyncio runtime: the wire layer on real TCP streams.

Everything below :mod:`repro.wire` was, until this package, exercised only
inside the discrete-event simulator.  :mod:`repro.net` runs the *same*
protocol instances (:class:`~repro.core.protocol.CausalReplica`) as live
OS processes talking length-prefixed :class:`~repro.wire.batch.MessageBatch`
frames over localhost TCP:

* :mod:`repro.net.framing` — length-prefixed stream framing with an
  incremental decoder (bytes arrive in arbitrary chunks; frames come out
  whole);
* :mod:`repro.net.frames` — the small control vocabulary around the data
  frames: node hellos, replica-tagged acks and resync offers, client
  operations and the stats/report harness protocol;
* :mod:`repro.net.node` — one live node: an asyncio TCP server hosting
  many replica *tenants*, one outbound stream per peer **node** (not per
  share-graph edge) multiplexing every channel between the two nodes with
  per-channel FIFO queues, batching windows and delta chains, an ack +
  resend reliability layer mirroring
  :class:`~repro.sim.engine.ReliabilityConfig`, intra-node short-circuit
  delivery, and log-structured durability (:mod:`repro.net.wal`) so a
  SIGKILLed process replays checkpoint + log tail exactly like a
  simulated crash;
* :mod:`repro.net.wal` — the checkpoint + write-ahead-log pair behind
  that durability: O(delta) appends, fsync-then-rename compaction;
* :mod:`repro.net.runtime` — the multi-process launcher
  (:class:`~repro.net.runtime.LiveCluster`): spawns node processes under
  a replica→node placement, drives workloads, detects quiescence,
  kills/restarts members, and collects the event traces the consistency
  checker consumes;
* :mod:`repro.net.client` — open-loop client load against a live cluster.

The simulator is the test oracle for all of it: the differential harness
(``tests/differential``) replays the same seeded workload through
:class:`~repro.sim.cluster.Cluster` and :class:`~repro.net.runtime.LiveCluster`
and asserts identical consistency verdicts, final register states and
per-channel delivery streams.
"""

from .client import OpenLoopClient
from .framing import StreamDecoder, encode_frame
from .node import BatchPolicy, LiveNode, LiveNodeHost, NodeConfig
from .runtime import LiveCluster, LiveRunResult
from .wal import ReplicaWAL, WalCheckpoint

__all__ = [
    "BatchPolicy",
    "LiveCluster",
    "LiveNode",
    "LiveNodeHost",
    "LiveRunResult",
    "NodeConfig",
    "OpenLoopClient",
    "ReplicaWAL",
    "StreamDecoder",
    "WalCheckpoint",
    "encode_frame",
]
