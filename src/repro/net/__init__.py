"""The live asyncio runtime: the wire layer on real TCP streams.

Everything below :mod:`repro.wire` was, until this package, exercised only
inside the discrete-event simulator.  :mod:`repro.net` runs the *same*
protocol instances (:class:`~repro.core.protocol.CausalReplica`) as live
OS processes talking length-prefixed :class:`~repro.wire.batch.MessageBatch`
frames over localhost TCP:

* :mod:`repro.net.framing` — length-prefixed stream framing with an
  incremental decoder (bytes arrive in arbitrary chunks; frames come out
  whole);
* :mod:`repro.net.frames` — the small control vocabulary around the data
  frames: channel hellos, acks, the resync exchange, client operations and
  the stats/report harness protocol;
* :mod:`repro.net.node` — one live replica: an asyncio TCP server, one
  outbound streaming connection per share-graph channel with a FIFO send
  queue, batching windows and per-channel delta encoding, an ack + resend
  reliability layer mirroring
  :class:`~repro.sim.engine.ReliabilityConfig`, and durable snapshots +
  sent-log so a SIGKILLed process recovers exactly like a simulated crash;
* :mod:`repro.net.runtime` — the multi-process launcher
  (:class:`~repro.net.runtime.LiveCluster`): spawns one process per
  replica, drives workloads, detects quiescence, kills/restarts members,
  and collects the event traces the consistency checker consumes;
* :mod:`repro.net.client` — open-loop client load against a live cluster.

The simulator is the test oracle for all of it: the differential harness
(``tests/differential``) replays the same seeded workload through
:class:`~repro.sim.cluster.Cluster` and :class:`~repro.net.runtime.LiveCluster`
and asserts identical consistency verdicts, final register states and
per-channel delivery streams.
"""

from .client import OpenLoopClient
from .framing import StreamDecoder, encode_frame
from .node import BatchPolicy, LiveNodeHost, NodeConfig, ReplicaNode
from .runtime import LiveCluster, LiveRunResult

__all__ = [
    "BatchPolicy",
    "LiveCluster",
    "LiveNodeHost",
    "LiveRunResult",
    "NodeConfig",
    "OpenLoopClient",
    "ReplicaNode",
    "StreamDecoder",
    "encode_frame",
]
