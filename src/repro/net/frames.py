"""The live runtime's control vocabulary around the data frames.

Every frame on a live connection is a ``(kind, payload)`` pair under the
length-prefixed framing of :mod:`repro.net.framing`.  Two connection roles
share the vocabulary:

**Peer streams** (one per ordered *node* pair, opened by the sending node;
every channel between replicas hosted on the two nodes is multiplexed onto
this single connection):

* ``HELLO`` — the connecting *node* identifies itself and announces its own
  listening port, so a restarted peer's new address propagates with its
  traffic;
* ``SYNC`` — sent by the *accepting* side immediately after the hello, once
  per hosted replica with traffic from the connecting node: the destination
  replica plus the update ids it holds durably.  The sender answers by
  re-sending every sent-log entry for that replica outside that set — the
  live mirror of the simulator's anti-entropy
  :meth:`~repro.sim.engine.Transport.resync`.  On a first connection the
  sent-log is empty and the exchange is a no-op;
* ``BATCH`` — an encoded :class:`~repro.wire.batch.MessageBatch`.  The batch
  envelope already names its channel ``(sender, destination)``, so frames
  from many channels interleave on one stream with no extra tag, and the
  receiver demultiplexes by destination replica (byte-identical to what the
  simulator's wire accounting measures);
* ``ACK`` — the destination replica plus the update ids it applied durably;
  the sending node retires them from that channel's outstanding set (the
  ack half of the reliability layer).

**Control connections** (harness/client → node):

* ``CONTROL_HELLO``, ``ADDR`` (a peer moved), ``OP`` / ``OP_REPLY`` (client
  operations), ``STATS_REQ`` / ``STATS`` (quiescence counters),
  ``REPORT_REQ`` / ``REPORT`` (end-of-run traces), ``SHUTDOWN``;
* ``TELEMETRY`` — a node-initiated metrics sample: flat ``(name, labels,
  value)`` triples pushed periodically over whatever control connections
  are open, so the launcher sees queue depths and wire-byte counters
  *during* the run, not only in the end-of-run report.

Hot-path frames (batches, acks, syncs, ops) are encoded with the
:mod:`repro.wire` primitives — compact, versioned, and shared with the
simulator's byte accounting.  The end-of-run ``REPORT`` payload is a pickle:
it carries rich Python objects (event traces, metric samples) exactly once,
parent-to-child on one machine — the same trust boundary as
:mod:`multiprocessing` itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..core.protocol import UpdateId
from ..core.registers import ReplicaId
from ..wire.codecs import decode_value, encode_value
from ..wire.primitives import (
    WireFormatError,
    decode_atom,
    decode_uvarint,
    encode_atom,
    encode_uvarint,
)

# Channel-connection frame kinds.
HELLO = 1
SYNC = 2
BATCH = 3
ACK = 4

# Control-connection frame kinds.
CONTROL_HELLO = 16
ADDR = 17
OP = 18
OP_REPLY = 19
STATS_REQ = 20
STATS = 21
REPORT_REQ = 22
REPORT = 23
SHUTDOWN = 24
TELEMETRY = 25

#: Operation status codes in ``OP_REPLY``.
OP_OK = 0
OP_REJECTED = 1


# ----------------------------------------------------------------------
# Update-id lists (SYNC / ACK payloads)
# ----------------------------------------------------------------------

def encode_uid_list(uids: Iterable[UpdateId]) -> bytes:
    """Encode a list of update ids: count, then (issuer atom, seq uvarint)."""
    uids = list(uids)
    out = bytearray(encode_uvarint(len(uids)))
    for issuer, seq in uids:
        out += encode_atom(issuer)
        out += encode_uvarint(seq)
    return bytes(out)


def decode_uid_list(data: bytes, offset: int = 0) -> Tuple[List[UpdateId], int]:
    """Decode an update-id list; returns ``(uids, new_offset)``."""
    count, offset = decode_uvarint(data, offset)
    uids: List[UpdateId] = []
    for _ in range(count):
        issuer, offset = decode_atom(data, offset)
        seq, offset = decode_uvarint(data, offset)
        uids.append((issuer, seq))
    return uids, offset


# ----------------------------------------------------------------------
# Tagged update-id lists (SYNC / ACK payloads on multiplexed streams)
# ----------------------------------------------------------------------

def encode_tagged_uids(replica: ReplicaId, uids: Iterable[UpdateId]) -> bytes:
    """A destination replica plus an update-id list.

    SYNC and ACK frames ride the shared per-node-pair stream, so they name
    the replica they speak for; the sending node routes the frame to that
    channel's book-keeping.
    """
    return encode_atom(replica) + encode_uid_list(uids)


def decode_tagged_uids(data: bytes) -> Tuple[ReplicaId, List[UpdateId]]:
    replica, offset = decode_atom(data)
    uids, offset = decode_uid_list(data, offset)
    _expect_end(data, offset, "tagged-uid")
    return replica, uids


# ----------------------------------------------------------------------
# HELLO — peer-stream identification
# ----------------------------------------------------------------------

def encode_hello(node_id: object, listen_port: int) -> bytes:
    """The connecting node's identity and its own server port."""
    return encode_atom(node_id) + encode_uvarint(listen_port)


def decode_hello(data: bytes) -> Tuple[object, int]:
    node_id, offset = decode_atom(data)
    port, offset = decode_uvarint(data, offset)
    _expect_end(data, offset, "HELLO")
    return node_id, port


# ----------------------------------------------------------------------
# ADDR — a peer node's (possibly new) address, pushed by the launcher
# ----------------------------------------------------------------------

def encode_addr(node_id: object, host: str, port: int) -> bytes:
    return encode_atom(node_id) + encode_atom(host) + encode_uvarint(port)


def decode_addr(data: bytes) -> Tuple[object, str, int]:
    node_id, offset = decode_atom(data)
    host, offset = decode_atom(data, offset)
    port, offset = decode_uvarint(data, offset)
    _expect_end(data, offset, "ADDR")
    return node_id, host, port


# ----------------------------------------------------------------------
# OP / OP_REPLY — client operations
# ----------------------------------------------------------------------

_OP_KINDS = ("write", "read")


def encode_op(op_id: int, replica: ReplicaId, kind: str, register: object,
              value: object) -> bytes:
    """One client operation: id, target replica, kind, register, value.

    The target replica routes the operation to a tenant on a multi-tenant
    node — one control connection serves every replica the node hosts.
    """
    try:
        kind_code = _OP_KINDS.index(kind)
    except ValueError:
        raise WireFormatError(f"unknown operation kind {kind!r}") from None
    return (
        encode_uvarint(op_id)
        + encode_atom(replica)
        + bytes((kind_code,))
        + encode_atom(register)
        + encode_value(value)
    )


def decode_op(data: bytes) -> Tuple[int, ReplicaId, str, object, object]:
    op_id, offset = decode_uvarint(data)
    replica, offset = decode_atom(data, offset)
    if offset >= len(data):
        raise WireFormatError("truncated OP frame")
    kind_code = data[offset]
    offset += 1
    if kind_code >= len(_OP_KINDS):
        raise WireFormatError(f"unknown operation kind code {kind_code}")
    register, offset = decode_atom(data, offset)
    value, offset = decode_value(data, offset)
    _expect_end(data, offset, "OP")
    return op_id, replica, _OP_KINDS[kind_code], register, value


def encode_op_reply(op_id: int, status: int, value: object = None) -> bytes:
    return encode_uvarint(op_id) + bytes((status,)) + encode_value(value)


def decode_op_reply(data: bytes) -> Tuple[int, int, object]:
    op_id, offset = decode_uvarint(data)
    if offset >= len(data):
        raise WireFormatError("truncated OP_REPLY frame")
    status = data[offset]
    value, offset = decode_value(data, offset + 1)
    _expect_end(data, offset, "OP_REPLY")
    return op_id, status, value


# ----------------------------------------------------------------------
# STATS — the quiescence counters
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NodeStats:
    """One node's progress counters, polled by the launcher.

    The launcher declares the cluster drained when, across two consecutive
    polls, every node reports empty queues (``send_queue``, ``unacked``,
    ``pending`` all zero), every enqueued message has been delivered
    somewhere (``sum(enqueued) == sum(delivered)``), and the counters did
    not move between the polls.
    """

    ops_done: int = 0
    issued: int = 0
    #: Messages handed to channel send queues (one per destination copy).
    enqueued: int = 0
    #: Messages flushed onto the wire, retransmissions included.
    sent: int = 0
    #: Messages read off the wire, duplicates included.
    received: int = 0
    #: First receipts (duplicates suppressed) — the delivery count the
    #: drain condition compares against ``enqueued``.
    delivered: int = 0
    applied: int = 0
    pending: int = 0
    send_queue: int = 0
    unacked: int = 0
    duplicates: int = 0
    retransmissions: int = 0
    resyncs: int = 0

    _FIELDS = (
        "ops_done", "issued", "enqueued", "sent", "received", "delivered",
        "applied", "pending", "send_queue", "unacked", "duplicates",
        "retransmissions", "resyncs",
    )

    def encode(self) -> bytes:
        out = bytearray()
        for name in self._FIELDS:
            out += encode_uvarint(getattr(self, name))
        return bytes(out)

    @classmethod
    def decode_from(cls, data: bytes, offset: int = 0) -> Tuple["NodeStats", int]:
        values = {}
        for name in cls._FIELDS:
            values[name], offset = decode_uvarint(data, offset)
        return cls(**values), offset


#: Per-channel durable progress books riding the STATS frame, keyed by the
#: directed channel ``(src replica, dst replica)``: ``outbox`` is how many
#: distinct updates this node has ever logged on each outgoing channel,
#: ``inbox`` how many distinct updates it has ever first-received on each
#: incoming one.  Both are derived from crash-surviving state, so the
#: launcher's drain detection (``outbox[(i,j)]`` at ``i``'s node ==
#: ``inbox[(i,j)]`` at ``j``'s node for every channel) stays sound across
#: kill/restart cycles — in-memory counters die with a SIGKILL, these
#: books do not.
ChannelCounts = dict


def _channel_order(channel: tuple) -> tuple:
    # Deterministic order even for mixed int/str replica ids (atoms allow
    # both): ints first, then strings, each sorted.
    src, dst = channel
    return (isinstance(src, str), src, isinstance(dst, str), dst)


def _encode_channel_counts(book: dict) -> bytes:
    out = bytearray(encode_uvarint(len(book)))
    for channel in sorted(book, key=_channel_order):
        src, dst = channel
        out += encode_atom(src)
        out += encode_atom(dst)
        out += encode_uvarint(book[channel])
    return bytes(out)


def _decode_channel_counts(data: bytes, offset: int) -> Tuple[dict, int]:
    count, offset = decode_uvarint(data, offset)
    book = {}
    for _ in range(count):
        src, offset = decode_atom(data, offset)
        dst, offset = decode_atom(data, offset)
        book[(src, dst)], offset = decode_uvarint(data, offset)
    return book, offset


def encode_stats_payload(stats: NodeStats, outbox: dict, inbox: dict) -> bytes:
    """The full ``STATS`` payload: scalar counters + the progress books."""
    return (
        stats.encode()
        + _encode_channel_counts(outbox)
        + _encode_channel_counts(inbox)
    )


def decode_stats_payload(data: bytes) -> Tuple[NodeStats, dict, dict]:
    stats, offset = NodeStats.decode_from(data)
    outbox, offset = _decode_channel_counts(data, offset)
    inbox, offset = _decode_channel_counts(data, offset)
    _expect_end(data, offset, "STATS")
    return stats, outbox, inbox


# ----------------------------------------------------------------------
# TELEMETRY — periodic metrics samples, node → subscribers
# ----------------------------------------------------------------------

#: One telemetry sample: ``(metric name, sorted label items, value)`` —
#: the flat shape :func:`repro.obs.registry.fold_samples` consumes.
TelemetrySample = Tuple[str, Tuple[Tuple[str, str], ...], float]


def encode_telemetry_payload(
    sampled_at: float, replica_id: ReplicaId,
    samples: Iterable[TelemetrySample],
) -> bytes:
    """One TELEMETRY frame: sample time, reporting node, then the samples.

    Values ride :func:`~repro.wire.codecs.encode_value` so both integer
    counters and float gauges survive the trip exactly; names and label
    keys/values are atoms.
    """
    samples = list(samples)
    out = bytearray(encode_value(sampled_at))
    out += encode_atom(replica_id)
    out += encode_uvarint(len(samples))
    for name, labels, value in samples:
        out += encode_atom(name)
        out += encode_uvarint(len(labels))
        for key, label_value in labels:
            out += encode_atom(key)
            out += encode_atom(label_value)
        out += encode_value(value)
    return bytes(out)


def decode_telemetry_payload(
    data: bytes,
) -> Tuple[float, ReplicaId, List[TelemetrySample]]:
    sampled_at, offset = decode_value(data)
    replica_id, offset = decode_atom(data, offset)
    count, offset = decode_uvarint(data, offset)
    samples: List[TelemetrySample] = []
    for _ in range(count):
        name, offset = decode_atom(data, offset)
        nlabels, offset = decode_uvarint(data, offset)
        labels = []
        for _ in range(nlabels):
            key, offset = decode_atom(data, offset)
            label_value, offset = decode_atom(data, offset)
            labels.append((key, label_value))
        value, offset = decode_value(data, offset)
        samples.append((name, tuple(labels), value))
    _expect_end(data, offset, "TELEMETRY")
    return sampled_at, replica_id, samples


def _expect_end(data: bytes, offset: int, kind: str) -> None:
    if offset != len(data):
        raise WireFormatError(
            f"{kind} frame has {len(data) - offset} trailing bytes"
        )
