"""Open-loop client load against a live cluster.

An open-loop client fires operations at their scheduled wall-clock times —
derived from an :class:`~repro.sim.workloads.OpenLoopWorkload` by scaling
simulated time units to seconds — *without* waiting for replies, so queues
in the system can genuinely build up, exactly as in the simulator's
open-loop runs.  Replies stream back asynchronously on the control links'
reader threads; each reply closes its operation's latency sample
(submit → durably-applied-and-answered round trip), which is where
``bench_live.py``'s p99 comes from.

Operations addressed to a dead node (its control link is down, e.g. after
:meth:`~repro.net.runtime.LiveCluster.kill`) are *rejected* and counted,
mirroring the simulator's availability accounting for crashed replicas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from . import frames


@dataclass
class ClientOutcome:
    """What one open-loop drive observed."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    #: Submit → reply round-trip per completed operation, in seconds.
    latencies: List[float] = field(default_factory=list)
    #: Values returned by completed reads: ``(replica_id, register, value)``.
    read_results: List[Tuple[Any, Any, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when every submitted operation was answered."""
        return self.completed == self.submitted


class OpenLoopClient:
    """Drives an :class:`~repro.sim.workloads.OpenLoopWorkload` live.

    One client instance drives one run; construct a fresh one per run.
    """

    def __init__(self, cluster: Any) -> None:
        self.cluster = cluster

    def run(self, workload: Any, time_scale: float = 0.001,
            reply_timeout: float = 30.0) -> ClientOutcome:
        """Fire every arrival on schedule; wait for the replies; summarise.

        ``time_scale`` converts workload time units to seconds (the default
        compresses 1 simulated unit to 1 ms, keeping tests fast while
        preserving the arrival *order and proportions* of the schedule).
        A scale of 0 fires the whole schedule as fast as the sockets
        accept it — maximum pressure, still per-replica FIFO.
        """
        outcome = ClientOutcome()
        #: op_id -> (link, replica_id, operation) for reply matching.
        in_flight: Dict[int, Tuple[Any, Any, Any]] = {}
        start = time.perf_counter()
        for arrival in workload.arrivals:
            if time_scale > 0:
                target = start + arrival.time * time_scale
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            operation = arrival.operation
            link = self.cluster.link(operation.replica_id)
            if link is None:
                outcome.rejected += 1
                continue
            op_id = self.cluster.next_op_id()
            try:
                link.submit_op(
                    op_id, operation.replica_id, operation.kind,
                    operation.register, operation.value,
                )
            except OSError:
                outcome.rejected += 1
                continue
            outcome.submitted += 1
            in_flight[op_id] = (link, operation.replica_id, operation)

        deadline = time.monotonic() + reply_timeout
        while in_flight and time.monotonic() < deadline:
            done = [
                op_id for op_id, (link, _, _) in in_flight.items()
                if op_id in link.op_replies or not link.alive
            ]
            if not done:
                time.sleep(0.01)
                continue
            for op_id in done:
                link, replica_id, operation = in_flight.pop(op_id)
                reply = link.op_replies.pop(op_id, None)
                if reply is None:
                    # The link died before answering: the node was killed
                    # with the operation in flight.  Count it rejected —
                    # whether it executed is exactly the ambiguity a real
                    # client faces, and the consistency checker judges
                    # whatever the durable trace says actually happened.
                    outcome.submitted -= 1
                    outcome.rejected += 1
                    continue
                latency, status, value = reply
                if status == frames.OP_OK:
                    outcome.completed += 1
                    outcome.latencies.append(latency)
                    if operation.kind == "read":
                        outcome.read_results.append(
                            (replica_id, operation.register, value)
                        )
                else:
                    outcome.submitted -= 1
                    outcome.rejected += 1
        return outcome
