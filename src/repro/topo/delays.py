"""A delay model driven by measured topology latencies.

:class:`LatencyDelayModel` closes the gap between the abstract simulator
(delays in arbitrary "time units") and a measured network: one simulated
time unit is one millisecond, and the latency of a replica-to-replica
channel is the shortest-path latency between the topology nodes the
placement assigned those replicas to.  Co-hosted replicas talk over a
small loopback latency instead of zero so event ordering stays strict.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from ..core.protocol import UpdateMessage
from ..core.registers import ReplicaId
from ..sim.delays import Channel, DelayModel
from .model import NodeId, Topology, TopologyError

__all__ = ["LatencyDelayModel"]


class LatencyDelayModel(DelayModel):
    """Per-channel delays from topology shortest-path latencies.

    Parameters
    ----------
    topology:
        The measured topology (latencies in milliseconds).
    assignment:
        Replica id → topology node.  Every replica that ever sends or
        receives a message must be assigned; unknown nodes raise
        :class:`~repro.core.errors.TopologyError` eagerly.
    jitter:
        Multiplicative jitter fraction: each message's latency is drawn
        uniformly from ``[base, base * (1 + jitter)]`` using the seeded
        channel generator, so runs stay reproducible.  0 disables jitter.
    local_latency_ms:
        Latency between two replicas assigned to the *same* node
        (loopback / intra-host); must be positive so the simulator never
        schedules a zero-delay delivery.
    """

    def __init__(
        self,
        topology: Topology,
        assignment: Mapping[ReplicaId, NodeId],
        jitter: float = 0.0,
        local_latency_ms: float = 0.1,
    ) -> None:
        if jitter < 0.0:
            raise TopologyError(f"jitter fraction must be >= 0, got {jitter!r}")
        if not local_latency_ms > 0.0:
            raise TopologyError(
                f"local latency must be positive, got {local_latency_ms!r}"
            )
        for rid, node in assignment.items():
            if not topology.has_node(node):
                raise TopologyError(
                    f"replica {rid!r} assigned to unknown node {node!r} "
                    f"of topology {topology.name!r}"
                )
        self.topology = topology
        self.assignment: Dict[ReplicaId, NodeId] = dict(assignment)
        self.jitter = float(jitter)
        self.local_latency_ms = float(local_latency_ms)
        pairs = topology.all_pairs_latency()
        base: Dict[Channel, float] = {}
        replicas = sorted(self.assignment)
        for sender in replicas:
            for destination in replicas:
                if sender == destination:
                    continue
                u = self.assignment[sender]
                v = self.assignment[destination]
                base[(sender, destination)] = (
                    self.local_latency_ms if u == v else pairs[u][v]
                )
        self._base = base

    def assign(self, replica_id: ReplicaId, node: NodeId) -> None:
        """Assign (or re-assign) one replica to a topology node mid-run.

        The extension hook the reconfiguration join path calls: the
        channel table is precomputed at construction, so without this a
        joiner's first message dies in :meth:`channel_base`.  Extends
        ``_base`` with both directions between ``replica_id`` and every
        assigned replica, using shortest-path latencies (loopback for
        co-hosted pairs) — exactly the construction-time rule.
        """
        if not self.topology.has_node(node):
            raise TopologyError(
                f"replica {replica_id!r} assigned to unknown node {node!r} "
                f"of topology {self.topology.name!r}"
            )
        pairs = self.topology.all_pairs_latency()
        self.assignment[replica_id] = node
        for other, other_node in self.assignment.items():
            if other == replica_id:
                continue
            latency = (
                self.local_latency_ms if other_node == node
                else pairs[node][other_node]
            )
            self._base[(replica_id, other)] = latency
            self._base[(other, replica_id)] = latency

    def node_of(self, replica_id: ReplicaId) -> Optional[NodeId]:
        """The topology node ``replica_id`` is assigned to (None if absent)."""
        return self.assignment.get(replica_id)

    def channel_base(self, channel: Channel) -> float:
        """Jitter-free base latency of a replica-to-replica channel."""
        try:
            return self._base[channel]
        except KeyError:
            raise TopologyError(
                f"channel {channel!r} has an unassigned endpoint; "
                f"assigned replicas: {sorted(self.assignment)}"
            ) from None

    def delay(self, message: UpdateMessage, rng: random.Random) -> float:
        latency = self.channel_base((message.sender, message.destination))
        if self.jitter:
            latency *= 1.0 + rng.uniform(0.0, self.jitter)
        return latency
