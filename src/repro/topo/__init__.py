"""Measured network topologies: import, catalog, and latency-driven delays.

The paper treats the network as an abstract asynchronous message substrate;
every experiment up to E20 therefore ran on synthetic cliques/trees/rings
with *uniform* link delays.  This package supplies the missing realism:

* :class:`~repro.topo.model.Topology` — an immutable weighted graph of
  measured per-link latencies (milliseconds) with optional region labels,
  validated on construction (typed :class:`~repro.core.errors.TopologyError`
  on malformed rows, self-loops, non-positive latencies and disconnected
  graphs) and exposing cached all-pairs shortest-path latencies;
* :mod:`~repro.topo.datasets` — a bundled GEANT-like European research
  backbone, a RocketFuel-like North-American ISP map (both parsed through
  the real text importer, so the import path is exercised on every use)
  and the parametric :func:`~repro.topo.datasets.geo_regions` generator
  following the icarus convention of 2 ms internal / 34 ms external links;
* :class:`~repro.topo.delays.LatencyDelayModel` — a
  :class:`~repro.sim.delays.DelayModel` that drives the existing transport
  machinery from topology shortest-path latencies between the nodes a
  placement assigned to each replica, instead of uniform constants.

The placement layer (:mod:`repro.placement`) consumes these topologies and
emits the share graph the protocol then runs.
"""

from .datasets import catalog, geant_like, geo_regions, rocketfuel_like
from .delays import LatencyDelayModel
from .model import Link, NodeId, Topology, TopologyError

__all__ = [
    "LatencyDelayModel",
    "Link",
    "NodeId",
    "Topology",
    "TopologyError",
    "catalog",
    "geant_like",
    "geo_regions",
    "rocketfuel_like",
]
