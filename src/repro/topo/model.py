"""The measured-topology model and its text importer.

A :class:`Topology` is an undirected graph of network sites with one
measured latency (in milliseconds, one-way) per link, plus an optional
region label per node — the shape of the public ISP/NREN datasets
(GEANT, RocketFuel) the realistic-world experiments import.

Everything is validated at construction time and import failures raise a
typed :class:`~repro.core.errors.TopologyError` naming the offending row:
a latency matrix that is silently wrong is strictly worse than no matrix,
because every placement decision downstream would inherit the garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

import networkx as nx

from ..core.errors import TopologyError

__all__ = ["Link", "NodeId", "Topology", "TopologyError"]

#: Topology nodes are named sites ("london", "r0_n2"), not replica ids —
#: the placement layer owns the replica → node assignment.
NodeId = str

#: Region label for nodes with no explicit region.
DEFAULT_REGION = "default"


@dataclass(frozen=True)
class Link:
    """One undirected measured link between two sites."""

    u: NodeId
    v: NodeId
    #: Measured one-way latency in milliseconds; strictly positive.
    latency_ms: float

    @property
    def endpoints(self) -> FrozenSet[NodeId]:
        """The unordered endpoint pair."""
        return frozenset((self.u, self.v))


@dataclass(frozen=True)
class Topology:
    """An immutable measured network topology.

    Parameters
    ----------
    name:
        Dataset name ("geant-like", "geo-3x4", …) used in tables.
    nodes:
        All site names.  May include sites mentioned by no link only if
        the topology has a single node (a degenerate but legal case);
        otherwise isolated nodes make the graph disconnected, which is
        rejected.
    links:
        The measured links.  Self-loops, duplicate links (in either
        orientation) and non-positive/non-finite latencies are rejected.
    regions:
        Optional node → region label map; unlabelled nodes fall into
        ``"default"``.  Regions drive the availability-aware placement
        partitions and the region-kill fault cells.
    """

    name: str
    nodes: Tuple[NodeId, ...]
    links: Tuple[Link, ...]
    regions: Mapping[NodeId, str] = field(default_factory=dict)
    _latency: Mapping[FrozenSet[NodeId], float] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        nodes = tuple(dict.fromkeys(str(n) for n in self.nodes))
        if not nodes:
            raise TopologyError(f"topology {self.name!r} has no nodes")
        if len(nodes) != len(self.nodes):
            raise TopologyError(f"topology {self.name!r} declares duplicate nodes")
        known = set(nodes)
        latency: Dict[FrozenSet[NodeId], float] = {}
        for link in self.links:
            if link.u == link.v:
                raise TopologyError(
                    f"topology {self.name!r}: self-loop at node {link.u!r}"
                )
            for endpoint in (link.u, link.v):
                if endpoint not in known:
                    raise TopologyError(
                        f"topology {self.name!r}: link {link.u!r}-{link.v!r} "
                        f"references undeclared node {endpoint!r}"
                    )
            if not (float(link.latency_ms) > 0.0) or link.latency_ms != link.latency_ms \
                    or link.latency_ms == float("inf"):
                raise TopologyError(
                    f"topology {self.name!r}: link {link.u!r}-{link.v!r} has "
                    f"non-positive or non-finite latency {link.latency_ms!r}"
                )
            key = link.endpoints
            if key in latency:
                raise TopologyError(
                    f"topology {self.name!r}: duplicate link {link.u!r}-{link.v!r}"
                )
            latency[key] = float(link.latency_ms)
        regions = {
            str(n): str(self.regions.get(n, DEFAULT_REGION)) for n in nodes
        }
        unknown_regions = set(self.regions) - known
        if unknown_regions:
            raise TopologyError(
                f"topology {self.name!r}: region labels for undeclared nodes "
                f"{sorted(unknown_regions)}"
            )
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "regions", regions)
        object.__setattr__(self, "_latency", latency)
        if not self.is_connected():
            raise TopologyError(
                f"topology {self.name!r} is disconnected "
                f"({len(self.connected_components())} components); every "
                "measured dataset must describe one reachable network"
            )

    # ------------------------------------------------------------------
    # Import
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, name: str = "imported") -> "Topology":
        """Parse the edge-list text format used by the bundled datasets.

        One record per line; ``#`` starts a comment; blank lines are
        skipped.  Two record kinds::

            node <id> <region>          # declare a node with a region label
            <u> <v> <latency_ms>        # an undirected measured link

        Nodes appearing only in link rows are declared implicitly with the
        default region.  Any malformed row — wrong field count, a
        non-numeric latency — raises :class:`TopologyError` with the line
        number, as do self-loops, duplicate links, non-positive latencies
        and a disconnected result (via the constructor).
        """
        nodes: List[NodeId] = []
        regions: Dict[NodeId, str] = {}
        links: List[Link] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if fields[0] == "node":
                if len(fields) != 3:
                    raise TopologyError(
                        f"{name}:{lineno}: node rows are 'node <id> <region>', "
                        f"got {raw.strip()!r}"
                    )
                _, node, region = fields
                if node not in regions:
                    nodes.append(node)
                regions[node] = region
                continue
            if len(fields) != 3:
                raise TopologyError(
                    f"{name}:{lineno}: link rows are '<u> <v> <latency_ms>', "
                    f"got {raw.strip()!r}"
                )
            u, v, latency_text = fields
            try:
                latency = float(latency_text)
            except ValueError:
                raise TopologyError(
                    f"{name}:{lineno}: latency {latency_text!r} is not a number"
                ) from None
            for endpoint in (u, v):
                if endpoint not in regions:
                    nodes.append(endpoint)
                    regions[endpoint] = DEFAULT_REGION
            links.append(Link(u, v, latency))
        return cls(name=name, nodes=tuple(nodes), links=tuple(links),
                   regions=regions)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of sites."""
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        """Number of undirected measured links."""
        return len(self._latency)

    def has_node(self, node: NodeId) -> bool:
        """``True`` iff ``node`` is a declared site."""
        return node in self.regions

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Sites directly linked to ``node``, sorted."""
        self._require(node)
        out = set()
        for pair in self._latency:
            if node in pair:
                out |= pair - {node}
        return tuple(sorted(out))

    def link_latency(self, u: NodeId, v: NodeId) -> float:
        """The measured latency of the direct link ``u``–``v``."""
        self._require(u)
        self._require(v)
        try:
            return self._latency[frozenset((u, v))]
        except KeyError:
            raise TopologyError(
                f"topology {self.name!r} has no direct link {u!r}-{v!r}"
            ) from None

    def _require(self, node: NodeId) -> None:
        if node not in self.regions:
            raise TopologyError(
                f"topology {self.name!r} has no node {node!r}"
            )

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def region_of(self, node: NodeId) -> str:
        """The region label of ``node``."""
        self._require(node)
        return self.regions[node]

    @property
    def region_names(self) -> Tuple[str, ...]:
        """All region labels, sorted."""
        return tuple(sorted(set(self.regions.values())))

    def nodes_in_region(self, region: str) -> Tuple[NodeId, ...]:
        """All sites labelled ``region``, sorted."""
        return tuple(sorted(n for n, r in self.regions.items() if r == region))

    # ------------------------------------------------------------------
    # Latency structure
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Export as a weighted :mod:`networkx` graph (``latency_ms`` weights)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        for pair, latency in self._latency.items():
            u, v = sorted(pair)
            graph.add_edge(u, v, latency_ms=latency)
        return graph

    def is_connected(self) -> bool:
        """``True`` iff every site can reach every other site."""
        if self.num_nodes <= 1:
            return True
        return nx.is_connected(self.to_networkx())

    def connected_components(self) -> List[FrozenSet[NodeId]]:
        """Connected components (used only by error reporting)."""
        return [frozenset(c) for c in nx.connected_components(self.to_networkx())]

    def all_pairs_latency(self) -> Dict[NodeId, Dict[NodeId, float]]:
        """Shortest-path latency between every pair of sites, cached.

        Dijkstra over the measured link latencies: the latency a packet
        actually experiences between two sites routed along the cheapest
        path.  The result is cached on first use (topologies are
        immutable).
        """
        cached = self.__dict__.get("_all_pairs")
        if cached is None:
            cached = {
                source: dict(lengths)
                for source, lengths in nx.all_pairs_dijkstra_path_length(
                    self.to_networkx(), weight="latency_ms"
                )
            }
            self.__dict__["_all_pairs"] = cached
        return cached

    def path_latency(self, u: NodeId, v: NodeId) -> float:
        """Shortest-path latency (ms) between two sites (0 for ``u == v``)."""
        self._require(u)
        self._require(v)
        return self.all_pairs_latency()[u][v]

    def diameter_ms(self) -> float:
        """The largest shortest-path latency between any site pair."""
        pairs = self.all_pairs_latency()
        return max((max(row.values()) for row in pairs.values()), default=0.0)

    def restricted_to(self, nodes: Iterable[NodeId]) -> "Topology":
        """The sub-topology induced on a node subset (must stay connected)."""
        keep = set(nodes)
        for node in keep:
            self._require(node)
        return Topology(
            name=f"{self.name}|{len(keep)}",
            nodes=tuple(n for n in self.nodes if n in keep),
            links=tuple(
                link for link in self.links if link.u in keep and link.v in keep
            ),
            regions={n: r for n, r in self.regions.items() if n in keep},
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        latencies = sorted(self._latency.values())
        lo = latencies[0] if latencies else 0.0
        hi = latencies[-1] if latencies else 0.0
        return (
            f"Topology {self.name!r}: {self.num_nodes} nodes, "
            f"{self.num_links} links ({lo:g}-{hi:g} ms), "
            f"{len(self.region_names)} regions, "
            f"diameter {self.diameter_ms():g} ms"
        )

    def __contains__(self, node: object) -> bool:
        return node in self.regions

    def __len__(self) -> int:
        return self.num_nodes
