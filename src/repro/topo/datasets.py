"""Bundled measured-topology datasets and parametric generators.

Two bundled maps mirror the public datasets the caching/placement
literature runs on — a GEANT-like European research backbone and a
RocketFuel-like North-American ISP PoP map — with per-link latencies in
milliseconds derived from great-circle distances between the real cities
(propagation at ~2/3 c, rounded to one decimal).  Both are stored as the
plain text format of :meth:`repro.topo.model.Topology.parse` and parsed
on every call, so the import path the tests exercise is the same one the
experiments use.

:func:`geo_regions` is the parametric generator following the icarus
convention (SNIPPETS #3): dense regions with 2 ms internal links joined
by 34 ms external links — the geo-replication regime where placement
decisions dominate tail latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .model import Topology, TopologyError

__all__ = ["catalog", "geant_like", "geo_regions", "rocketfuel_like"]


# ~22 GEANT points of presence.  Latencies are one-way milliseconds along
# the physical link (distance / (2/3 c) plus a small equipment constant);
# regions group the cities the way the availability experiments kill them.
_GEANT_TEXT = """
# GEANT-like European research backbone (22 nodes, 36 links).
node lisbon      iberia
node madrid      iberia
node paris       west
node london      west
node dublin      west
node amsterdam   west
node brussels    west
node frankfurt   central
node geneva      central
node zurich      central
node milan       south
node rome        south
node athens      south
node vienna      central
node bratislava  east
node prague      east
node budapest    east
node warsaw      east
node copenhagen  north
node stockholm   north
node helsinki    north
node tallinn     north

lisbon     madrid      3.2
madrid     paris       5.3
lisbon     london      7.9
paris      london      1.9
london     dublin      2.4
london     amsterdam   1.9
paris      geneva      2.1
paris      brussels    1.4
brussels   amsterdam   0.9
amsterdam  frankfurt   1.8
brussels   frankfurt   1.6
frankfurt  geneva      2.3
geneva     zurich      1.2
zurich     milan       1.1
milan      rome        2.4
rome       athens      5.3
milan      vienna      3.1
frankfurt  prague      2.1
prague     vienna      1.3
vienna     bratislava  0.7
bratislava budapest    1.0
vienna     budapest    1.2
budapest   athens      4.1
prague     warsaw      2.6
warsaw     budapest    2.8
frankfurt  copenhagen  3.4
amsterdam  copenhagen  3.1
copenhagen stockholm   2.7
stockholm  helsinki    2.0
helsinki   tallinn     0.9
warsaw     tallinn     4.2
stockholm  warsaw      4.0
geneva     madrid      5.1
zurich     frankfurt   1.5
vienna     zurich      3.0
dublin     amsterdam   3.7
"""


# ~12 RocketFuel-style North-American PoPs (AS1221-like scale), latencies
# from great-circle distances between the metro areas.
_ROCKETFUEL_TEXT = """
# RocketFuel-like North-American ISP map (12 PoPs, 18 links).
node seattle      west
node portland     west
node sanfrancisco west
node losangeles   west
node saltlake     central
node denver       central
node dallas       central
node chicago      central
node atlanta      east
node miami        east
node washington   east
node newyork      east

seattle      portland      1.4
portland     sanfrancisco  4.3
sanfrancisco losangeles    2.8
seattle      saltlake      5.7
sanfrancisco saltlake      4.8
losangeles   dallas        10.0
saltlake     denver        3.0
denver       dallas        5.3
denver       chicago       7.3
dallas       atlanta       5.8
chicago      washington    4.9
chicago      newyork       5.7
atlanta      washington    4.4
atlanta      miami         4.8
miami        washington    7.4
washington   newyork       1.6
dallas       chicago       6.5
losangeles   saltlake      5.9
"""


def geant_like() -> Topology:
    """The bundled GEANT-like European backbone (22 nodes, 6 regions)."""
    return Topology.parse(_GEANT_TEXT, name="geant-like")


def rocketfuel_like() -> Topology:
    """The bundled RocketFuel-like North-American ISP map (12 PoPs)."""
    return Topology.parse(_ROCKETFUEL_TEXT, name="rocketfuel-like")


def geo_regions(
    num_regions: int = 3,
    nodes_per_region: int = 4,
    internal_ms: float = 2.0,
    external_ms: float = 34.0,
) -> Topology:
    """Parametric geo-replication topology (icarus 2 ms / 34 ms convention).

    Each region is a clique of ``nodes_per_region`` sites on
    ``internal_ms`` links; regions are joined in a ring through their
    first site on ``external_ms`` links (two regions get a single joining
    link rather than a doubled pair).  Node ``rK_nJ`` lives in region
    ``rK``.
    """
    if num_regions < 1:
        raise TopologyError(f"geo_regions needs >= 1 region, got {num_regions}")
    if nodes_per_region < 1:
        raise TopologyError(
            f"geo_regions needs >= 1 node per region, got {nodes_per_region}"
        )
    lines: List[str] = []
    for r in range(num_regions):
        region = f"r{r}"
        names = [f"r{r}_n{j}" for j in range(nodes_per_region)]
        for node in names:
            lines.append(f"node {node} {region}")
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                lines.append(f"{names[i]} {names[j]} {internal_ms:g}")
    if num_regions == 2:
        lines.append(f"r0_n0 r1_n0 {external_ms:g}")
    elif num_regions > 2:
        for r in range(num_regions):
            nxt = (r + 1) % num_regions
            lines.append(f"r{r}_n0 r{nxt}_n0 {external_ms:g}")
    return Topology.parse(
        "\n".join(lines),
        name=f"geo-{num_regions}x{nodes_per_region}",
    )


def catalog() -> Dict[str, Callable[[], Topology]]:
    """Name → constructor map over every bundled/parametric topology."""
    return {
        "geant-like": geant_like,
        "rocketfuel-like": rocketfuel_like,
        "geo-3x4": lambda: geo_regions(3, 4),
        "geo-2x3": lambda: geo_regions(2, 3),
    }
