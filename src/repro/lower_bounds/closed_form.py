"""Closed-form corollaries of Theorem 15 and the algorithm's matching sizes.

The paper spells out three special cases of the timestamp-size lower bound:

* **Tree share graphs** — replica ``i`` needs at least ``2 · N_i · log m``
  bits, where ``N_i`` is its number of share-graph neighbours and ``m`` the
  per-replica update budget.
* **Cycle of n replicas** — every replica needs at least ``2 · n · log m``
  bits.
* **Full replication** (clique, identical register sets) — the timestamp
  space has at least ``m^R`` members, i.e. ``R · log m`` bits; classical
  vector timestamps meet this.

In the first two cases the paper's algorithm is tight: its timestamp has
exactly ``2·N_i`` (tree) or ``2·n`` (cycle) counters, each of ``log m`` bits.
These helpers compute both sides so the benchmarks can print
paper-vs-measured tables (experiment E6).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..core.registers import ReplicaId
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import timestamp_edges


def _check_m(max_updates: int) -> None:
    if max_updates < 2:
        raise ConfigurationError(
            "the closed forms are stated for at least 2 updates per replica "
            "(log m would otherwise be zero or negative)"
        )


def tree_lower_bound_bits(graph: ShareGraph, replica_id: ReplicaId,
                          max_updates: int) -> float:
    """``2 · N_i · log2(m)`` for a tree share graph."""
    _check_m(max_updates)
    if not graph.is_tree():
        raise ConfigurationError("tree_lower_bound_bits requires a tree share graph")
    return 2.0 * graph.degree(replica_id) * math.log2(max_updates)


def cycle_lower_bound_bits(num_replicas: int, max_updates: int) -> float:
    """``2 · n · log2(m)`` for a cycle of ``n`` replicas."""
    _check_m(max_updates)
    if num_replicas < 3:
        raise ConfigurationError("a cycle needs at least 3 replicas")
    return 2.0 * num_replicas * math.log2(max_updates)


def full_replication_space_size(num_replicas: int, max_updates: int) -> int:
    """``m^R``: the number of distinct timestamps needed under full replication."""
    _check_m(max_updates)
    if num_replicas < 1:
        raise ConfigurationError("need at least one replica")
    return max_updates ** num_replicas


def clique_lower_bound_bits(num_replicas: int, max_updates: int) -> float:
    """``R · log2(m)``: the full-replication bound expressed in bits."""
    return math.log2(full_replication_space_size(num_replicas, max_updates))


def algorithm_counters(graph: ShareGraph, replica_id: ReplicaId) -> int:
    """``|E_i|``: counters the paper's algorithm keeps at ``replica_id``."""
    return len(timestamp_edges(graph, replica_id))


def algorithm_bits(graph: ShareGraph, replica_id: ReplicaId,
                   max_updates: int) -> float:
    """Size in bits of the algorithm's timestamp with counters bounded by ``m``."""
    _check_m(max_updates)
    return algorithm_counters(graph, replica_id) * math.log2(max_updates)


def lower_bound_bits(graph: ShareGraph, replica_id: ReplicaId,
                     max_updates: int) -> Optional[float]:
    """The applicable closed-form lower bound for one replica, if any.

    Returns ``None`` when the share graph is neither a tree, a cycle, nor a
    single-register clique (the general case has no closed form — use
    :func:`repro.lower_bounds.conflict.timestamp_space_lower_bound`).
    """
    _check_m(max_updates)
    if graph.is_tree():
        return tree_lower_bound_bits(graph, replica_id, max_updates)
    if graph.is_cycle():
        return cycle_lower_bound_bits(graph.num_replicas, max_updates)
    if graph.is_clique() and graph.placement.is_fully_replicated():
        return clique_lower_bound_bits(graph.num_replicas, max_updates)
    return None


def tightness_table(graph: ShareGraph, max_updates: int) -> Dict[ReplicaId, Dict[str, float]]:
    """Per-replica comparison of the closed-form bound and the algorithm's size.

    Each row contains ``lower_bound_bits`` (``None`` encoded as ``nan`` when
    no closed form applies), ``algorithm_bits`` and ``algorithm_counters``.
    """
    table: Dict[ReplicaId, Dict[str, float]] = {}
    for rid in graph.replica_ids:
        bound = lower_bound_bits(graph, rid, max_updates)
        table[rid] = {
            "lower_bound_bits": float("nan") if bound is None else bound,
            "algorithm_bits": algorithm_bits(graph, rid, max_updates),
            "algorithm_counters": float(algorithm_counters(graph, rid)),
        }
    return table
