"""Lower bounds on timestamp size (Section 4 of the paper).

* :mod:`repro.lower_bounds.conflict` — the conflict relation between causal
  pasts (Definition 13), conflict graphs and the chromatic-number bound of
  Theorem 15, computable exactly on small instances.
* :mod:`repro.lower_bounds.closed_form` — the closed-form corollaries for
  trees, cycles and cliques/full replication, and the matching sizes achieved
  by the paper's algorithm.
"""

from .closed_form import (
    algorithm_bits,
    algorithm_counters,
    clique_lower_bound_bits,
    cycle_lower_bound_bits,
    full_replication_space_size,
    lower_bound_bits,
    tree_lower_bound_bits,
)
from .conflict import (
    ConflictGraph,
    canonical_causal_pasts,
    conflicts,
    restrict_to_edge,
    timestamp_space_lower_bound,
)

__all__ = [
    "ConflictGraph",
    "algorithm_bits",
    "algorithm_counters",
    "canonical_causal_pasts",
    "clique_lower_bound_bits",
    "conflicts",
    "cycle_lower_bound_bits",
    "full_replication_space_size",
    "lower_bound_bits",
    "restrict_to_edge",
    "timestamp_space_lower_bound",
    "tree_lower_bound_bits",
]
