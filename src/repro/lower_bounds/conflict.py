"""The conflict relation between causal pasts and Theorem 15's bound.

Section 4 restricts attention to algorithms whose timestamps are a function
of the replica's *causal past* (Constraint 1 — satisfied by the paper's
algorithm).  Two causal pasts of replica ``i`` **conflict** (Definition 13)
when

1. both contain at least one update on every share-graph edge, and
2. they differ (one strictly contains the other) on some edge ``e`` that is
   incident on ``i``, or lies on a simple loop
   ``(i, l_1, …, l_s, r_1, …, r_t, i)`` with ``e = e_{r_1 l_s}`` such that
   (a) the two pasts agree on every other "crossing" edge ``e_{r_p l_q}`` and
   (b) each past has, on every r-side edge ``e_{r_p r_{p+1}}``, an update not
   also counted on a crossing edge.

Lemma 14 shows conflicting pasts must receive distinct timestamps, so the
chromatic number of the conflict graph lower-bounds the number of distinct
timestamps replica ``i`` needs (Theorem 15).  Because a clique is a lower
bound on the chromatic number, this module reports clique-based bounds,
which are exact for the canonical families used in the paper's closed-form
corollaries (where the relevant pasts are pairwise conflicting).

Exhaustive enumeration of causal pasts is exponential; the canonical-family
generator below is intended for the small instances (a handful of replicas,
``m ≤ 3``) on which the bound is meant to be *demonstrated*, matching how the
paper itself uses it.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import ConfigurationError
from ..core.protocol import Update
from ..core.registers import ReplicaId
from ..core.share_graph import Edge, ShareGraph

#: A causal past, for the purposes of this module, is a frozen set of updates.
PastSet = FrozenSet[Update]


def restrict_to_edge(graph: ShareGraph, past: Iterable[Update], e: Edge) -> PastSet:
    """``S|e_jk``: updates in ``past`` issued by ``j`` on registers in ``X_jk``.

    For edges not in the share graph the restriction is empty by definition.
    """
    j, k = e
    if e not in graph.edges:
        return frozenset()
    shared = graph.shared_registers(j, k)
    return frozenset(u for u in past if u.issuer == j and u.register in shared)


def _loop_qualifies(
    graph: ShareGraph,
    observer: ReplicaId,
    e: Edge,
    cycle: Sequence[ReplicaId],
    split: int,
    s1: Iterable[Update],
    s2: Iterable[Update],
) -> bool:
    """Check clause 2's loop conditions for one oriented cycle and split point.

    The cycle ``(i, l_1, …, l_s, r_1, …, r_t)`` is encoded as the vertex tuple
    ``cycle`` starting at ``i`` with ``split`` giving ``s`` (so ``l`` vertices
    are ``cycle[1:split+1]`` and ``r`` vertices are ``cycle[split+1:]``); the
    distinguished edge is ``e = e_{r_1 l_s}``.
    """
    l_side = list(cycle[1:split + 1])
    r_side = list(cycle[split + 1:])
    if not l_side or not r_side:
        return False
    if (r_side[0], l_side[-1]) != e:
        return False
    r_extended = r_side + [observer]

    s1 = list(s1)
    s2 = list(s2)

    # (1) the two pasts agree on every crossing edge e_{r_p l_q} other than e.
    for rp in r_extended:
        for lq in l_side:
            crossing = (rp, lq)
            if crossing == e:
                continue
            if restrict_to_edge(graph, s1, crossing) != restrict_to_edge(
                graph, s2, crossing
            ):
                return False

    # (2) each past has an update on every r-side edge beyond the crossing edges.
    for p in range(len(r_side)):
        rp, rp_next = r_extended[p], r_extended[p + 1]
        forward = (rp, rp_next)
        for past in (s1, s2):
            on_forward = restrict_to_edge(graph, past, forward)
            crossing_union: Set[Update] = set()
            for lq in l_side:
                crossing_union |= restrict_to_edge(graph, past, (rp, lq))
            if not (on_forward - crossing_union):
                return False
    return True


def conflicts(
    graph: ShareGraph,
    observer: ReplicaId,
    past1: Iterable[Update],
    past2: Iterable[Update],
) -> bool:
    """Do two causal pasts of ``observer`` conflict (Definition 13)?"""
    s1 = frozenset(past1)
    s2 = frozenset(past2)

    # Condition 1: both pasts are non-empty on every share-graph edge.
    for e in graph.edges:
        if not restrict_to_edge(graph, s1, e) or not restrict_to_edge(graph, s2, e):
            return False

    # Condition 2: a strict containment on a qualifying edge, in either direction.
    for first, second in ((s1, s2), (s2, s1)):
        for e in graph.edges:
            r1 = restrict_to_edge(graph, first, e)
            r2 = restrict_to_edge(graph, second, e)
            if not (r1 < r2):
                continue
            j, k = e
            if observer in (j, k):
                return True
            # Loop case: e = e_{r_1 l_s} for some simple loop through observer.
            for cycle in graph.simple_cycles_through(observer):
                for split in range(1, len(cycle) - 1):
                    l_last = cycle[split]
                    r_first = cycle[split + 1]
                    if (r_first, l_last) != e:
                        continue
                    if _loop_qualifies(graph, observer, e, cycle, split, first, second):
                        return True
    return False


# ----------------------------------------------------------------------
# Canonical causal-past families and the conflict graph
# ----------------------------------------------------------------------

def canonical_causal_pasts(
    graph: ShareGraph,
    observer: ReplicaId,
    max_updates: int,
    edges: Optional[Iterable[Edge]] = None,
) -> List[PastSet]:
    """Generate the canonical family of causal pasts used for the bound.

    For every directed edge ``e_jk`` in ``edges`` (default: all share-graph
    edges) the family varies the number of updates issued by ``j`` on a fixed
    register of ``X_jk`` between 1 and ``max_updates``; updates are nested
    (the past with count ``c`` contains the one with count ``c-1``), matching
    the strict-containment shape Definition 13 needs.  Every share-graph edge
    *not* in ``edges`` carries exactly one update in every member of the
    family, so condition 1 of Definition 13 (non-empty on every edge) always
    holds.  The family has ``max_updates ^ |edges|`` members — keep the
    instance small.

    This construction assumes each chosen register is shared by exactly two
    replicas so that an update lies on exactly one undirected share-graph
    adjacency (true for the ring/tree/pairwise topologies of the closed-form
    corollaries); a :class:`~repro.core.errors.ConfigurationError` is raised
    otherwise.
    """
    edge_list = sorted(edges) if edges is not None else sorted(graph.edges)
    all_edges = sorted(graph.edges)
    chosen_register: Dict[Edge, str] = {}
    for e in all_edges:
        shared = sorted(graph.shared_registers(*e))
        if not shared:
            raise ConfigurationError(f"edge {e} has no shared register")
        register = shared[0]
        if len(graph.replicas_storing(register)) != 2:
            raise ConfigurationError(
                "canonical_causal_pasts requires registers shared by exactly "
                f"two replicas; {register!r} is shared by more"
            )
        chosen_register[e] = register

    fixed_edges = [e for e in all_edges if e not in set(edge_list)]
    pasts: List[PastSet] = []
    for counts in itertools.product(range(1, max_updates + 1), repeat=len(edge_list)):
        past: Set[Update] = set()
        for e, count in zip(edge_list, counts):
            j, _ = e
            register = chosen_register[e]
            for seq in range(1, count + 1):
                past.add(Update(issuer=j, seq=seq, register=register, value=seq))
        # Every other share-graph edge carries one fixed update so condition 1
        # of Definition 13 (both pasts non-empty on every edge) is satisfied.
        for e in fixed_edges:
            j, _ = e
            register = chosen_register[e]
            past.add(Update(issuer=j, seq=1, register=register, value=1))
        pasts.append(frozenset(past))
    return pasts


@dataclass
class ConflictGraph:
    """The conflict graph ``H_i`` over a family of causal pasts."""

    observer: ReplicaId
    pasts: List[PastSet]
    graph: nx.Graph = field(default_factory=nx.Graph)

    @classmethod
    def build(
        cls,
        share_graph: ShareGraph,
        observer: ReplicaId,
        pasts: Sequence[PastSet],
    ) -> "ConflictGraph":
        """Compute all pairwise conflicts among ``pasts``."""
        conflict_graph = nx.Graph()
        conflict_graph.add_nodes_from(range(len(pasts)))
        for a, b in itertools.combinations(range(len(pasts)), 2):
            if conflicts(share_graph, observer, pasts[a], pasts[b]):
                conflict_graph.add_edge(a, b)
        return cls(observer=observer, pasts=list(pasts), graph=conflict_graph)

    @property
    def num_pasts(self) -> int:
        """Number of causal pasts in the family."""
        return len(self.pasts)

    @property
    def num_conflicts(self) -> int:
        """Number of conflicting pairs."""
        return self.graph.number_of_edges()

    def is_complete(self) -> bool:
        """``True`` iff every pair of pasts conflicts (clique = whole family)."""
        n = self.num_pasts
        return self.num_conflicts == n * (n - 1) // 2

    def clique_lower_bound(self) -> int:
        """A clique-based lower bound on the chromatic number of ``H_i``.

        Exact when the conflict graph is complete (the closed-form cases);
        otherwise the size of the largest clique found.
        """
        if self.num_pasts == 0:
            return 0
        if self.is_complete():
            return self.num_pasts
        cliques = nx.find_cliques(self.graph)
        return max((len(c) for c in cliques), default=1)

    def chromatic_upper_bound(self) -> int:
        """A greedy-colouring upper bound on the chromatic number (sanity check)."""
        if self.num_pasts == 0:
            return 0
        colouring = nx.coloring.greedy_color(self.graph, strategy="largest_first")
        return max(colouring.values()) + 1


def timestamp_space_lower_bound(
    graph: ShareGraph,
    observer: ReplicaId,
    max_updates: int,
    edges: Optional[Iterable[Edge]] = None,
) -> Tuple[int, float]:
    """Theorem 15 instantiated on the canonical family.

    Returns ``(space_size, bits)`` where ``space_size`` is the clique lower
    bound on the number of distinct timestamps replica ``observer`` must use
    and ``bits = log2(space_size)``.
    """
    pasts = canonical_causal_pasts(graph, observer, max_updates, edges=edges)
    conflict_graph = ConflictGraph.build(graph, observer, pasts)
    size = conflict_graph.clique_lower_bound()
    bits = math.log2(size) if size > 0 else 0.0
    return size, bits
