"""repro — Partially replicated causally consistent shared memory.

A from-scratch Python implementation of the algorithm, lower bounds and
optimizations of *"Partially Replicated Causally Consistent Shared Memory:
Lower Bounds and An Algorithm"* (Xiang & Vaidya), together with a
discrete-event simulation substrate, baselines, and an evaluation harness
that regenerates every worked example, counterexample and bound in the
paper.

Quickstart
----------
>>> from repro import RegisterPlacement, ShareGraph, build_cluster
>>> placement = RegisterPlacement.from_dict(
...     {1: {"x"}, 2: {"x", "y"}, 3: {"y", "z"}, 4: {"z"}})
>>> graph = ShareGraph.from_placement(placement)
>>> cluster = build_cluster(graph, seed=7)
>>> cluster.write(2, "x", "hello")
>>> cluster.run_until_quiescent()
>>> cluster.read(1, "x")
'hello'

See ``examples/`` for complete, runnable scenarios and ``EXPERIMENTS.md`` for
the per-experiment reproduction index.
"""

from .core import (
    CausalReplica,
    ConsistencyChecker,
    ConsistencyReport,
    EdgeIndexedReplica,
    EdgeTimestamp,
    HappenedBefore,
    RegisterPlacement,
    ShareGraph,
    TimestampGraph,
    Update,
    UpdateMessage,
    VectorTimestamp,
    build_all_timestamp_graphs,
    check_execution,
    timestamp_edges,
)
from .sim import (
    BatchingConfig,
    Cluster,
    EventKernel,
    SimNetwork,
    SimulationHost,
    build_cluster,
    poisson_workload,
    run_open_loop,
    run_workload,
)
from .sim.topologies import (
    clique_placement,
    counterexample1_placement,
    counterexample2_placement,
    figure3_placement,
    figure5_placement,
    random_partial_placement,
    ring_placement,
    star_placement,
    tree_placement,
)
from .wire import MessageBatch, WireSizes

__version__ = "1.0.0"

__all__ = [
    "BatchingConfig",
    "CausalReplica",
    "Cluster",
    "ConsistencyChecker",
    "ConsistencyReport",
    "EdgeIndexedReplica",
    "EdgeTimestamp",
    "EventKernel",
    "SimulationHost",
    "HappenedBefore",
    "MessageBatch",
    "RegisterPlacement",
    "ShareGraph",
    "SimNetwork",
    "TimestampGraph",
    "Update",
    "UpdateMessage",
    "VectorTimestamp",
    "WireSizes",
    "__version__",
    "build_all_timestamp_graphs",
    "build_cluster",
    "check_execution",
    "clique_placement",
    "counterexample1_placement",
    "counterexample2_placement",
    "figure3_placement",
    "figure5_placement",
    "poisson_workload",
    "random_partial_placement",
    "ring_placement",
    "run_open_loop",
    "run_workload",
    "star_placement",
    "timestamp_edges",
    "tree_placement",
]
