"""Dummy registers: trading messages and false dependencies for metadata (Appendix D).

A *dummy* copy of register ``x`` at replica ``j`` is a copy no client will
ever operate on: replica ``j`` still receives (metadata-only) update messages
for ``x`` and folds them into its timestamp, but never stores the value.
Adding dummies changes the share graph — in the limit, giving every replica a
dummy copy of every register emulates full replication, whose (compressed)
timestamps are the classical length-``R`` vectors — at the cost of

* extra update messages (each write now also notifies the dummy holders), and
* false dependencies (a replica's later updates become causally ordered after
  dummy updates it never needed).

This module provides the placement transformations, a runnable
:class:`DummyRegisterReplica` so the trade-off can be *measured* in simulation
(experiment E9), and a static report of the expected costs/savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.protocol import CausalReplica
from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import build_all_timestamp_graphs
from ..sim.cluster import ReplicaFactory
from .compression import compressed_counters


@dataclass(frozen=True)
class DummyAssignment:
    """Which replicas hold which registers only as dummies.

    Attributes
    ----------
    original:
        The real register placement.
    dummies:
        Mapping from replica id to the registers it holds as dummy copies
        (disjoint from the replica's real ``X_i``).
    """

    original: RegisterPlacement
    dummies: Mapping[ReplicaId, FrozenSet[Register]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: Dict[ReplicaId, FrozenSet[Register]] = {}
        for rid, regs in dict(self.dummies).items():
            real = self.original.registers_at(rid)
            clean[rid] = frozenset(regs) - real
        object.__setattr__(self, "dummies", clean)

    def augmented_placement(self) -> RegisterPlacement:
        """The placement after adding the dummy copies (dummies look real)."""
        return self.original.with_additional_registers(
            {rid: regs for rid, regs in self.dummies.items()}
        )

    def is_dummy(self, replica_id: ReplicaId, register: Register) -> bool:
        """``True`` iff ``register`` is only a dummy at ``replica_id``."""
        return register in self.dummies.get(replica_id, frozenset())

    def total_dummies(self) -> int:
        """Total number of dummy copies introduced."""
        return sum(len(regs) for regs in self.dummies.values())


def full_replication_dummies(placement: RegisterPlacement) -> DummyAssignment:
    """Give every replica a dummy copy of every register it does not store."""
    all_registers = placement.registers
    dummies = {
        rid: frozenset(all_registers - placement.registers_at(rid))
        for rid in placement.replica_ids
    }
    return DummyAssignment(original=placement, dummies=dummies)


def loop_cover_dummies(placement: RegisterPlacement) -> DummyAssignment:
    """The paper's selective scheme: dummy only the registers on loops through each replica.

    For each replica ``j`` and each remote edge ``e_ab`` of ``j``'s timestamp
    graph (an edge witnessed by some ``(j, e_ab)``-loop), give ``j`` a dummy
    copy of one register of ``X_ab``.  After the transformation every update
    that previously had to be tracked transitively reaches ``j`` directly, so
    ``j``'s timestamp graph in the *augmented* share graph needs only
    neighbour counters.
    """
    graph = ShareGraph.from_placement(placement)
    tgraphs = build_all_timestamp_graphs(graph)
    dummies: Dict[ReplicaId, Set[Register]] = {rid: set() for rid in placement.replica_ids}
    for rid, tgraph in tgraphs.items():
        for (a, b) in sorted(tgraph.remote_edges()):
            register = sorted(graph.shared_registers(a, b))[0]
            if not placement.stores_register(rid, register):
                dummies[rid].add(register)
    return DummyAssignment(
        original=placement,
        dummies={rid: frozenset(regs) for rid, regs in dummies.items()},
    )


class DummyRegisterReplica(EdgeIndexedReplica):
    """The edge-indexed algorithm running over a dummy-augmented share graph.

    The replica behaves exactly like :class:`EdgeIndexedReplica` on the
    augmented share graph, except that messages towards replicas holding the
    written register only as a dummy are flagged metadata-only, and applying
    a dummy update never touches the local store.
    """

    def __init__(
        self,
        assignment: DummyAssignment,
        augmented_graph: ShareGraph,
        replica_id: ReplicaId,
    ) -> None:
        super().__init__(augmented_graph, replica_id)
        self.assignment = assignment

    def payload_for(self, register: Register, destination: ReplicaId) -> bool:
        """Dummy holders receive metadata-only messages."""
        return not self.assignment.is_dummy(destination, register)


def dummy_register_factory(assignment: DummyAssignment) -> ReplicaFactory:
    """Build a :class:`~repro.sim.cluster.Cluster` factory for a dummy assignment.

    The returned factory ignores the share graph handed to it by the cluster
    and uses the augmented share graph instead, so build the cluster with the
    *augmented* graph::

        assignment = full_replication_dummies(placement)
        augmented = ShareGraph.from_placement(assignment.augmented_placement())
        cluster = Cluster(augmented, replica_factory=dummy_register_factory(assignment))

    Note that consistency should then be checked against the *original*
    share graph (dummy copies carry no safety or liveness obligations).
    """
    augmented_graph = ShareGraph.from_placement(assignment.augmented_placement())

    def factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
        return DummyRegisterReplica(assignment, augmented_graph, replica_id)

    return factory


@dataclass(frozen=True)
class DummyEmulationReport:
    """Static costs and savings of a dummy assignment."""

    counters_before: Mapping[ReplicaId, int]
    counters_after: Mapping[ReplicaId, int]
    compressed_after: Mapping[ReplicaId, int]
    extra_messages_per_register: Mapping[Register, int]
    total_dummies: int

    @property
    def mean_counters_before(self) -> float:
        """Mean per-replica counters before adding dummies."""
        values = list(self.counters_before.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_counters_after(self) -> float:
        """Mean per-replica counters after adding dummies (uncompressed)."""
        values = list(self.counters_after.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_compressed_after(self) -> float:
        """Mean per-replica counters after adding dummies and compressing."""
        values = list(self.compressed_after.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def total_extra_messages_per_round(self) -> int:
        """Extra messages if every register were written once."""
        return sum(self.extra_messages_per_register.values())


def dummy_emulation_report(assignment: DummyAssignment) -> DummyEmulationReport:
    """Quantify the metadata/message trade-off of a dummy assignment.

    * counters before: ``|E_i|`` on the original share graph;
    * counters after: ``|E_i|`` on the augmented share graph (uncompressed)
      and the best-case compressed length;
    * extra messages: for each register, the number of dummy holders (each
      write now sends that many additional metadata-only messages).
    """
    original_graph = ShareGraph.from_placement(assignment.original)
    augmented_graph = ShareGraph.from_placement(assignment.augmented_placement())
    before = {
        rid: tg.num_counters
        for rid, tg in build_all_timestamp_graphs(original_graph).items()
    }
    after_graphs = build_all_timestamp_graphs(augmented_graph)
    after = {rid: tg.num_counters for rid, tg in after_graphs.items()}
    compressed = {
        rid: compressed_counters(augmented_graph, tg)
        for rid, tg in after_graphs.items()
    }
    extra: Dict[Register, int] = {}
    for register in assignment.original.registers:
        holders = sum(
            1
            for rid in assignment.original.replica_ids
            if assignment.is_dummy(rid, register)
        )
        extra[register] = holders
    return DummyEmulationReport(
        counters_before=before,
        counters_after=after,
        compressed_after=compressed,
        extra_messages_per_register=extra,
        total_dummies=assignment.total_dummies(),
    )
