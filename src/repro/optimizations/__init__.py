"""Practical timestamp-size reductions (Section 5 and Appendix D).

Four mechanisms, each trading something for smaller metadata:

* :mod:`repro.optimizations.compression` — exploit linear dependence between
  edge counters (no semantic cost; pure encoding win);
* :mod:`repro.optimizations.dummy_registers` — dummy register copies that
  shrink the timestamp at the cost of extra (metadata-only) messages and
  false dependencies, up to full-replication emulation;
* :mod:`repro.optimizations.virtual_registers` — restrict inter-replica
  communication (e.g. break a ring into a path, or route through a hub) via
  virtual registers, trading propagation hops for metadata;
* :mod:`repro.optimizations.bounded_loops` — track only loops up to a length
  bound, which is safe under loose synchrony assumptions and sacrifices
  causality otherwise.
"""

from .bounded_loops import (
    bounded_factory,
    bounded_metadata_savings,
    bounded_timestamp_graphs,
)
from .compression import (
    CompressionReport,
    compress_timestamp,
    compressed_counters,
    compression_report,
    independent_edge_count,
)
from .dummy_registers import (
    DummyAssignment,
    DummyRegisterReplica,
    dummy_emulation_report,
    dummy_register_factory,
    full_replication_dummies,
    loop_cover_dummies,
)
from .virtual_registers import (
    RestrictionAnalysis,
    analyze_ring_breaking,
    analyze_star_restriction,
    break_ring_placement,
)

__all__ = [
    "CompressionReport",
    "DummyAssignment",
    "DummyRegisterReplica",
    "RestrictionAnalysis",
    "analyze_ring_breaking",
    "analyze_star_restriction",
    "bounded_factory",
    "bounded_metadata_savings",
    "bounded_timestamp_graphs",
    "break_ring_placement",
    "compress_timestamp",
    "compressed_counters",
    "compression_report",
    "dummy_emulation_report",
    "dummy_register_factory",
    "full_replication_dummies",
    "independent_edge_count",
    "loop_cover_dummies",
]
