"""Bounded-loop-length tracking: sacrificing causality for metadata (Appendix D).

If single-hop messages are guaranteed to be delivered faster than messages
propagated over ``l`` hops (a "loosely synchronous" system), a replica can
safely drop the counters of edges whose only witnessing ``(i, e_jk)``-loops
are longer than ``l + 1`` vertices: by the time a long dependency chain
reaches the replica, the direct update it depends on has already arrived.

When the timing assumption does *not* hold, the dropped counters translate
into genuine causal-consistency violations; experiment E11 demonstrates both
regimes by running the bounded protocol under a hop-proportional delay model
(consistent) and under adversarial delays (violations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.protocol import CausalReplica
from ..core.registers import ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import TimestampGraph, build_all_timestamp_graphs
from ..sim.cluster import ReplicaFactory


def bounded_timestamp_graphs(
    graph: ShareGraph, max_loop_length: int
) -> Dict[ReplicaId, TimestampGraph]:
    """Timestamp graphs tracking only loops of at most ``max_loop_length`` vertices."""
    return build_all_timestamp_graphs(graph, max_loop_length=max_loop_length)


def bounded_factory(max_loop_length: int) -> ReplicaFactory:
    """A cluster factory for the bounded-loop-length edge-indexed protocol."""

    def factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
        tgraph = TimestampGraph.build(
            graph, replica_id, max_loop_length=max_loop_length
        )
        return EdgeIndexedReplica(graph, replica_id, timestamp_graph=tgraph)

    return factory


@dataclass(frozen=True)
class BoundedSavings:
    """Counters kept by the exact and the bounded timestamp graphs."""

    max_loop_length: int
    exact: Mapping[ReplicaId, int]
    bounded: Mapping[ReplicaId, int]

    @property
    def total_exact(self) -> int:
        """System-wide counters under exact tracking."""
        return sum(self.exact.values())

    @property
    def total_bounded(self) -> int:
        """System-wide counters under bounded tracking."""
        return sum(self.bounded.values())

    @property
    def counters_saved(self) -> int:
        """Counters dropped by the bound."""
        return self.total_exact - self.total_bounded


def bounded_metadata_savings(
    graph: ShareGraph, max_loop_length: int
) -> BoundedSavings:
    """Compare exact and bounded timestamp-graph sizes on one share graph."""
    exact = {
        rid: tg.num_counters for rid, tg in build_all_timestamp_graphs(graph).items()
    }
    bounded = {
        rid: tg.num_counters
        for rid, tg in bounded_timestamp_graphs(graph, max_loop_length).items()
    }
    return BoundedSavings(
        max_loop_length=max_loop_length, exact=exact, bounded=bounded
    )
