"""Timestamp compression by exploiting dependent edge counters (Appendix D).

The counters of replica ``i``'s timestamp are not independent: for a fixed
issuer ``j``, the count on edge ``e_jk`` is the number of updates ``j``
issued on registers in ``X_jk``, so it is a fixed 0/1 linear combination of
``j``'s per-register update counts.  If one tracked edge's register set is the
union of others' (the paper's ``X_j4 = {x, y, z}`` example), its counter is
redundant.

The best-case compressed size for issuer ``j`` is therefore the *rank* of the
incidence matrix between ``j``'s tracked outgoing edges and the registers
labelling them — the paper's ``I(E_i, j)`` (the maximum number of independent
outgoing edges).  Summing over issuers gives the compressed timestamp length
``I(E_i) = Σ_j I(E_i, j)``, against the uncompressed ``|E_i|``.

Compression is exact only when the counters are *consistent* (the replica has
seen matching information on all of them); the paper notes that stale
counters may temporarily prevent compression, so these numbers are best-case
— which is how experiment E8 reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.registers import Register, ReplicaId
from ..core.share_graph import Edge, ShareGraph
from ..core.timestamp_graph import TimestampGraph, build_all_timestamp_graphs
from ..core.timestamps import EdgeTimestamp


def _incidence_matrix(
    graph: ShareGraph, edges: Sequence[Edge]
) -> Tuple[np.ndarray, List[Register]]:
    """0/1 matrix whose rows are edges and columns the registers labelling them."""
    registers = sorted({r for e in edges for r in graph.edge_registers(e)})
    matrix = np.zeros((len(edges), len(registers)), dtype=float)
    column = {register: idx for idx, register in enumerate(registers)}
    for row, e in enumerate(edges):
        for register in graph.edge_registers(e):
            matrix[row, column[register]] = 1.0
    return matrix, registers


def independent_edge_count(
    graph: ShareGraph, tgraph: TimestampGraph, issuer: ReplicaId
) -> int:
    """``I(E_i, j)``: independent tracked outgoing edges of ``issuer`` in ``E_i``."""
    edges = sorted(tgraph.outgoing_edges_of(issuer))
    if not edges:
        return 0
    matrix, _ = _incidence_matrix(graph, edges)
    return int(np.linalg.matrix_rank(matrix))


def compressed_counters(graph: ShareGraph, tgraph: TimestampGraph) -> int:
    """``I(E_i) = Σ_j I(E_i, j)``: best-case compressed timestamp length."""
    issuers = {e[0] for e in tgraph.edges}
    return sum(independent_edge_count(graph, tgraph, j) for j in sorted(issuers))


@dataclass(frozen=True)
class CompressionReport:
    """Per-replica uncompressed vs. compressed timestamp lengths."""

    uncompressed: Mapping[ReplicaId, int]
    compressed: Mapping[ReplicaId, int]

    def savings(self, replica_id: ReplicaId) -> int:
        """Counters saved at one replica."""
        return self.uncompressed[replica_id] - self.compressed[replica_id]

    @property
    def total_uncompressed(self) -> int:
        """System-wide uncompressed counters."""
        return sum(self.uncompressed.values())

    @property
    def total_compressed(self) -> int:
        """System-wide best-case compressed counters."""
        return sum(self.compressed.values())

    @property
    def compression_ratio(self) -> float:
        """``compressed / uncompressed`` (1.0 = nothing saved)."""
        if self.total_uncompressed == 0:
            return 1.0
        return self.total_compressed / self.total_uncompressed

    def rows(self) -> List[Tuple[ReplicaId, int, int]]:
        """``(replica, uncompressed, compressed)`` rows, sorted by replica."""
        return [
            (rid, self.uncompressed[rid], self.compressed[rid])
            for rid in sorted(self.uncompressed)
        ]


def compression_report(graph: ShareGraph) -> CompressionReport:
    """Compute the compression table for every replica of a share graph."""
    tgraphs = build_all_timestamp_graphs(graph)
    uncompressed = {rid: tg.num_counters for rid, tg in tgraphs.items()}
    compressed = {
        rid: compressed_counters(graph, tg) for rid, tg in tgraphs.items()
    }
    return CompressionReport(uncompressed=uncompressed, compressed=compressed)


def compress_timestamp(
    graph: ShareGraph,
    tgraph: TimestampGraph,
    timestamp: EdgeTimestamp,
) -> Tuple[Dict[Edge, int], Dict[Edge, Tuple[Edge, ...]]]:
    """Split a concrete timestamp into kept counters and reconstructible ones.

    Returns ``(kept, derived)`` where ``kept`` maps a maximal independent set
    of edges (per issuer, chosen greedily in sorted order) to their counter
    values, and ``derived`` maps every dropped edge to the tuple of kept
    edges whose register sets cover it.  When the dropped edge's counter is
    consistent it can be recomputed from per-register counts implied by the
    kept ones; when it is not (stale counters), the paper notes compression
    must be skipped — callers can compare against ``timestamp`` to detect
    that.
    """
    kept: Dict[Edge, int] = {}
    derived: Dict[Edge, Tuple[Edge, ...]] = {}
    issuers = sorted({e[0] for e in tgraph.edges})
    for issuer in issuers:
        edges = sorted(tgraph.outgoing_edges_of(issuer))
        if not edges:
            continue
        matrix, _ = _incidence_matrix(graph, edges)
        chosen: List[int] = []
        chosen_rows: List[np.ndarray] = []
        current_rank = 0
        for row_index in range(len(edges)):
            candidate = chosen_rows + [matrix[row_index]]
            rank = int(np.linalg.matrix_rank(np.vstack(candidate)))
            if rank > current_rank:
                chosen.append(row_index)
                chosen_rows.append(matrix[row_index])
                current_rank = rank
        chosen_edges = [edges[r] for r in chosen]
        for e in chosen_edges:
            kept[e] = timestamp.get(e)
        for row_index, e in enumerate(edges):
            if e in kept:
                continue
            derived[e] = tuple(chosen_edges)
    return kept, derived
