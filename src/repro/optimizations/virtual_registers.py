"""Restricting inter-replica communication with virtual registers (Appendix D).

The paper observes (Figure 13) that "breaking" a cycle in the share graph —
forbidding direct communication between two adjacent replicas and instead
piggybacking their shared register's updates on a chain of *virtual*
registers along the remaining path — removes the loops from the share graph
and therefore shrinks every replica's timestamp from the cycle size ``2n``
down to its local degree, at the price of longer propagation paths (and, in
general, false dependencies introduced by the piggybacking).

This module provides the placement transformations and a static analysis of
the trade-off: counters saved per replica versus worst-case propagation hops
and extra relay messages per update on the broken edge.  (Experiment E10
reports these numbers; the latency side can also be observed dynamically by
simulating the path topology with per-channel delays.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.registers import RegisterPlacement, ReplicaId
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import build_all_timestamp_graphs
from ..sim.topologies import path_placement, ring_placement, star_placement


def break_ring_placement(num_replicas: int) -> Tuple[RegisterPlacement, RegisterPlacement]:
    """The Figure-13 transformation: an ``n``-ring broken into a path.

    Returns ``(ring, path)`` where ``ring`` is the original placement (each
    adjacent pair shares one register, including the pair ``(n, 1)``) and
    ``path`` is the broken placement in which replicas ``1`` and ``n`` no
    longer share their register directly — its updates are piggybacked along
    the path via virtual registers, which coincide with the registers the
    path already shares, so the broken share graph is exactly the path.
    """
    if num_replicas < 3:
        raise ConfigurationError("ring breaking needs at least 3 replicas")
    return ring_placement(num_replicas), path_placement(num_replicas)


@dataclass(frozen=True)
class RestrictionAnalysis:
    """Static trade-off of a communication-restriction transformation."""

    name: str
    counters_before: Mapping[ReplicaId, int]
    counters_after: Mapping[ReplicaId, int]
    max_hops_before: int
    max_hops_after: int
    extra_relay_messages_per_update: int

    @property
    def total_counters_before(self) -> int:
        """System-wide counters before the restriction."""
        return sum(self.counters_before.values())

    @property
    def total_counters_after(self) -> int:
        """System-wide counters after the restriction."""
        return sum(self.counters_after.values())

    @property
    def counters_saved(self) -> int:
        """Total counters saved across the system."""
        return self.total_counters_before - self.total_counters_after

    @property
    def hop_inflation(self) -> float:
        """Worst-case propagation-path inflation factor."""
        if self.max_hops_before == 0:
            return 1.0
        return self.max_hops_after / self.max_hops_before

    def rows(self) -> List[Tuple[ReplicaId, int, int]]:
        """``(replica, counters before, counters after)`` rows."""
        return [
            (rid, self.counters_before[rid], self.counters_after[rid])
            for rid in sorted(self.counters_before)
        ]


def _counters(placement: RegisterPlacement) -> Dict[ReplicaId, int]:
    graph = ShareGraph.from_placement(placement)
    return {
        rid: tg.num_counters for rid, tg in build_all_timestamp_graphs(graph).items()
    }


def analyze_ring_breaking(num_replicas: int) -> RestrictionAnalysis:
    """Quantify breaking an ``n``-ring into a path (experiment E10).

    * Before: every replica tracks ``2n`` counters; any update reaches its
      co-owner in one hop.
    * After: replica ``i`` tracks only its incident edges (2 or 4 counters);
      updates to the broken register travel ``n − 1`` hops and generate
      ``n − 2`` extra relay messages.
    """
    ring, path = break_ring_placement(num_replicas)
    return RestrictionAnalysis(
        name=f"break ring of {num_replicas}",
        counters_before=_counters(ring),
        counters_after=_counters(path),
        max_hops_before=1,
        max_hops_after=num_replicas - 1,
        extra_relay_messages_per_update=num_replicas - 2,
    )


def analyze_star_restriction(num_replicas: int) -> RestrictionAnalysis:
    """The extreme restriction: route every update through a single hub replica.

    Starting from an ``n``-ring, all communication is funnelled through
    replica 1 (a star share graph over virtual registers).  Leaf replicas
    then track only 2 counters, while any update between two leaves costs an
    extra relay and 2 hops.
    """
    if num_replicas < 3:
        raise ConfigurationError("the star restriction needs at least 3 replicas")
    ring = ring_placement(num_replicas)
    star = star_placement(num_replicas - 1)
    return RestrictionAnalysis(
        name=f"star restriction of {num_replicas}",
        counters_before=_counters(ring),
        counters_after=_counters(star),
        max_hops_before=1,
        max_hops_after=2,
        extra_relay_messages_per_update=1,
    )
