"""Per-channel delta-encoding state: the sender/receiver halves of a stream.

Delta timestamp frames (:mod:`repro.wire.codecs`) are defined against *the
previous timestamp shipped on the same (sender, destination) channel* — the
state a real deployment would keep per TCP connection.  The encoder lives at
the sending transport; the decoder mirrors it at the receiver, consuming
frames in stream order.

The pairing contract is exactly a FIFO byte stream's: every frame the
encoder produces for a channel must be decoded in that order.  The batching
transport satisfies it by construction — batches are encoded at flush time
in send order, and the wire-format tests replay the same stream through a
:class:`ChannelDeltaDecoder` to prove ``decode ∘ encode = id``.

A channel with no prior traffic (or one explicitly :meth:`reset`, e.g. after
a crash loses the peer's stream state) falls back to full frames
automatically — ``prev`` is simply absent.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core.protocol import UpdateMessage
from ..core.registers import ReplicaId
from .codecs import TimestampCodec
from .frames import WireSizes, decode_message_frame, encode_message_frame_into

Channel = Tuple[ReplicaId, ReplicaId]


class ChannelDeltaEncoder:
    """Sender-side per-channel state for timestamp delta frames."""

    def __init__(self) -> None:
        self._last: Dict[Channel, Any] = {}
        #: Reusable output buffer for the standalone :meth:`encode_message`
        #: form — cleared, not reallocated, per call, so repeated encodes
        #: keep one grown-to-size backing allocation.
        self._scratch = bytearray()
        #: Optional frame observer ``(channel, sizes) -> None``; ``None``
        #: by default so untraced encoding pays one ``is not None`` check.
        #: The observability layer uses it to count delta-vs-full frames
        #: live (:func:`repro.obs.publish.attach_encoder_observer`).
        self.on_frame: Optional[Any] = None

    def encode_message_into(
        self,
        out: bytearray,
        message: UpdateMessage,
        codec: Optional[TimestampCodec] = None,
    ) -> WireSizes:
        """Append one message frame to ``out``, delta-encoding against
        channel state (which the call advances)."""
        channel = (message.sender, message.destination)
        prev = self._last.get(channel)
        sizes = encode_message_frame_into(out, message, codec=codec, prev=prev)
        self._last[channel] = message.metadata
        if self.on_frame is not None:
            self.on_frame(channel, sizes)
        return sizes

    def encode_message(
        self, message: UpdateMessage, codec: Optional[TimestampCodec] = None
    ) -> Tuple[bytes, WireSizes]:
        """Encode one message frame, delta-encoding against channel state."""
        scratch = self._scratch
        del scratch[:]
        sizes = self.encode_message_into(scratch, message, codec=codec)
        return bytes(scratch), sizes

    def reset(self, channel: Optional[Channel] = None) -> None:
        """Forget channel state (one channel, or all): next frame goes full."""
        if channel is None:
            self._last.clear()
        else:
            self._last.pop(channel, None)

    def peek(self, channel: Channel) -> Optional[Any]:
        """The last timestamp shipped on ``channel`` (for tests/inspection)."""
        return self._last.get(channel)


class ChannelDeltaDecoder:
    """Receiver-side mirror of :class:`ChannelDeltaEncoder`.

    Must consume every frame of a channel in encode order (the FIFO-stream
    contract above); the decoded timestamp becomes the state the next delta
    frame on that channel is applied to.
    """

    def __init__(self) -> None:
        self._last: Dict[Channel, Any] = {}

    def decode_message(
        self,
        data: bytes,
        offset: int,
        sender: ReplicaId,
        destination: ReplicaId,
    ) -> Tuple[UpdateMessage, int]:
        """Decode one message frame, updating the channel state."""
        channel = (sender, destination)
        message, offset = decode_message_frame(
            data, offset, sender, destination, prev=self._last.get(channel)
        )
        self._last[channel] = message.metadata
        return message, offset

    def reset(self, channel: Optional[Channel] = None) -> None:
        """Forget channel state (one channel, or all)."""
        if channel is None:
            self._last.clear()
        else:
            self._last.pop(channel, None)
