"""The wire-format layer: binary codecs, delta frames and batch envelopes.

This package turns the library's in-memory protocol vocabulary
(:class:`~repro.core.protocol.UpdateMessage` and the timestamp families of
:mod:`repro.core.timestamps`) into measured bytes-on-wire:

* :mod:`repro.wire.primitives` — varints, zigzag, atoms;
* :mod:`repro.wire.codecs` — one codec per timestamp family
  (edge / vector / matrix / hoop), each with full and delta frames;
* :mod:`repro.wire.frames` — message frames with a header/timestamp/payload
  byte breakdown (:class:`~repro.wire.frames.WireSizes`);
* :mod:`repro.wire.channel` — the per-channel delta encoder/decoder pair;
* :mod:`repro.wire.batch` — the :class:`~repro.wire.batch.MessageBatch`
  envelope the batching transport ships as a single kernel event;
* :mod:`repro.wire.membership` — the membership-change codec announcing a
  committed reconfiguration (:mod:`repro.sim.reconfig`) to the new epoch's
  members.

Every message frame carries its configuration epoch in the header, so a
receiver rejects cross-epoch frames cleanly instead of decoding timestamp
metadata whose index structure belongs to a retired configuration.

The simulation transport (:mod:`repro.sim.engine`) uses these to keep
byte-accurate :class:`~repro.sim.engine.NetworkStats`; experiment E16
(:func:`repro.analysis.experiments.exp_wire_overhead`) compares the measured
timestamp bytes against the paper's closed-form lower bounds.
"""

from .batch import MessageBatch, decode_batch, encode_batch
from .channel import ChannelDeltaDecoder, ChannelDeltaEncoder
from .codecs import (
    CODEC_BY_TAG,
    EDGE_CODEC,
    HOOP_CODEC,
    MATRIX_CODEC,
    RECONFIG_CODEC,
    VECTOR_CODEC,
    EdgeTimestampCodec,
    HoopTimestampCodec,
    MatrixTimestampCodec,
    ReconfigCodec,
    TimestampCodec,
    TimestampFrame,
    VectorTimestampCodec,
    codec_for,
    decode_timestamp_frame,
    decode_value,
    encode_timestamp_frame,
    encode_value,
    register_codec_type,
)
from .frames import (
    WIRE_VERSION,
    WireSizes,
    decode_message,
    decode_message_frame,
    encode_message,
    encode_message_frame,
    message_wire_sizes,
)
from .membership import (
    MEMBERSHIP_VERSION,
    MembershipChange,
    decode_membership_change,
    encode_membership_change,
)
from .primitives import (
    WireFormatError,
    decode_atom,
    decode_bytes,
    decode_svarint,
    decode_uvarint,
    encode_atom,
    encode_bytes,
    encode_svarint,
    encode_uvarint,
    uvarint_size,
)

__all__ = [
    "CODEC_BY_TAG",
    "ChannelDeltaDecoder",
    "ChannelDeltaEncoder",
    "EDGE_CODEC",
    "EdgeTimestampCodec",
    "HOOP_CODEC",
    "HoopTimestampCodec",
    "MATRIX_CODEC",
    "MEMBERSHIP_VERSION",
    "MatrixTimestampCodec",
    "MembershipChange",
    "MessageBatch",
    "RECONFIG_CODEC",
    "ReconfigCodec",
    "TimestampCodec",
    "TimestampFrame",
    "VECTOR_CODEC",
    "VectorTimestampCodec",
    "WIRE_VERSION",
    "WireFormatError",
    "WireSizes",
    "codec_for",
    "decode_atom",
    "decode_batch",
    "decode_bytes",
    "decode_membership_change",
    "decode_message",
    "decode_message_frame",
    "decode_svarint",
    "decode_timestamp_frame",
    "decode_uvarint",
    "decode_value",
    "encode_atom",
    "encode_batch",
    "encode_bytes",
    "encode_membership_change",
    "encode_message",
    "encode_message_frame",
    "encode_svarint",
    "encode_timestamp_frame",
    "encode_uvarint",
    "encode_value",
    "message_wire_sizes",
    "register_codec_type",
    "uvarint_size",
]
