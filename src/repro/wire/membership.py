"""The membership-change codec: one configuration change as bytes.

When the reconfiguration coordinator (:mod:`repro.sim.reconfig`) commits a
new configuration, it announces the change to every member of the new
epoch.  This module defines the announcement's wire format::

    [version: 1 byte][uvarint epoch]
    [uvarint join count]   [atom rid][uvarint reg count][atom register]*  per join
    [uvarint leave count]  [atom rid]*
    [uvarint grant count]  [atom rid][uvarint reg count][atom register]*  per grant
    [uvarint revoke count] [atom rid][uvarint reg count][atom register]*  per revoke

*Joins* add a replica with an initial register set; *leaves* remove one;
*grants*/*revokes* add or drop registers at an existing replica (the way
share-graph edges appear and disappear).  The simulator uses the codec for
byte-accurate accounting of the coordinator's announcement broadcast and to
prove the change round-trips; a real deployment would ship exactly these
bytes.

A frame also certifies which epoch it creates, so a member can reject an
announcement that does not extend its current epoch by exactly one — the
membership-layer analogue of the per-message epoch tag in
:mod:`repro.wire.frames`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..core.registers import Register, ReplicaId
from .primitives import (
    WireFormatError,
    decode_atom,
    decode_uvarint,
    encode_atom,
    encode_uvarint,
)

#: Version byte leading every membership-change frame.
MEMBERSHIP_VERSION = 1


@dataclass(frozen=True)
class MembershipChange:
    """One committed configuration change, as announced to the members.

    Attributes
    ----------
    epoch:
        The epoch this change creates (the old epoch plus one).
    joins:
        ``{replica id: initial register set}`` of joining replicas.
    leaves:
        Replica ids leaving the configuration.
    grants:
        ``{replica id: registers}`` newly stored at existing replicas.
    revokes:
        ``{replica id: registers}`` dropped from existing replicas.
    """

    epoch: int
    joins: Dict[ReplicaId, FrozenSet[Register]] = field(default_factory=dict)
    leaves: Tuple[ReplicaId, ...] = ()
    grants: Dict[ReplicaId, FrozenSet[Register]] = field(default_factory=dict)
    revokes: Dict[ReplicaId, FrozenSet[Register]] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-liner for timelines and tables."""
        parts: List[str] = []
        for rid in sorted(self.joins):
            parts.append(f"+{rid}")
        for rid in self.leaves:
            parts.append(f"-{rid}")
        for rid in sorted(self.grants):
            parts.append(f"{rid}+{{{','.join(sorted(self.grants[rid]))}}}")
        for rid in sorted(self.revokes):
            parts.append(f"{rid}-{{{','.join(sorted(self.revokes[rid]))}}}")
        return f"epoch {self.epoch}: " + (" ".join(parts) or "no-op")


def _encode_register_map(
    mapping: Dict[ReplicaId, FrozenSet[Register]]
) -> bytes:
    out = bytearray(encode_uvarint(len(mapping)))
    for rid in sorted(mapping):
        out += encode_atom(rid)
        registers = sorted(mapping[rid])
        out += encode_uvarint(len(registers))
        for register in registers:
            out += encode_atom(register)
    return bytes(out)


def _decode_register_map(
    data: bytes, offset: int
) -> Tuple[Dict[ReplicaId, FrozenSet[Register]], int]:
    count, offset = decode_uvarint(data, offset)
    mapping: Dict[ReplicaId, FrozenSet[Register]] = {}
    for _ in range(count):
        rid, offset = decode_atom(data, offset)
        reg_count, offset = decode_uvarint(data, offset)
        registers = []
        for _ in range(reg_count):
            register, offset = decode_atom(data, offset)
            registers.append(register)
        mapping[rid] = frozenset(registers)
    return mapping, offset


def encode_membership_change(change: MembershipChange) -> bytes:
    """Encode one membership change as a standalone frame."""
    out = bytearray((MEMBERSHIP_VERSION,))
    out += encode_uvarint(change.epoch)
    out += _encode_register_map(change.joins)
    out += encode_uvarint(len(change.leaves))
    for rid in sorted(change.leaves):
        out += encode_atom(rid)
    out += _encode_register_map(change.grants)
    out += _encode_register_map(change.revokes)
    return bytes(out)


def decode_membership_change(
    data: bytes, offset: int = 0
) -> Tuple[MembershipChange, int]:
    """Decode a membership-change frame; returns ``(change, new offset)``."""
    if offset >= len(data) or data[offset] != MEMBERSHIP_VERSION:
        raise WireFormatError("bad or missing membership frame version byte")
    offset += 1
    epoch, offset = decode_uvarint(data, offset)
    joins, offset = _decode_register_map(data, offset)
    leave_count, offset = decode_uvarint(data, offset)
    leaves = []
    for _ in range(leave_count):
        rid, offset = decode_atom(data, offset)
        leaves.append(rid)
    grants, offset = _decode_register_map(data, offset)
    revokes, offset = _decode_register_map(data, offset)
    return (
        MembershipChange(
            epoch=epoch,
            joins=joins,
            leaves=tuple(leaves),
            grants=grants,
            revokes=revokes,
        ),
        offset,
    )


__all__ = [
    "MEMBERSHIP_VERSION",
    "MembershipChange",
    "decode_membership_change",
    "encode_membership_change",
]
