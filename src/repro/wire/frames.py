"""Message frames: one ``UpdateMessage`` as bytes, with a size breakdown.

A message frame carries everything the receiving replica needs that the
surrounding envelope does not already say.  Batched messages share a
(sender, destination) channel with their envelope, so the frame itself
holds only::

    [flags: 1 byte (bit0 = payload present)]
    [uvarint epoch]
    [atom issuer][uvarint seq][atom register][uvarint metadata_size]
    [value frame, iff payload]
    [timestamp frame]

The epoch tag is the wire half of dynamic membership
(:mod:`repro.sim.reconfig`): a receiver in a newer configuration rejects a
stale-epoch frame cleanly — its timestamp's index structure belongs to a
configuration that no longer exists — and relies on the retransmission /
anti-entropy layers for content recovery.

Every encoder returns a :class:`WireSizes` breakdown alongside the bytes,
splitting the frame into **header** (identity, routing, flags), **timestamp**
(the metadata frame — the paper's object of study) and **payload** (the
written value) bytes, so the network statistics can report exactly where the
bytes on the wire go.

Metadata-only messages (``payload=False``, the dummy-register optimization's
notifications) ship no value at all; decoding one yields an update whose
``value`` is ``None`` — faithfully reproducing what a real wire format would
deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..core.protocol import Update, UpdateMessage
from ..core.registers import ReplicaId
from .codecs import (
    TimestampCodec,
    codec_for,
    decode_timestamp_frame,
    decode_value,
    encode_timestamp_frame_into,
    encode_value_into,
)
from .primitives import (
    WireFormatError,
    decode_atom,
    decode_uvarint,
    encode_atom_into,
    encode_uvarint_into,
)

#: Wire-format version byte leading every standalone envelope.  Version 2
#: added the per-message configuration-epoch tag to the frame header.
WIRE_VERSION = 2


@dataclass(frozen=True, slots=True)
class WireSizes:
    """Byte breakdown of one encoded message (or an aggregate of several)."""

    header_bytes: int = 0
    timestamp_bytes: int = 0
    payload_bytes: int = 0
    #: What the timestamp would have cost fully encoded (= ``timestamp_bytes``
    #: unless a delta frame was used).
    timestamp_bytes_full: int = 0
    delta_frames: int = 0
    full_frames: int = 0

    @property
    def total_bytes(self) -> int:
        """All bytes on the wire for this frame."""
        return self.header_bytes + self.timestamp_bytes + self.payload_bytes

    def __add__(self, other: "WireSizes") -> "WireSizes":
        return WireSizes(
            header_bytes=self.header_bytes + other.header_bytes,
            timestamp_bytes=self.timestamp_bytes + other.timestamp_bytes,
            payload_bytes=self.payload_bytes + other.payload_bytes,
            timestamp_bytes_full=self.timestamp_bytes_full + other.timestamp_bytes_full,
            delta_frames=self.delta_frames + other.delta_frames,
            full_frames=self.full_frames + other.full_frames,
        )


def encode_message_frame_into(
    out: bytearray,
    message: UpdateMessage,
    codec: Optional[TimestampCodec] = None,
    prev: Optional[Any] = None,
) -> WireSizes:
    """Append one message frame to ``out`` (envelope-relative: no routing).

    ``prev`` is the previous timestamp shipped on the message's channel; when
    given, the timestamp frame delta-encodes against it whenever that is
    smaller (see :func:`~repro.wire.codecs.encode_timestamp_frame_into`).
    The whole frame — header, payload, timestamp — lands in the one shared
    buffer; the size breakdown is measured off buffer marks.
    """
    update = message.update
    start = len(out)
    out.append(1 if message.payload else 0)
    encode_uvarint_into(out, message.epoch)
    encode_atom_into(out, update.issuer)
    encode_uvarint_into(out, update.seq)
    encode_atom_into(out, update.register)
    encode_uvarint_into(out, message.metadata_size)
    header_end = len(out)
    if message.payload:
        encode_value_into(out, update.value)
    payload_end = len(out)
    used_delta, full_size = encode_timestamp_frame_into(
        out, message.metadata, codec=codec, prev=prev
    )
    return WireSizes(
        header_bytes=header_end - start,
        timestamp_bytes=len(out) - payload_end,
        payload_bytes=payload_end - header_end,
        timestamp_bytes_full=full_size,
        delta_frames=1 if used_delta else 0,
        full_frames=0 if used_delta else 1,
    )


def encode_message_frame(
    message: UpdateMessage,
    codec: Optional[TimestampCodec] = None,
    prev: Optional[Any] = None,
) -> Tuple[bytes, WireSizes]:
    """Encode one message frame as standalone bytes (plus its breakdown)."""
    out = bytearray()
    sizes = encode_message_frame_into(out, message, codec=codec, prev=prev)
    return bytes(out), sizes


def decode_message_frame(
    data: bytes,
    offset: int,
    sender: ReplicaId,
    destination: ReplicaId,
    prev: Optional[Any] = None,
) -> Tuple[UpdateMessage, int]:
    """Decode one message frame; sender/destination come from the envelope."""
    if offset >= len(data):
        raise WireFormatError("truncated message frame")
    flags = data[offset]
    offset += 1
    epoch, offset = decode_uvarint(data, offset)
    issuer, offset = decode_atom(data, offset)
    seq, offset = decode_uvarint(data, offset)
    register, offset = decode_atom(data, offset)
    metadata_size, offset = decode_uvarint(data, offset)
    payload = bool(flags & 1)
    value: Any = None
    if payload:
        value, offset = decode_value(data, offset)
    metadata, offset = decode_timestamp_frame(data, offset, prev=prev)
    message = UpdateMessage(
        update=Update(issuer=issuer, seq=seq, register=register, value=value),
        sender=sender,
        destination=destination,
        metadata=metadata,
        metadata_size=metadata_size,
        payload=payload,
        epoch=epoch,
    )
    return message, offset


# ----------------------------------------------------------------------
# Standalone (unbatched) message envelopes
# ----------------------------------------------------------------------

def encode_message(
    message: UpdateMessage,
    codec: Optional[TimestampCodec] = None,
    prev: Optional[Any] = None,
) -> Tuple[bytes, WireSizes]:
    """Encode one message as a complete standalone envelope."""
    out = bytearray((WIRE_VERSION,))
    encode_atom_into(out, message.sender)
    encode_atom_into(out, message.destination)
    envelope_size = len(out)
    sizes = encode_message_frame_into(out, message, codec=codec, prev=prev)
    sizes = WireSizes(header_bytes=envelope_size) + sizes
    return bytes(out), sizes


def decode_message(
    data: bytes, offset: int = 0, prev: Optional[Any] = None
) -> Tuple[UpdateMessage, int]:
    """Decode a standalone message envelope."""
    if offset >= len(data) or data[offset] != WIRE_VERSION:
        raise WireFormatError("bad or missing wire version byte")
    offset += 1
    sender, offset = decode_atom(data, offset)
    destination, offset = decode_atom(data, offset)
    return decode_message_frame(data, offset, sender, destination, prev=prev)


def message_wire_sizes(
    message: UpdateMessage, codec: Optional[TimestampCodec] = None
) -> WireSizes:
    """Byte breakdown of ``message`` as a standalone, fully-encoded envelope."""
    _, sizes = encode_message(message, codec=codec)
    return sizes


__all__ = [
    "WIRE_VERSION",
    "WireSizes",
    "decode_message",
    "decode_message_frame",
    "encode_message",
    "encode_message_frame",
    "encode_message_frame_into",
    "message_wire_sizes",
    "codec_for",
]
