"""The ``MessageBatch`` envelope: many messages, one wire frame.

A batch collects every message sent on one (sender, destination) channel
during a batching window and ships them as a single envelope::

    [version: 1 byte][atom sender][atom destination]
    [uvarint batch seq][uvarint message count]
    [message frame] * count

Messages inside a batch appear in send order, so a batch is a contiguous
slice of the channel's FIFO stream: the per-channel delta encoder threads
straight through batch boundaries (the first frame of a batch may delta
against the last frame of the previous batch on that channel).

The transport (:mod:`repro.sim.engine`) delivers a batch as a *single*
kernel event — the throughput win — and the envelope's per-message sharing
of sender/destination is the header-byte win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.protocol import UpdateMessage
from ..core.registers import ReplicaId
from .channel import ChannelDeltaDecoder, ChannelDeltaEncoder
from .codecs import TimestampCodec
from .frames import (
    WIRE_VERSION,
    WireSizes,
    decode_message_frame,
    encode_message_frame_into,
)
from .primitives import (
    WireFormatError,
    decode_atom,
    decode_uvarint,
    encode_atom_into,
    encode_uvarint_into,
)


@dataclass(frozen=True, slots=True)
class MessageBatch:
    """One channel's batching window, flushed: an ordered run of messages."""

    sender: ReplicaId
    destination: ReplicaId
    #: Per-channel flush sequence number (0-based), for observability.
    seq: int
    messages: Tuple[UpdateMessage, ...]

    @property
    def channel(self) -> Tuple[ReplicaId, ReplicaId]:
        """The (sender, destination) channel this batch travelled on."""
        return (self.sender, self.destination)

    def __len__(self) -> int:
        return len(self.messages)


def encode_batch(
    batch: MessageBatch,
    encoder: Optional[ChannelDeltaEncoder] = None,
    codec: Optional[TimestampCodec] = None,
) -> Tuple[bytes, WireSizes]:
    """Encode a batch envelope; returns the bytes and the size breakdown.

    With an ``encoder`` given, each message's timestamp frame delta-encodes
    against the channel's running state (which the call advances); without
    one, every frame is full.
    """
    out = bytearray((WIRE_VERSION,))
    encode_atom_into(out, batch.sender)
    encode_atom_into(out, batch.destination)
    encode_uvarint_into(out, batch.seq)
    encode_uvarint_into(out, len(batch.messages))
    sizes = WireSizes(header_bytes=len(out))
    channel = batch.channel
    for message in batch.messages:
        if (message.sender, message.destination) != channel:
            raise WireFormatError(
                f"message on channel {(message.sender, message.destination)} "
                f"cannot ride a {channel} batch"
            )
        if encoder is not None:
            frame_sizes = encoder.encode_message_into(out, message, codec=codec)
        else:
            frame_sizes = encode_message_frame_into(out, message, codec=codec)
        sizes = sizes + frame_sizes
    return bytes(out), sizes


def decode_batch(
    data: bytes,
    offset: int = 0,
    decoder: Optional[ChannelDeltaDecoder] = None,
) -> Tuple[MessageBatch, int]:
    """Decode a batch envelope; ``decoder`` supplies cross-batch delta state."""
    if offset >= len(data) or data[offset] != WIRE_VERSION:
        raise WireFormatError("bad or missing wire version byte")
    offset += 1
    sender, offset = decode_atom(data, offset)
    destination, offset = decode_atom(data, offset)
    seq, offset = decode_uvarint(data, offset)
    count, offset = decode_uvarint(data, offset)
    messages = []
    for _ in range(count):
        if decoder is not None:
            message, offset = decoder.decode_message(data, offset, sender, destination)
        else:
            message, offset = decode_message_frame(data, offset, sender, destination)
        messages.append(message)
    return (
        MessageBatch(
            sender=sender, destination=destination, seq=seq, messages=tuple(messages)
        ),
        offset,
    )
