"""Binary wire primitives: varints, zigzag, atoms and length-prefixed bytes.

Everything the timestamp codecs and the batch envelope serialize bottoms out
in three primitives:

* **unsigned varints** (LEB128): 7 payload bits per byte, continuation bit
  on top — small counters cost one byte, and the encoding is monotone in
  the value (``a <= b  =>  len(enc(a)) <= len(enc(b))``), which is what
  makes the byte measure comparable to the paper's counter measure;
* **zigzag-signed varints** for values that may be negative (replica ids
  are positive by convention but nothing in the library requires it);
* **atoms**: a tagged int-or-string scalar used for replica ids and
  register names, encoded as a single varint key — even for ints (one byte
  for small ids), length + UTF-8 for strings.

Decoders take ``(data, offset)`` and return ``(value, new_offset)`` so
frames compose without intermediate slicing.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..core.errors import ProtocolError


class WireFormatError(ProtocolError):
    """Raised when a byte sequence cannot be decoded as the expected frame."""


Atom = Union[int, str]


# ----------------------------------------------------------------------
# Unsigned varints (LEB128)
# ----------------------------------------------------------------------

def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise WireFormatError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns ``(value, new_offset)``.

    No length cap: Python ints are arbitrary precision and the encoder
    happily emits more than 10 bytes for huge counters/values, so the
    decoder must accept whatever the encoder produced (``decode ∘ encode =
    id``).  Termination is bounded by the buffer length regardless.
    """
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireFormatError("truncated uvarint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def uvarint_size(value: int) -> int:
    """Encoded size in bytes of ``value`` as an unsigned varint."""
    if value < 0:
        raise WireFormatError(f"uvarint cannot encode negative value {value}")
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


# ----------------------------------------------------------------------
# Signed varints (zigzag)
# ----------------------------------------------------------------------

def zigzag(value: int) -> int:
    """Map a signed integer onto the unsigned line: 0, -1, 1, -2, 2, …"""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer as a zigzag varint."""
    return encode_uvarint(zigzag(value))


def decode_svarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a zigzag varint; returns ``(value, new_offset)``."""
    raw, offset = decode_uvarint(data, offset)
    return unzigzag(raw), offset


# ----------------------------------------------------------------------
# Atoms: tagged int-or-string scalars
# ----------------------------------------------------------------------
# key = zigzag(n) << 1       for an int n
# key = (len(utf8) << 1) | 1 for a string, followed by the UTF-8 bytes

def encode_atom(value: Atom) -> bytes:
    """Encode a replica id or register name (int or str)."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise WireFormatError(f"atom must be int or str, got {type(value).__name__}")
    if isinstance(value, int):
        return encode_uvarint(zigzag(value) << 1)
    raw = value.encode("utf-8")
    return encode_uvarint((len(raw) << 1) | 1) + raw


def decode_atom(data: bytes, offset: int = 0) -> Tuple[Atom, int]:
    """Decode an atom; returns ``(value, new_offset)``."""
    key, offset = decode_uvarint(data, offset)
    if not key & 1:
        return unzigzag(key >> 1), offset
    length = key >> 1
    end = offset + length
    if end > len(data):
        raise WireFormatError("truncated string atom")
    return data[offset:end].decode("utf-8"), end


def atom_size(value: Atom) -> int:
    """Encoded size in bytes of an atom."""
    if isinstance(value, int) and not isinstance(value, bool):
        return uvarint_size(zigzag(value) << 1)
    raw = value.encode("utf-8")
    return uvarint_size((len(raw) << 1) | 1) + len(raw)


# ----------------------------------------------------------------------
# Length-prefixed byte strings
# ----------------------------------------------------------------------

def encode_bytes(value: bytes) -> bytes:
    """Length-prefixed byte string."""
    return encode_uvarint(len(value)) + value


def decode_bytes(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed byte string; returns ``(value, new_offset)``."""
    length, offset = decode_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise WireFormatError("truncated byte string")
    return data[offset:end], end
