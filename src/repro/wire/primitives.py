"""Binary wire primitives: varints, zigzag, atoms and length-prefixed bytes.

Everything the timestamp codecs and the batch envelope serialize bottoms out
in three primitives:

* **unsigned varints** (LEB128): 7 payload bits per byte, continuation bit
  on top — small counters cost one byte, and the encoding is monotone in
  the value (``a <= b  =>  len(enc(a)) <= len(enc(b))``), which is what
  makes the byte measure comparable to the paper's counter measure;
* **zigzag-signed varints** for values that may be negative (replica ids
  are positive by convention but nothing in the library requires it);
* **atoms**: a tagged int-or-string scalar used for replica ids and
  register names, encoded as a single varint key — even for ints (one byte
  for small ids), length + UTF-8 for strings.

Decoders take ``(data, offset)`` and return ``(value, new_offset)`` so
frames compose without intermediate slicing; they accept any buffer that
supports integer indexing (``bytes``, ``bytearray``, ``memoryview``), so
the framing layer's zero-copy ``memoryview`` slices decode without a copy.
Every encoder also has an ``*_into`` variant appending to a caller-supplied
``bytearray``, letting a whole frame share one output buffer.

This module is the stable import surface; the implementations live in
:mod:`repro._speedups` (``_varint_py``, optionally mypyc-compiled as
``_varint_c``) and are selected at import time.
"""

from __future__ import annotations

from typing import Union

# WireFormatError predates the kernel split and is re-exported here for
# every existing ``from repro.wire.primitives import WireFormatError`` site.
from ..core.errors import WireFormatError
from .._speedups import varint as _varint

Atom = Union[int, str]

encode_uvarint_into = _varint.encode_uvarint_into
encode_uvarint = _varint.encode_uvarint
decode_uvarint = _varint.decode_uvarint
uvarint_size = _varint.uvarint_size

zigzag = _varint.zigzag
unzigzag = _varint.unzigzag
encode_svarint_into = _varint.encode_svarint_into
encode_svarint = _varint.encode_svarint
decode_svarint = _varint.decode_svarint

encode_atom_into = _varint.encode_atom_into
encode_atom = _varint.encode_atom
decode_atom = _varint.decode_atom
atom_size = _varint.atom_size

encode_bytes_into = _varint.encode_bytes_into
encode_bytes = _varint.encode_bytes
decode_bytes = _varint.decode_bytes

__all__ = [
    "Atom",
    "WireFormatError",
    "atom_size",
    "decode_atom",
    "decode_bytes",
    "decode_svarint",
    "decode_uvarint",
    "encode_atom",
    "encode_atom_into",
    "encode_bytes",
    "encode_bytes_into",
    "encode_svarint",
    "encode_svarint_into",
    "encode_uvarint",
    "encode_uvarint_into",
    "uvarint_size",
    "zigzag",
    "unzigzag",
]
