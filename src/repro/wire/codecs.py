"""Per-timestamp-family binary codecs and the value (payload) codec.

Every protocol family in the library serializes its timestamps through one
of four codecs, each identified by a one-byte family tag on the wire:

===========  ===============================================  ==========
family       timestamp shape                                  wire body
===========  ===============================================  ==========
``edge``     sparse edge-indexed vector (the paper's ``τ_i``)  count, then (atom a, atom b, uvarint counter) per sorted edge
``vector``   replica-indexed vector (full replication)         count, then (atom rid, uvarint counter) per sorted replica
``matrix``   dense ``R × (R−1)`` matrix (Full-Track)           R, the sorted replica ids, then the counters in pair order
``hoop``     sparse edge-indexed vector over hoop edge sets    same body as ``edge``, distinct tag
===========  ===============================================  ==========

The matrix codec exploits the one structural fact Full-Track guarantees —
the index set is *every* ordered replica pair — to avoid shipping edge ids
at all; the sparse codecs ship explicit ``(tail, head)`` atoms because the
whole point of the paper's algorithm is that the index set is an arbitrary
subgraph.

Every codec also implements **delta frames** against a previous timestamp
with the same index set: counters are monotone non-decreasing over a
replica's lifetime (``advance`` increments, ``merge`` takes maxima), so a
delta frame lists only the raised entries as ``(index gap, value delta)``
varint pairs.  :func:`encode_timestamp_frame` picks whichever of the two
encodings is smaller, so a delta frame never loses to the full frame it
replaces.

Frame layout (both modes)::

    [family tag: 1 byte][mode: 1 byte = 0 full | 1 delta][body]

Decoding a delta frame requires the previous timestamp on the channel —
that per-channel state lives in :mod:`repro.wire.channel`.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Type

from ..core.protocol import BootstrapMetadata
from ..core.timestamps import EdgeTimestamp, VectorTimestamp
from .primitives import (
    WireFormatError,
    atom_size,
    decode_atom,
    decode_bytes,
    decode_svarint,
    decode_uvarint,
    encode_atom_into,
    encode_bytes_into,
    encode_svarint_into,
    encode_uvarint_into,
    uvarint_size,
)

MODE_FULL = 0
MODE_DELTA = 1


class TimestampCodec:
    """One timestamp family's binary encoding.

    Subclasses provide the family identity (:attr:`name`, :attr:`tag`), the
    full encoding, and the index/counter accessors the shared delta logic
    needs.  All codecs are stateless singletons; per-channel delta state
    lives in :class:`~repro.wire.channel.ChannelDeltaEncoder`.
    """

    #: Human-readable family name (``edge`` / ``vector`` / ``matrix`` / ``hoop``).
    name: str = ""
    #: One-byte wire tag.
    tag: int = 0

    #: Instance attribute the canonical index is cached under.  Edge and
    #: hoop timestamps share one sort order; the matrix codec's pair order
    #: differs, so it caches under its own attribute (one ``EdgeTimestamp``
    #: object is only ever encoded by one family, but the caches must not
    #: collide even if that changes).
    _INDEX_CACHE_ATTR = "_wire_sorted_index"
    _FULL_SIZE_CACHE_ATTR = "_wire_full_size"

    # -- hooks ---------------------------------------------------------
    def index_of(self, ts: Any) -> Tuple[Any, ...]:
        """The canonical index entries of ``ts``, cached on the instance.

        Timestamps are immutable and — on broadcast topologies — shared by
        every outgoing copy of a write, so the sort is paid once per write,
        not once per destination.
        """
        cached = ts.__dict__.get(self._INDEX_CACHE_ATTR)
        if cached is None:
            cached = self._build_index(ts)
            object.__setattr__(ts, self._INDEX_CACHE_ATTR, cached)
        return cached

    def _build_index(self, ts: Any) -> Tuple[Any, ...]:
        """Compute the canonical index entries (uncached)."""
        raise NotImplementedError

    def full_frame_size(self, ts: Any) -> int:
        """Size in bytes of the *full* frame for ``ts``, without building it.

        Cached on the instance like :meth:`index_of`; used both to charge
        the no-delta counterfactual in the statistics and to guarantee a
        delta frame is only used when it actually wins.
        """
        cached = ts.__dict__.get(self._FULL_SIZE_CACHE_ATTR)
        if cached is None:
            cached = 2 + self._full_body_size(ts)
            object.__setattr__(ts, self._FULL_SIZE_CACHE_ATTR, cached)
        return cached

    def _full_body_size(self, ts: Any) -> int:
        """Byte size of :meth:`encode_full`'s output (size-only pass)."""
        raise NotImplementedError

    def counters_of(self, ts: Any) -> Mapping[Any, int]:
        """The ``index entry -> counter`` mapping of ``ts``."""
        raise NotImplementedError

    def make(self, counters: Dict[Any, int]) -> Any:
        """Rebuild a timestamp from decoded counters."""
        raise NotImplementedError

    def encode_full_into(self, out: bytearray, ts: Any) -> None:
        """Append the self-describing full body to ``out`` (no channel state)."""
        raise NotImplementedError

    def encode_full(self, ts: Any) -> bytes:
        """The self-describing full body, as standalone bytes."""
        out = bytearray()
        self.encode_full_into(out, ts)
        return bytes(out)

    def decode_full(self, data: bytes, offset: int) -> Tuple[Any, int]:
        """Inverse of :meth:`encode_full`."""
        raise NotImplementedError

    # -- shared delta logic --------------------------------------------
    def encode_delta_into(self, out: bytearray, ts: Any, prev: Any) -> bool:
        """Append the delta body against ``prev``; ``False`` if no delta applies.

        A delta frame exists iff ``ts`` and ``prev`` share the index set and
        no counter decreased (both always hold for successive timestamps of
        one live replica; restarts and index-set changes fall back to full).
        When this returns ``False`` nothing was appended to ``out``.
        """
        if type(prev) is not type(ts):
            return False
        index = self.index_of(ts)
        if index != self.index_of(prev):
            return False
        counters = self.counters_of(ts)
        previous = self.counters_of(prev)
        changed: List[Tuple[int, int]] = []
        for position, entry in enumerate(index):
            step = counters[entry] - previous[entry]
            if step < 0:
                return False
            if step:
                changed.append((position, step))
        encode_uvarint_into(out, len(changed))
        last = -1
        for position, step in changed:
            encode_uvarint_into(out, position - last - 1)
            encode_uvarint_into(out, step)
            last = position
        return True

    def encode_delta(self, ts: Any, prev: Any) -> Optional[bytes]:
        """Delta body against ``prev``, or ``None`` when no delta applies."""
        out = bytearray()
        if not self.encode_delta_into(out, ts, prev):
            return None
        return bytes(out)

    def decode_delta(self, data: bytes, offset: int, prev: Any) -> Tuple[Any, int]:
        """Apply a delta body to ``prev``; returns ``(timestamp, new_offset)``."""
        index = self.index_of(prev)
        counters = dict(self.counters_of(prev))
        count, offset = decode_uvarint(data, offset)
        position = -1
        for _ in range(count):
            gap, offset = decode_uvarint(data, offset)
            step, offset = decode_uvarint(data, offset)
            position += gap + 1
            if position >= len(index):
                raise WireFormatError("delta frame indexes past the previous timestamp")
            counters[index[position]] += step
        return self.make(counters), offset


class EdgeTimestampCodec(TimestampCodec):
    """Sparse codec for the paper's edge-indexed timestamps."""

    name = "edge"
    tag = 1

    def _build_index(self, ts: EdgeTimestamp) -> Tuple[Any, ...]:
        return tuple(sorted(ts.counters))

    def counters_of(self, ts: EdgeTimestamp) -> Mapping[Any, int]:
        return ts.counters

    def make(self, counters: Dict[Any, int]) -> EdgeTimestamp:
        # Wire-decoded counters are structurally valid by construction of
        # the encoders, so skip the constructor's re-validation.
        return EdgeTimestamp._from_validated(counters)

    def encode_full_into(self, out: bytearray, ts: EdgeTimestamp) -> None:
        counters = ts.counters
        encode_uvarint_into(out, len(counters))
        for edge in self.index_of(ts):
            encode_atom_into(out, edge[0])
            encode_atom_into(out, edge[1])
            encode_uvarint_into(out, counters[edge])

    def _full_body_size(self, ts: EdgeTimestamp) -> int:
        size = uvarint_size(len(ts.counters))
        for (tail, head), value in ts.counters.items():
            size += atom_size(tail) + atom_size(head) + uvarint_size(value)
        return size

    def decode_full(self, data: bytes, offset: int) -> Tuple[EdgeTimestamp, int]:
        count, offset = decode_uvarint(data, offset)
        counters: Dict[Tuple[Any, Any], int] = {}
        for _ in range(count):
            tail, offset = decode_atom(data, offset)
            head, offset = decode_atom(data, offset)
            value, offset = decode_uvarint(data, offset)
            counters[(tail, head)] = value
        return EdgeTimestamp._from_validated(counters), offset


class HoopTimestampCodec(EdgeTimestampCodec):
    """The hoop-tracking family: edge-shaped timestamps, distinct wire tag.

    Hoop-derived edge sets are sparse like the paper's, so the body is the
    edge codec's; the separate tag keeps per-family byte accounting honest.
    """

    name = "hoop"
    tag = 4


class VectorTimestampCodec(TimestampCodec):
    """Codec for classical replica-indexed vector timestamps."""

    name = "vector"
    tag = 2

    def _build_index(self, ts: VectorTimestamp) -> Tuple[Any, ...]:
        return tuple(sorted(ts.counters))

    def counters_of(self, ts: VectorTimestamp) -> Mapping[Any, int]:
        return ts.counters

    def make(self, counters: Dict[Any, int]) -> VectorTimestamp:
        return VectorTimestamp._from_validated(counters)

    def encode_full_into(self, out: bytearray, ts: VectorTimestamp) -> None:
        counters = ts.counters
        encode_uvarint_into(out, len(counters))
        for rid in self.index_of(ts):
            encode_atom_into(out, rid)
            encode_uvarint_into(out, counters[rid])

    def _full_body_size(self, ts: VectorTimestamp) -> int:
        size = uvarint_size(len(ts.counters))
        for rid, value in ts.counters.items():
            size += atom_size(rid) + uvarint_size(value)
        return size

    def decode_full(self, data: bytes, offset: int) -> Tuple[VectorTimestamp, int]:
        count, offset = decode_uvarint(data, offset)
        counters: Dict[Any, int] = {}
        for _ in range(count):
            rid, offset = decode_atom(data, offset)
            value, offset = decode_uvarint(data, offset)
            counters[rid] = value
        # The generic constructor, not ``_from_validated``: vector keys are
        # coerced to ``int`` there, and an atom can legally decode as ``str``.
        return VectorTimestamp(counters), offset


class MatrixTimestampCodec(TimestampCodec):
    """Dense codec for Full-Track's complete ``R × (R−1)`` matrix clocks.

    The index set of a Full-Track timestamp is *every* ordered pair over the
    replica set, so the wire body ships the replica ids once and the
    counters positionally — 2 atoms per replica instead of 2 atoms per pair.
    """

    name = "matrix"
    tag = 3

    _INDEX_CACHE_ATTR = "_wire_matrix_index"
    _FULL_SIZE_CACHE_ATTR = "_wire_matrix_full_size"

    @staticmethod
    def _replica_ids(ts: EdgeTimestamp) -> Tuple[Any, ...]:
        ids = set()
        for tail, head in ts.counters:
            ids.add(tail)
            ids.add(head)
        return tuple(sorted(ids))

    @staticmethod
    def _all_pairs(ids: Sequence[Any]) -> Tuple[Tuple[Any, Any], ...]:
        return tuple((a, b) for a in ids for b in ids if a != b)

    def _build_index(self, ts: EdgeTimestamp) -> Tuple[Any, ...]:
        pairs = self._all_pairs(self._replica_ids(ts))
        if len(pairs) != len(ts.counters) or frozenset(pairs) != frozenset(ts.counters):
            raise WireFormatError(
                "matrix codec requires a complete ordered-pair index set; "
                f"got {len(ts.counters)} of {len(pairs)} pairs"
            )
        return pairs

    def counters_of(self, ts: EdgeTimestamp) -> Mapping[Any, int]:
        return ts.counters

    def make(self, counters: Dict[Any, int]) -> EdgeTimestamp:
        return EdgeTimestamp._from_validated(counters)

    def encode_full_into(self, out: bytearray, ts: EdgeTimestamp) -> None:
        pairs = self.index_of(ts)
        ids = self._replica_ids(ts)
        counters = ts.counters
        encode_uvarint_into(out, len(ids))
        for rid in ids:
            encode_atom_into(out, rid)
        for pair in pairs:
            encode_uvarint_into(out, counters[pair])

    def _full_body_size(self, ts: EdgeTimestamp) -> int:
        self.index_of(ts)  # validates completeness
        ids = self._replica_ids(ts)
        size = uvarint_size(len(ids)) + sum(atom_size(rid) for rid in ids)
        for value in ts.counters.values():
            size += uvarint_size(value)
        return size

    def decode_full(self, data: bytes, offset: int) -> Tuple[EdgeTimestamp, int]:
        count, offset = decode_uvarint(data, offset)
        ids: List[Any] = []
        for _ in range(count):
            rid, offset = decode_atom(data, offset)
            ids.append(rid)
        counters: Dict[Tuple[Any, Any], int] = {}
        for pair in self._all_pairs(ids):
            value, offset = decode_uvarint(data, offset)
            counters[pair] = value
        return EdgeTimestamp._from_validated(counters), offset


class ReconfigCodec(TimestampCodec):
    """The membership/state-transfer family: bootstrap stream positions.

    State-transfer messages (:class:`~repro.core.protocol.BootstrapMetadata`)
    carry no counters at all — just the configuration epoch and the stream
    position — so their frame is three varints.  Delta frames never apply
    (there is nothing to delta against), and the distinct family tag keeps
    reconfiguration traffic separable in per-family byte accounting.
    """

    name = "reconfig"
    tag = 5

    def index_of(self, ts: BootstrapMetadata) -> Tuple[Any, ...]:
        return ()

    def counters_of(self, ts: BootstrapMetadata) -> Mapping[Any, int]:
        return {}

    def full_frame_size(self, ts: BootstrapMetadata) -> int:
        return 2 + self._full_body_size(ts)

    def _full_body_size(self, ts: BootstrapMetadata) -> int:
        return (
            uvarint_size(ts.epoch) + uvarint_size(ts.index) + uvarint_size(ts.total)
        )

    def encode_full_into(self, out: bytearray, ts: BootstrapMetadata) -> None:
        encode_uvarint_into(out, ts.epoch)
        encode_uvarint_into(out, ts.index)
        encode_uvarint_into(out, ts.total)

    def decode_full(self, data: bytes, offset: int) -> Tuple[BootstrapMetadata, int]:
        epoch, offset = decode_uvarint(data, offset)
        index, offset = decode_uvarint(data, offset)
        total, offset = decode_uvarint(data, offset)
        return BootstrapMetadata(index=index, total=total, epoch=epoch), offset

    def encode_delta_into(self, out: bytearray, ts: BootstrapMetadata,
                          prev: Any) -> bool:
        return False


#: The family singletons, and the wire-tag dispatch table.
EDGE_CODEC = EdgeTimestampCodec()
VECTOR_CODEC = VectorTimestampCodec()
MATRIX_CODEC = MatrixTimestampCodec()
HOOP_CODEC = HoopTimestampCodec()
RECONFIG_CODEC = ReconfigCodec()

CODEC_BY_TAG: Dict[int, TimestampCodec] = {
    codec.tag: codec
    for codec in (EDGE_CODEC, VECTOR_CODEC, MATRIX_CODEC, HOOP_CODEC, RECONFIG_CODEC)
}

#: Fallback type-based dispatch for metadata whose replica family is unknown
#: (e.g. a message inspected outside any cluster).
_CODEC_BY_TYPE: Dict[Type, TimestampCodec] = {
    EdgeTimestamp: EDGE_CODEC,
    VectorTimestamp: VECTOR_CODEC,
    BootstrapMetadata: RECONFIG_CODEC,
}


def register_codec_type(metadata_type: Type, codec: TimestampCodec) -> None:
    """Register a fallback codec for a metadata type (extension hook)."""
    _CODEC_BY_TYPE[metadata_type] = codec
    CODEC_BY_TAG[codec.tag] = codec


def codec_for(metadata: Any) -> TimestampCodec:
    """The fallback codec for a metadata object, dispatched on its type."""
    codec = _CODEC_BY_TYPE.get(type(metadata))
    if codec is None:
        raise WireFormatError(
            f"no timestamp codec registered for {type(metadata).__name__}"
        )
    return codec


class TimestampFrame(NamedTuple):
    """One encoded timestamp frame plus its accounting facts."""

    data: bytes
    used_delta: bool
    #: What the full (non-delta) frame would have cost, in bytes — equal to
    #: ``len(data)`` when ``used_delta`` is false.  Feeds the delta-savings
    #: accounting in :class:`~repro.sim.engine.NetworkStats`.
    full_size: int


def encode_timestamp_frame_into(
    out: bytearray,
    ts: Any,
    codec: Optional[TimestampCodec] = None,
    prev: Optional[Any] = None,
) -> Tuple[bool, int]:
    """Append one tagged timestamp frame to ``out``.

    Returns ``(used_delta, full_size)`` — the accounting facts of
    :class:`TimestampFrame` without materialising a separate byte string.
    With ``prev`` given (the previous timestamp shipped on the channel) a
    delta body is attempted and used whenever it is both valid and strictly
    smaller than the full body — a delta frame therefore never loses to the
    full frame it replaces.
    """
    if isinstance(ts, BootstrapMetadata):
        # State-transfer metadata always ships through its own family,
        # regardless of which timestamp codec the sending replica's normal
        # traffic uses (bootstrap frames share channels with that traffic).
        codec = RECONFIG_CODEC
    codec = codec or codec_for(ts)
    mark = len(out)
    if prev is not None:
        out.append(codec.tag)
        out.append(MODE_DELTA)
        if codec.encode_delta_into(out, ts, prev):
            # The full frame is only *sized* here (a cached, allocation-free
            # pass) — never built — so the delta fast path stays cheap.
            full_size = codec.full_frame_size(ts)
            if len(out) - mark < full_size:
                return True, full_size
        del out[mark:]
    out.append(codec.tag)
    out.append(MODE_FULL)
    codec.encode_full_into(out, ts)
    return False, len(out) - mark


def encode_timestamp_frame(
    ts: Any,
    codec: Optional[TimestampCodec] = None,
    prev: Optional[Any] = None,
) -> TimestampFrame:
    """Encode one timestamp as a tagged frame (standalone-bytes form)."""
    out = bytearray()
    used_delta, full_size = encode_timestamp_frame_into(
        out, ts, codec=codec, prev=prev
    )
    return TimestampFrame(bytes(out), used_delta, full_size)


def decode_timestamp_frame(
    data: bytes, offset: int = 0, prev: Optional[Any] = None
) -> Tuple[Any, int]:
    """Decode a tagged timestamp frame (``prev`` required for delta mode)."""
    if offset + 2 > len(data):
        raise WireFormatError("truncated timestamp frame header")
    tag, mode = data[offset], data[offset + 1]
    offset += 2
    codec = CODEC_BY_TAG.get(tag)
    if codec is None:
        raise WireFormatError(f"unknown timestamp family tag {tag}")
    if mode == MODE_FULL:
        return codec.decode_full(data, offset)
    if mode == MODE_DELTA:
        if prev is None:
            raise WireFormatError(
                "delta timestamp frame without channel state (previous timestamp)"
            )
        return codec.decode_delta(data, offset, prev)
    raise WireFormatError(f"unknown timestamp frame mode {mode}")


# ----------------------------------------------------------------------
# Payload values
# ----------------------------------------------------------------------
# Register values are opaque to the protocol; the workloads write short
# strings.  The value codec covers the common scalar types with one tag
# byte each and falls back to pickle for anything else, so every payload
# round-trips exactly.

_VALUE_NONE = 0
_VALUE_FALSE = 1
_VALUE_TRUE = 2
_VALUE_INT = 3
_VALUE_FLOAT = 4
_VALUE_STR = 5
_VALUE_BYTES = 6
_VALUE_PICKLE = 7


def encode_value_into(out: bytearray, value: Any) -> None:
    """Append one encoded register value (tag byte + body) to ``out``."""
    if value is None:
        out.append(_VALUE_NONE)
    elif value is False:
        out.append(_VALUE_FALSE)
    elif value is True:
        out.append(_VALUE_TRUE)
    elif isinstance(value, int):
        out.append(_VALUE_INT)
        encode_svarint_into(out, value)
    elif isinstance(value, float):
        out.append(_VALUE_FLOAT)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        out.append(_VALUE_STR)
        encode_bytes_into(out, value.encode("utf-8"))
    elif isinstance(value, bytes):
        out.append(_VALUE_BYTES)
        encode_bytes_into(out, value)
    else:
        out.append(_VALUE_PICKLE)
        encode_bytes_into(
            out, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )


def encode_value(value: Any) -> bytes:
    """Encode one register value (tag byte + body)."""
    out = bytearray()
    encode_value_into(out, value)
    return bytes(out)


def decode_value(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one register value; returns ``(value, new_offset)``."""
    if offset >= len(data):
        raise WireFormatError("truncated value frame")
    tag = data[offset]
    offset += 1
    if tag == _VALUE_NONE:
        return None, offset
    if tag == _VALUE_FALSE:
        return False, offset
    if tag == _VALUE_TRUE:
        return True, offset
    if tag == _VALUE_INT:
        return decode_svarint(data, offset)
    if tag == _VALUE_FLOAT:
        if offset + 8 > len(data):
            raise WireFormatError("truncated float value")
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == _VALUE_STR:
        raw, offset = decode_bytes(data, offset)
        return raw.decode("utf-8"), offset
    if tag == _VALUE_BYTES:
        return decode_bytes(data, offset)
    if tag == _VALUE_PICKLE:
        raw, offset = decode_bytes(data, offset)
        return pickle.loads(raw), offset
    raise WireFormatError(f"unknown value tag {tag}")
