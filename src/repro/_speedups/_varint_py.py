"""Varint / atom wire kernels: buffer-writing encoders, buffer-protocol decoders.

The byte-level inner loops of :mod:`repro.wire.primitives`, in the
mypyc-compilable style of :mod:`repro._speedups`:

* every encoder has an ``*_into`` form that **appends to a caller-supplied
  bytearray** — the whole encode path of a batch shares one preallocated
  buffer instead of concatenating per-field ``bytes`` objects;
* every decoder indexes the buffer in place and accepts anything supporting
  the buffer protocol's integer indexing (``bytes``, ``bytearray``,
  ``memoryview``) — so the framing layer can hand out zero-copy
  ``memoryview`` slices and the codecs decode them without an intermediate
  copy.  Only a *string* atom materialises bytes (UTF-8 decoding needs
  them); integer fields never copy.

Encodings are unchanged from the original primitives: LEB128 unsigned
varints, zigzag-signed varints, tagged int-or-string atoms, length-prefixed
byte strings.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

from ..core.errors import WireFormatError

Atom = Union[int, str]


# ----------------------------------------------------------------------
# Unsigned varints (LEB128)
# ----------------------------------------------------------------------

def encode_uvarint_into(out: bytearray, value: int) -> None:
    """Append the LEB128 encoding of a non-negative integer to ``out``."""
    if value < 0:
        raise WireFormatError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    out = bytearray()
    encode_uvarint_into(out, value)
    return bytes(out)


def decode_uvarint(data: Any, offset: int = 0) -> Tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns ``(value, new_offset)``.

    No length cap: Python ints are arbitrary precision and the encoder
    happily emits more than 10 bytes for huge counters/values, so the
    decoder must accept whatever the encoder produced (``decode ∘ encode =
    id``).  Termination is bounded by the buffer length regardless.
    """
    value = 0
    shift = 0
    size = len(data)
    while True:
        if offset >= size:
            raise WireFormatError("truncated uvarint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def uvarint_size(value: int) -> int:
    """Encoded size in bytes of ``value`` as an unsigned varint."""
    if value < 0:
        raise WireFormatError(f"uvarint cannot encode negative value {value}")
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


# ----------------------------------------------------------------------
# Signed varints (zigzag)
# ----------------------------------------------------------------------

def zigzag(value: int) -> int:
    """Map a signed integer onto the unsigned line: 0, -1, 1, -2, 2, …"""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint_into(out: bytearray, value: int) -> None:
    """Append the zigzag-varint encoding of a signed integer to ``out``."""
    encode_uvarint_into(out, zigzag(value))


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer as a zigzag varint."""
    return encode_uvarint(zigzag(value))


def decode_svarint(data: Any, offset: int = 0) -> Tuple[int, int]:
    """Decode a zigzag varint; returns ``(value, new_offset)``."""
    raw, offset = decode_uvarint(data, offset)
    return unzigzag(raw), offset


# ----------------------------------------------------------------------
# Atoms: tagged int-or-string scalars
# ----------------------------------------------------------------------
# key = zigzag(n) << 1       for an int n
# key = (len(utf8) << 1) | 1 for a string, followed by the UTF-8 bytes

def encode_atom_into(out: bytearray, value: Atom) -> None:
    """Append the encoding of a replica id or register name to ``out``."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise WireFormatError(
            f"atom must be int or str, got {type(value).__name__}"
        )
    if isinstance(value, int):
        encode_uvarint_into(out, zigzag(value) << 1)
        return
    raw = value.encode("utf-8")
    encode_uvarint_into(out, (len(raw) << 1) | 1)
    out += raw


def encode_atom(value: Atom) -> bytes:
    """Encode a replica id or register name (int or str)."""
    out = bytearray()
    encode_atom_into(out, value)
    return bytes(out)


def decode_atom(data: Any, offset: int = 0) -> Tuple[Atom, int]:
    """Decode an atom; returns ``(value, new_offset)``."""
    key, offset = decode_uvarint(data, offset)
    if not key & 1:
        return unzigzag(key >> 1), offset
    length = key >> 1
    end = offset + length
    if end > len(data):
        raise WireFormatError("truncated string atom")
    raw = data[offset:end]
    if not isinstance(raw, bytes):
        raw = bytes(raw)
    return raw.decode("utf-8"), end


def atom_size(value: Atom) -> int:
    """Encoded size in bytes of an atom."""
    if isinstance(value, int) and not isinstance(value, bool):
        return uvarint_size(zigzag(value) << 1)
    raw = value.encode("utf-8")
    return uvarint_size((len(raw) << 1) | 1) + len(raw)


# ----------------------------------------------------------------------
# Length-prefixed byte strings
# ----------------------------------------------------------------------

def encode_bytes_into(out: bytearray, value: bytes) -> None:
    """Append a length-prefixed byte string to ``out``."""
    encode_uvarint_into(out, len(value))
    out += value


def encode_bytes(value: bytes) -> bytes:
    """Length-prefixed byte string."""
    out = bytearray()
    encode_bytes_into(out, value)
    return bytes(out)


def decode_bytes(data: Any, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed byte string; returns ``(value, new_offset)``.

    Always returns ``bytes`` (consumers hand the value to ``pickle`` /
    ``str.decode``), converting from a ``memoryview`` slice when needed —
    the one place the zero-copy decode path materialises payload bytes.
    """
    length, offset = decode_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise WireFormatError("truncated byte string")
    raw = data[offset:end]
    if not isinstance(raw, bytes):
        raw = bytes(raw)
    return raw, end
