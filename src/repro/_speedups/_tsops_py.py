"""Timestamp kernels: one-pass merge and delivery-predicate evaluation.

These are the per-apply inner loops of every replica family, extracted from
:mod:`repro.core.replica` / :mod:`repro.baselines.vector_clock_full` so they
(a) run over raw counter dicts with no wrapper-method calls and (b) compile
under mypyc (see :mod:`repro._speedups`).  Counter keys are replica ids for
vector clocks and ``(tail, head)`` edge tuples for edge-indexed timestamps;
both are opaque here.

Semantics are pinned by the callers' reference implementations: the merge
kernels return *fresh* dicts (the caller wraps them in an immutable
timestamp via its ``_from_validated`` constructor) plus the raised entries
in the deterministic order the pending index's wake keys rely on, and the
blocking kernels return exactly the wake key the first failing conjunct of
the delivery predicate defines — or ``None`` when the predicate holds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


def merge_union(
    local: Dict[Any, int], remote: Dict[Any, int]
) -> Tuple[Dict[Any, int], List[Tuple[Any, int]]]:
    """Element-wise max over the *union* of index sets (vector-clock merge).

    Returns ``(merged, changed)`` where ``changed`` lists the ``(key, new
    value)`` entries the merge raised, in the remote dict's iteration order
    (the order the reference implementation produced).
    """
    merged: Dict[Any, int] = dict(local)
    changed: List[Tuple[Any, int]] = []
    for key, value in remote.items():
        current = merged.get(key)
        if current is None:
            # Union semantics: a remote-only entry joins the index set even
            # at zero (it only counts as *changed* when it raised a value).
            merged[key] = value
            if value > 0:
                changed.append((key, value))
        elif value > current:
            merged[key] = value
            changed.append((key, value))
    return merged, changed


def merge_intersection(
    local: Dict[Any, int], remote: Dict[Any, int], me: Any
) -> Tuple[Dict[Any, int], List[Tuple[Any, int]]]:
    """Element-wise max over the *intersection* of index sets (edge merge).

    Entries absent from ``local`` are ignored — the paper's ``merge`` keeps
    ``τ_i`` fixed outside ``E_i ∩ E_k``.  ``changed`` lists only the raised
    *incoming* entries (edges whose head is ``me`` — the only counters the
    delivery predicate reads), sorted, matching the deterministic
    incoming-edge order the reference implementation walked.
    """
    merged: Dict[Any, int] = dict(local)
    changed: List[Tuple[Any, int]] = []
    for key, value in remote.items():
        current = merged.get(key)
        if current is not None and value > current:
            merged[key] = value
            if key[1] == me:
                changed.append((key, value))
    if len(changed) > 1:
        changed.sort()
    return merged, changed


def vector_blocking_key(
    local: Dict[Any, int], remote: Dict[Any, int], sender: Any
) -> Optional[Tuple]:
    """The classical causal-broadcast condition, as a wake key (or ``None``).

    ``("seq", k, n)`` when the FIFO conjunct ``T[k] = τ[k] + 1`` fails;
    ``("ge", j)`` for the first other entry with ``T[j] > τ[j]``; ``None``
    when the message is applicable now.
    """
    n = remote.get(sender, 0)
    if n != local.get(sender, 0) + 1:
        return ("seq", sender, n)
    for key, value in remote.items():
        if value > local.get(key, 0) and key != sender:
            return ("ge", key)
    return None


def vector_try_apply(
    local: Dict[Any, int],
    remote: Dict[Any, int],
    sender: Any,
    remote_total: int = -1,
) -> Tuple[Optional[Tuple], Optional[Dict[Any, int]], Optional[List[Tuple[Any, int]]]]:
    """Fused delivery check + merge for vector clocks: one scan, not two.

    When the delivery condition fails, returns ``(wake_key, None, None)``
    with exactly the key :func:`vector_blocking_key` would report.  When it
    holds, the merge outcome is already determined by the condition itself —
    ``T[sender] = τ[sender] + 1`` and ``T[j] ≤ τ[j]`` everywhere else — so
    the same scan that verified it returns ``(None, merged, changed)``:
    ``merged`` is ``τ`` with the sender entry bumped to ``n`` (plus any
    remote-only zero entries, preserving the union index set) and
    ``changed`` is ``[(sender, n)]``, exactly what
    :func:`merge_union` would compute.  The caller applies the message and
    adopts ``merged`` without a second pass over the counters.

    ``remote_total``, when ≥ 0, is ``sum(remote.values())`` (callers cache
    it on the immutable timestamp).  It enables an exact no-scan accept: the
    FIFO conjunct already pins ``T[sender] = n``, so ``remote_total == n``
    means every other entry of ``T`` is zero and the monotone conjuncts
    ``T[j] ≤ τ[j]`` all hold trivially — the common case for concurrent
    writers whose updates carry no cross-replica dependencies.
    """
    n = remote.get(sender, 0)
    if n != local.get(sender, 0) + 1:
        return ("seq", sender, n), None, None
    if remote_total == n and remote.keys() == local.keys():
        merged = dict(local)
        merged[sender] = n
        return None, merged, [(sender, n)]
    extra: Optional[List[Any]] = None
    for key, value in remote.items():
        if key == sender:
            continue
        current = local.get(key)
        if current is None:
            if value > 0:
                return ("ge", key), None, None
            if extra is None:
                extra = [key]
            else:
                extra.append(key)
        elif value > current:
            return ("ge", key), None, None
    merged = dict(local)
    merged[sender] = n
    if extra is not None:
        for key in extra:
            merged[key] = 0
    return None, merged, [(sender, n)]


def edge_blocking_key(
    local: Dict[Any, int],
    remote: Dict[Any, int],
    sender: Any,
    me: Any,
    incoming: Tuple[Any, ...],
) -> Optional[Tuple]:
    """Predicate ``J(i, τ_i, k, T)`` of the paper, as a wake key (or ``None``).

    ``incoming`` is the precomputed sorted tuple of ``e_ji ∈ E_i`` — the
    only entries the predicate reads — so the scan never materialises the
    index-set intersection.
    """
    ki = (sender, me)
    n = remote.get(ki, 0)
    if local.get(ki, 0) != n - 1:
        return ("seq", ki, n)
    for e in incoming:
        if e[0] == sender:
            continue
        value = remote.get(e)
        if value is not None and local.get(e, 0) < value:
            return ("ge", e)
    return None
