"""The hot-path kernel modules, with an optional compiled core.

The innermost loops of the library — timestamp merge/compare
(:mod:`repro.core.timestamps` and the replica hot paths) and the varint /
atom wire primitives (:mod:`repro.wire.primitives`) — live here as small,
fully typed, dependency-light modules written in the restricted style
`mypyc <https://mypyc.readthedocs.io>`_ compiles well: plain functions over
built-in containers, no dataclass magic, no closures.

Two implementations of each kernel module can exist side by side:

* ``_tsops_py`` / ``_varint_py`` — the pure-Python sources, always present.
  They are the reference semantics and what runs everywhere by default.
* ``_tsops_c`` / ``_varint_c`` — mypyc-compiled clones, produced by
  ``REPRO_COMPILE=1 python setup.py build_ext --inplace`` (see the
  ``repro[compiled]`` extra).  The build copies each ``*_py`` source to its
  ``*_c`` name and compiles that copy, so the pure fallback is never
  shadowed and both cores stay importable in one environment.

This module is the **runtime selector**: it prefers the compiled core when
present, falls back to pure Python otherwise, and honours
``REPRO_PURE_PYTHON=1`` to force the fallback (how CI exercises both cores
on the compiled build).  Everything downstream imports ``tsops`` / ``varint``
from here and never names a concrete implementation.
"""

from __future__ import annotations

import os

_FORCE_PURE = os.environ.get("REPRO_PURE_PYTHON", "") not in ("", "0")

if _FORCE_PURE:
    from . import _tsops_py as tsops
    from . import _varint_py as varint
else:
    try:
        from . import _tsops_c as tsops  # type: ignore[no-redef]
    except ImportError:
        from . import _tsops_py as tsops
    try:
        from . import _varint_c as varint  # type: ignore[no-redef]
    except ImportError:
        from . import _varint_py as varint


def _is_compiled(module: object) -> bool:
    # A mypyc-built module is an extension module; its __file__ ends in the
    # platform's shared-library suffix.  (A stray uncompiled ``*_c.py`` copy
    # — e.g. from an sdist built without mypyc — is pure Python and must
    # report as such.)
    filename = getattr(module, "__file__", "") or ""
    return filename.endswith((".so", ".pyd"))


def compiled_active() -> bool:
    """``True`` when the mypyc-compiled kernels are the ones in use."""
    return _is_compiled(tsops) and _is_compiled(varint)


def active_core() -> str:
    """``"compiled"`` or ``"pure"`` — which kernel implementation is live."""
    return "compiled" if compiled_active() else "pure"


__all__ = ["tsops", "varint", "compiled_active", "active_core"]
