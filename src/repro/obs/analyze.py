"""Trace analysis: span chains, stage breakdowns, critical paths, Chrome export.

The library half of ``tools/trace_report.py``: everything here takes the
flat event tuples of :mod:`repro.obs.trace` (or a loaded JSONL dump) and
reduces them to the questions an operator asks:

* *where does an op spend its time?* — :func:`stage_breakdown` summarises
  each lifecycle hop (issue→send, the batching-window wait, the transport
  latency, the pending-buffer wait) as p50/p90/p99 percentiles;
* *which deliveries were slow, and why?* — :func:`critical_paths` ranks
  complete chains by end-to-end latency with their per-stage split;
* *did the trace capture the run?* — :func:`coverage` counts applied
  destination copies whose full issue→apply chain reconstructs;
* *show me* — :func:`chrome_trace` renders the chains as Chrome
  ``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto): one
  row (thread) per source replica inside one process per destination.

A *span* here is one ``(uid, destination)`` pair — one destination copy of
one op — holding the earliest recorded time per stage; retransmitted or
duplicated copies therefore collapse onto the first attempt.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.host import LatencySummary
from ..core.protocol import UpdateId
from ..core.registers import ReplicaId
from .trace import APPLY, DELIVER, ISSUE, SEND, STAGES, WIRE, TraceEvent

SpanKey = Tuple[UpdateId, ReplicaId]

#: The consecutive lifecycle hops a complete remote chain traverses, with
#: the operator-facing meaning of each gap.
HOPS: Tuple[Tuple[str, str, str], ...] = (
    (ISSUE, SEND, "issue→send"),
    (SEND, WIRE, "batch window"),
    (WIRE, DELIVER, "transport"),
    (DELIVER, APPLY, "pending wait"),
)


def assemble_spans(events: Iterable[TraceEvent]) -> Dict[SpanKey, Dict[str, float]]:
    """Group events into per-``(uid, destination)`` spans.

    Each span maps stage → earliest recorded time; the op's single
    ``issue`` event is copied into every destination span so a chain is
    self-contained.  Local applies (destination == issuer) get a span too
    — they simply never have send/wire/deliver stages.
    """
    issues: Dict[UpdateId, float] = {}
    spans: Dict[SpanKey, Dict[str, float]] = {}
    for time, stage, uid, _src, dst in events:
        if stage == ISSUE:
            if uid not in issues or time < issues[uid]:
                issues[uid] = time
            continue
        span = spans.setdefault((uid, dst), {})
        if stage not in span or time < span[stage]:
            span[stage] = time
    for (uid, _dst), span in spans.items():
        issued_at = issues.get(uid)
        if issued_at is not None:
            span[ISSUE] = issued_at
    return spans


def complete_chains(
    spans: Dict[SpanKey, Dict[str, float]]
) -> Dict[SpanKey, Dict[str, float]]:
    """The remote spans holding every lifecycle stage (issue through apply)."""
    return {
        key: span
        for key, span in spans.items()
        if key[0][0] != key[1] and all(stage in span for stage in STAGES)
    }


def coverage(spans: Dict[SpanKey, Dict[str, float]]) -> Tuple[int, int]:
    """``(complete, applied)`` over remote destination copies.

    The denominator is every remote span that reached ``apply`` (the op
    was delivered and applied); the numerator counts those whose whole
    issue→apply chain reconstructs.  The acceptance bar is ≥99%.
    """
    applied = [
        span for (uid, dst), span in spans.items()
        if uid[0] != dst and APPLY in span
    ]
    complete = [
        span for span in applied if all(stage in span for stage in STAGES)
    ]
    return len(complete), len(applied)


def stage_breakdown(
    chains: Dict[SpanKey, Dict[str, float]]
) -> Dict[str, LatencySummary]:
    """Per-hop latency percentiles over complete chains (plus end-to-end)."""
    samples: Dict[str, List[float]] = {label: [] for _, _, label in HOPS}
    samples["end-to-end"] = []
    for span in chains.values():
        for earlier, later, label in HOPS:
            samples[label].append(span[later] - span[earlier])
        samples["end-to-end"].append(span[APPLY] - span[ISSUE])
    return {
        label: LatencySummary.from_samples(values)
        for label, values in samples.items()
    }


def critical_paths(
    chains: Dict[SpanKey, Dict[str, float]], top: int = 5
) -> List[dict]:
    """The ``top`` slowest complete chains with their per-stage split."""
    ranked = sorted(
        chains.items(), key=lambda item: item[1][APPLY] - item[1][ISSUE],
        reverse=True,
    )
    out = []
    for (uid, dst), span in ranked[:top]:
        out.append({
            "uid": uid,
            "issuer": uid[0],
            "destination": dst,
            "total": span[APPLY] - span[ISSUE],
            "stages": {
                label: span[later] - span[earlier]
                for earlier, later, label in HOPS
            },
        })
    return out


def chrome_trace(
    spans: Dict[SpanKey, Dict[str, float]],
    time_scale: float = 1_000_000.0,
) -> dict:
    """Render spans as a Chrome ``trace_event`` document.

    One *process* per destination replica, one *thread* per issuing
    replica; each lifecycle hop becomes a complete (``ph="X"``) event, so
    the flamegraph rows read as "traffic into replica D, by source".
    ``time_scale`` converts host time to microseconds (the trace_event
    unit): the default treats host time as seconds (live runs); for
    simulated-unit traces any positive scale renders proportionally.
    """
    replica_ids = sorted(
        {dst for (_uid, dst) in spans}
        | {uid[0] for (uid, _dst) in spans},
        key=lambda r: (isinstance(r, str), r),
    )
    pid_of = {rid: index + 1 for index, rid in enumerate(replica_ids)}
    events: List[dict] = []
    for rid in replica_ids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid_of[rid], "tid": 0,
            "args": {"name": f"replica {rid}"},
        })
    for (uid, dst), span in sorted(spans.items(), key=lambda item: repr(item[0])):
        pid = pid_of[dst]
        tid = pid_of[uid[0]]
        name = f"{uid[0]}:{uid[1]}"
        for earlier, later, label in HOPS:
            if earlier in span and later in span:
                events.append({
                    "name": f"{name} {label}",
                    "cat": label,
                    "ph": "X",
                    "ts": span[earlier] * time_scale,
                    "dur": max(0.0, (span[later] - span[earlier]) * time_scale),
                    "pid": pid,
                    "tid": tid,
                    "args": {"uid": list(uid), "stage": label},
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Channel byte books from a metrics dump
# ----------------------------------------------------------------------

def channel_byte_table(metric_records: Sequence[dict]) -> List[dict]:
    """Per-channel timestamp-bytes-vs-bound rows from a metrics JSONL dump.

    Consumes the records :meth:`~repro.obs.registry.MetricsRegistry.write_jsonl`
    produced (``repro_channel_*`` families): one row per channel with the
    shipped timestamp bytes per message and, when the dump carries the
    closed-form bound gauge, the realised bytes-per-bound-counter ratio —
    the per-channel reading of the paper's metadata-vs-bound claim.
    """
    channels: Dict[Tuple[str, str], Dict[str, float]] = {}
    for record in metric_records:
        name = record.get("name", "")
        if not name.startswith("repro_channel_"):
            continue
        labels = record.get("labels", {})
        if "src" not in labels or "dst" not in labels:
            continue
        key = (labels["src"], labels["dst"])
        channels.setdefault(key, {})[name] = record.get("value", 0.0)
    rows = []
    for (src, dst), values in sorted(channels.items()):
        messages = values.get("repro_channel_messages_total", 0.0)
        ts_bytes = values.get("repro_channel_timestamp_bytes_total", 0.0)
        bound = values.get("repro_channel_bound_counters")
        row = {
            "src": src,
            "dst": dst,
            "messages": int(messages),
            "timestamp_bytes": int(ts_bytes),
            "payload_bytes": int(values.get("repro_channel_payload_bytes_total", 0.0)),
            "header_bytes": int(values.get("repro_channel_header_bytes_total", 0.0)),
            "ts_bytes_per_message": ts_bytes / messages if messages else 0.0,
            "bound_counters": bound,
            "bytes_per_bound_counter": (
                ts_bytes / (messages * bound) if messages and bound else None
            ),
        }
        rows.append(row)
    return rows


def epoch_byte_table(metric_records: Sequence[dict]) -> List[dict]:
    """Per-epoch timestamp-bytes-vs-bound rows from a metrics JSONL dump.

    Consumes the ``repro_epoch_*`` families
    :func:`~repro.obs.publish.publish_epoch_segments` emits: one row per
    configuration epoch with the shipped timestamp bytes and metadata
    counters per message and, when the dump carries the closed-form
    bound gauge, the realised counters-per-message against the epoch's
    worst-sender budget — the reconfiguration-time reading of the
    paper's metadata-vs-bound claim (it must hold in every epoch a
    schedule or controller installs, not just the starting one).
    """
    epochs: Dict[int, Dict[str, float]] = {}
    for record in metric_records:
        name = record.get("name", "")
        if not name.startswith("repro_epoch_"):
            continue
        labels = record.get("labels", {})
        if "epoch" not in labels:
            continue
        key = int(labels["epoch"])
        epochs.setdefault(key, {})[name] = record.get("value", 0.0)
    rows = []
    for epoch, values in sorted(epochs.items()):
        messages = values.get("repro_epoch_messages_total", 0.0)
        ts_bytes = values.get("repro_epoch_timestamp_bytes_total", 0.0)
        counters = values.get("repro_epoch_counters_total", 0.0)
        bound = values.get("repro_epoch_bound_counters")
        rows.append(
            {
                "epoch": epoch,
                "start": values.get("repro_epoch_start", 0.0),
                "end": values.get("repro_epoch_end", 0.0),
                "replicas": int(values.get("repro_epoch_replicas", 0.0)),
                "messages": int(messages),
                "timestamp_bytes": int(ts_bytes),
                "counters": int(counters),
                "ts_bytes_per_message": ts_bytes / messages if messages else 0.0,
                "counters_per_message": counters / messages if messages else 0.0,
                "bound_counters": bound,
                "counters_vs_bound": (
                    counters / (messages * bound) if messages and bound else None
                ),
            }
        )
    return rows


#: The node-level transport/durability telemetry families, in table order.
_NODE_TRANSPORT_METRICS = (
    "repro_node_peer_streams",
    "repro_node_open_streams",
    "repro_node_inbound_connections",
    "repro_node_send_queue_depth",
    "repro_node_unacked",
    "repro_node_wal_bytes",
    "repro_node_wal_records_total",
    "repro_node_wal_compactions_total",
)


def node_transport_table(metric_records: Sequence[dict]) -> List[dict]:
    """Per-node transport-footprint rows from a metrics JSONL dump.

    Consumes the node-level families a multi-tenant :class:`LiveNode`
    emits (``node`` label, no ``replica``): the host-pair stream counts
    that make the socket footprint O(hosts²), the queue/unacked depths,
    and the WAL counters.  One row per node, sorted by node id."""
    nodes: Dict[str, Dict[str, float]] = {}
    for record in metric_records:
        name = record.get("name", "")
        if name not in _NODE_TRANSPORT_METRICS:
            continue
        labels = record.get("labels", {})
        if "node" not in labels:
            continue
        nodes.setdefault(labels["node"], {})[name] = record.get("value", 0.0)
    rows = []
    for node, values in sorted(nodes.items()):
        rows.append({
            "node": node,
            "peer_streams": int(values.get("repro_node_peer_streams", 0.0)),
            "open_streams": int(values.get("repro_node_open_streams", 0.0)),
            "inbound_connections": int(
                values.get("repro_node_inbound_connections", 0.0)
            ),
            "send_queue_depth": int(
                values.get("repro_node_send_queue_depth", 0.0)
            ),
            "unacked": int(values.get("repro_node_unacked", 0.0)),
            "wal_bytes": int(values.get("repro_node_wal_bytes", 0.0)),
            "wal_records": int(
                values.get("repro_node_wal_records_total", 0.0)
            ),
            "wal_compactions": int(
                values.get("repro_node_wal_compactions_total", 0.0)
            ),
        })
    return rows


def channel_timelines(
    telemetry: Dict[ReplicaId, List[Tuple[float, ReplicaId, list]]],
    metric: str = "repro_node_wire_timestamp_bytes_total",
) -> Dict[Tuple[str, str], List[Tuple[float, float]]]:
    """Per-channel cumulative byte timelines from live TELEMETRY streams.

    Each node's periodic samples carry cumulative per-channel byte
    counters; this pivots them into ``channel → [(time, bytes), …]``
    series — timestamp bytes *over the run*, not only at the end.
    """
    series: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for samples_by_node in telemetry.values():
        for sampled_at, _replica, samples in samples_by_node:
            for name, labels, value in samples:
                if name != metric:
                    continue
                label_map = dict(labels)
                key = (label_map.get("src", "?"), label_map.get("dst", "?"))
                series.setdefault(key, []).append((sampled_at, value))
    for points in series.values():
        points.sort()
    return series


def analyze_file(path: str, metrics_path: Optional[str] = None) -> dict:
    """One-call analysis of a JSONL trace dump (plus optional metrics dump)."""
    from .registry import load_metrics_jsonl
    from .trace import load_trace_jsonl

    events = load_trace_jsonl(path)
    spans = assemble_spans(events)
    chains = complete_chains(spans)
    complete, applied = coverage(spans)
    result = {
        "events": len(events),
        "spans": len(spans),
        "applied": applied,
        "complete": complete,
        "coverage": complete / applied if applied else 1.0,
        "breakdown": stage_breakdown(chains),
        "critical_paths": critical_paths(chains),
        "channels": [],
    }
    if metrics_path is not None:
        result["channels"] = channel_byte_table(load_metrics_jsonl(metrics_path))
    return result
