"""Unified observability: causal tracing, metrics registry, trace analysis.

Three legs, one package:

* :mod:`repro.obs.trace` — the message-lifecycle recorder every
  instrumented layer stamps into (zero-cost when disabled);
* :mod:`repro.obs.registry` / :mod:`repro.obs.publish` — a labelled
  counter/gauge/histogram registry with JSONL and Prometheus export,
  plus publishers for every existing metrics producer;
* :mod:`repro.obs.analyze` — span assembly, per-stage latency
  breakdowns, critical paths and Chrome ``trace_event`` export
  (the library behind ``tools/trace_report.py``).
"""

from .analyze import (
    HOPS,
    analyze_file,
    assemble_spans,
    channel_byte_table,
    channel_timelines,
    chrome_trace,
    complete_chains,
    coverage,
    critical_paths,
    epoch_byte_table,
    node_transport_table,
    stage_breakdown,
)
from .publish import (
    attach_encoder_observer,
    publish_channel_wire_stats,
    publish_epoch_segments,
    publish_network_stats,
    publish_node_counters,
    publish_run_metrics,
    registry_for_live,
    registry_for_sim,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fold_samples,
    load_metrics_jsonl,
)
from .trace import (
    APPLY,
    DELIVER,
    ISSUE,
    SEND,
    STAGES,
    WIRE,
    TraceEvent,
    TraceRecorder,
    event_from_dict,
    event_to_dict,
    load_trace_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "APPLY",
    "DEFAULT_BUCKETS",
    "DELIVER",
    "HOPS",
    "ISSUE",
    "SEND",
    "STAGES",
    "WIRE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRecorder",
    "analyze_file",
    "assemble_spans",
    "attach_encoder_observer",
    "channel_byte_table",
    "channel_timelines",
    "chrome_trace",
    "complete_chains",
    "coverage",
    "critical_paths",
    "epoch_byte_table",
    "event_from_dict",
    "event_to_dict",
    "fold_samples",
    "load_metrics_jsonl",
    "load_trace_jsonl",
    "node_transport_table",
    "publish_channel_wire_stats",
    "publish_epoch_segments",
    "publish_network_stats",
    "publish_node_counters",
    "publish_run_metrics",
    "registry_for_live",
    "registry_for_sim",
    "stage_breakdown",
    "write_trace_jsonl",
]
