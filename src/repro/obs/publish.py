"""Publishers: every existing metrics producer → one :class:`MetricsRegistry`.

``RunMetrics`` and ``NetworkStats`` predate the registry and stay the
runtime recording structures (cheap plain fields on the hot path); these
functions project them into registry families after (or during) a run.
Metric names follow the Prometheus conventions: ``repro_`` prefix,
``_total`` suffix on counters, units spelled out.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Tuple

from ..core.host import RunMetrics
from ..core.registers import ReplicaId
from ..core.share_graph import ShareGraph
from ..lower_bounds import algorithm_counters
from .registry import MetricsRegistry

Channel = Tuple[ReplicaId, ReplicaId]

#: Histogram buckets for apply/operation latencies, in host time units
#: (simulated units or wall-clock seconds — both spread well over these).
LATENCY_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 10.0, 50.0, 100.0)


def publish_run_metrics(registry: MetricsRegistry, metrics: RunMetrics,
                        **labels: object) -> None:
    """Project one :class:`RunMetrics` into the registry."""
    registry.counter("repro_writes_total", "client writes", **labels).inc(
        metrics.writes)
    registry.counter("repro_reads_total", "client reads", **labels).inc(
        metrics.reads)
    registry.counter("repro_applies_total", "remote applies", **labels).inc(
        metrics.applies)
    registry.counter("repro_crashes_total", "injected crashes", **labels).inc(
        metrics.crashes)
    registry.counter("repro_restarts_total", "replica restarts", **labels).inc(
        metrics.restarts)
    registry.counter(
        "repro_rejected_operations_total",
        "operations rejected at down/migrating replicas", **labels,
    ).inc(metrics.rejected_operations)
    latency = registry.histogram(
        "repro_apply_latency", "issue-to-remote-apply latency (host time)",
        buckets=LATENCY_BUCKETS, **labels,
    )
    for sample in metrics.apply_latencies:
        latency.observe(sample)
    blocking = registry.histogram(
        "repro_operation_latency", "client-observed operation blocking time",
        buckets=LATENCY_BUCKETS, **labels,
    )
    for sample in metrics.operation_latencies:
        blocking.observe(sample)
    for rid, depth in sorted(metrics.max_pending.items()):
        registry.gauge(
            "repro_max_pending", "peak pending-buffer occupancy",
            replica=rid, **labels,
        ).set(depth)


def publish_channel_wire_stats(
    registry: MetricsRegistry,
    per_channel: Mapping[Channel, Any],
    graph: Optional[ShareGraph] = None,
    bounds: bool = True,
    **labels: object,
) -> None:
    """Per-channel byte books (``ChannelWireStats``-shaped objects).

    With a ``graph``, also publishes the paper's closed-form metadata bound
    for each channel's sender (``algorithm_counters``): the per-message
    counter budget the shipped timestamp bytes should track — the
    byte-vs-bound comparison ``tools/trace_report.py`` renders.  Pass
    ``bounds=False`` to skip that: ``|E_i|`` needs the exact Definition 5
    loop enumeration, which is exponential on dense share graphs (a
    64-replica clique cannot finish), while the byte books themselves are
    free.
    """
    counters_of: dict = {}
    for (src, dst), stats in sorted(per_channel.items()):
        channel_labels = dict(labels, src=src, dst=dst)
        registry.counter(
            "repro_channel_messages_total", "messages on this channel",
            **channel_labels).inc(stats.messages)
        registry.counter(
            "repro_channel_batches_total", "batches flushed on this channel",
            **channel_labels).inc(stats.batches)
        registry.counter(
            "repro_channel_header_bytes_total", "envelope/identity bytes",
            **channel_labels).inc(stats.header_bytes)
        registry.counter(
            "repro_channel_timestamp_bytes_total", "timestamp-frame bytes",
            **channel_labels).inc(stats.timestamp_bytes)
        registry.counter(
            "repro_channel_payload_bytes_total", "payload-value bytes",
            **channel_labels).inc(stats.payload_bytes)
        if bounds and graph is not None and src in graph.replica_ids:
            if src not in counters_of:
                counters_of[src] = algorithm_counters(graph, src)
            registry.gauge(
                "repro_channel_bound_counters",
                "closed-form metadata bound of the sender (counters/message)",
                **channel_labels,
            ).set(counters_of[src])


def publish_epoch_segments(
    registry: MetricsRegistry,
    segments: Sequence[Mapping[str, Any]],
    bounds: bool = True,
    **labels: object,
) -> None:
    """Per-epoch traffic books (``ReconfigManager.epoch_segments`` rows).

    One label set per configuration epoch: the messages, timestamp-frame
    bytes and metadata counters shipped while that configuration was
    active, its activation span, and — with ``bounds=True`` — the
    closed-form counter budget of the epoch's share graph (the worst
    sender's ``algorithm_counters``, the per-message metadata bound the
    shipped traffic should respect in *every* epoch, including the ones
    a controller installed mid-run).  Pass ``bounds=False`` to skip the
    exponential ``|E_i|`` enumeration on dense share graphs.
    """
    for segment in segments:
        epoch_labels = dict(labels, epoch=segment["epoch"])
        registry.counter(
            "repro_epoch_messages_total",
            "messages sent while this epoch was active",
            **epoch_labels).inc(segment["messages"])
        registry.counter(
            "repro_epoch_timestamp_bytes_total",
            "timestamp-frame bytes sent while this epoch was active",
            **epoch_labels).inc(segment["timestamp_bytes"])
        registry.counter(
            "repro_epoch_counters_total",
            "metadata counters shipped while this epoch was active",
            **epoch_labels).inc(segment["counters"])
        registry.gauge(
            "repro_epoch_start", "epoch activation time (host time)",
            **epoch_labels).set(segment["start"])
        registry.gauge(
            "repro_epoch_end", "epoch retirement time (host time)",
            **epoch_labels).set(segment["end"])
        graph = segment.get("share_graph")
        if graph is None:
            continue
        registry.gauge(
            "repro_epoch_replicas", "replicas in the epoch's share graph",
            **epoch_labels).set(graph.num_replicas)
        if bounds:
            worst = max(
                (algorithm_counters(graph, rid) for rid in graph.replica_ids),
                default=0,
            )
            registry.gauge(
                "repro_epoch_bound_counters",
                "closed-form metadata bound of the epoch's worst sender "
                "(counters/message)",
                **epoch_labels,
            ).set(worst)


def publish_network_stats(registry: MetricsRegistry, stats: Any,
                          graph: Optional[ShareGraph] = None,
                          bounds: bool = True,
                          **labels: object) -> None:
    """Project one :class:`~repro.sim.engine.NetworkStats` into the registry."""
    for name, help_text in (
        ("messages_sent", "messages handed to the transport"),
        ("messages_delivered", "messages delivered"),
        ("messages_dropped", "messages lost by the channel"),
        ("messages_duplicated", "extra copies injected by the channel"),
        ("retransmissions", "copies re-sent by the reliability layer"),
        ("batches_sent", "batches flushed onto the wire"),
        ("header_bytes_sent", "envelope/identity bytes on the wire"),
        ("timestamp_bytes_sent", "timestamp-frame bytes on the wire"),
        ("payload_bytes_sent", "payload-value bytes on the wire"),
        ("timestamp_bytes_full", "what timestamps would cost without deltas"),
        ("delta_frames_sent", "timestamp frames shipped as deltas"),
        ("full_frames_sent", "timestamp frames shipped in full"),
        ("metadata_counters_sent", "timestamp counters shipped"),
    ):
        registry.counter(f"repro_{name}_total", help_text, **labels).inc(
            getattr(stats, name))
    publish_channel_wire_stats(registry, stats.per_channel, graph=graph,
                               bounds=bounds, **labels)


#: Live node counters that are cumulative (TELEMETRY re-sends totals).
_NODE_COUNTER_HELP = {
    "ops_done": "client operations completed",
    "issued": "updates issued locally",
    "enqueued": "messages handed to channel send queues",
    "sent": "messages flushed onto the wire (retransmissions included)",
    "received": "messages read off the wire (duplicates included)",
    "delivered": "first receipts (duplicates suppressed)",
    "duplicates": "duplicate copies suppressed",
    "retransmissions": "resend-timer re-offers",
    "resyncs": "SYNC anti-entropy exchanges answered",
    "delta_frames": "timestamp frames shipped as deltas",
    "full_frames": "timestamp frames shipped in full (delta fallbacks)",
}


def publish_node_counters(registry: MetricsRegistry, replica_id: ReplicaId,
                          counters: Mapping[str, int],
                          **labels: object) -> None:
    """One live node's counter dict → per-replica counter families.

    Report counters are cumulative totals from the node's (latest)
    lifetime — the same series its TELEMETRY stream re-sends — so they go
    through the :func:`~repro.obs.registry.fold_samples` counter-reset
    path rather than a blind ``inc``: published after the node's telemetry
    has been folded, a report adds only the increments the last telemetry
    sample had not seen yet (and a post-restart report, smaller than the
    pre-crash high-water mark, folds as a reset) instead of
    double-counting the lifetime.
    """
    from .registry import fold_samples

    for name, value in sorted(counters.items()):
        help_text = _NODE_COUNTER_HELP.get(name, "")
        full_name = f"repro_node_{name}_total"
        # Declare the family with its help text; folding only creates it.
        registry.counter(full_name, help_text, replica=replica_id, **labels)
        sample_labels = tuple(
            sorted((k, str(v)) for k, v in
                   dict(labels, replica=replica_id).items())
        )
        fold_samples(registry, [(full_name, sample_labels, float(value))])


def attach_encoder_observer(encoder: Any, registry: MetricsRegistry,
                            **labels: object) -> None:
    """Wire a :class:`~repro.wire.channel.ChannelDeltaEncoder` to a registry.

    Every encoded frame increments per-channel delta/full-frame counters —
    the delta-encoder fallback rate, observable live rather than only from
    end-of-run aggregates.  Uses the encoder's zero-cost-when-unset
    ``on_frame`` hook.
    """

    def on_frame(channel: Channel, sizes: Any) -> None:
        src, dst = channel
        if sizes.delta_frames:
            registry.counter(
                "repro_encoder_delta_frames_total",
                "timestamp frames delta-encoded", src=src, dst=dst, **labels,
            ).inc(sizes.delta_frames)
        if sizes.full_frames:
            registry.counter(
                "repro_encoder_full_frames_total",
                "timestamp frames sent in full (fallbacks)",
                src=src, dst=dst, **labels,
            ).inc(sizes.full_frames)

    encoder.on_frame = on_frame


def registry_for_sim(host: Any, graph: Optional[ShareGraph] = None,
                     bounds: bool = True, **labels: object) -> MetricsRegistry:
    """Everything a finished simulated run publishes, in one registry.

    ``bounds=False`` skips the per-sender ``|E_i|`` bound gauges — use it
    on dense share graphs where the exact Definition 5 loop enumeration
    is intractable (e.g. large cliques run through the Section 5
    vector-compressed replica).
    """
    registry = MetricsRegistry()
    publish_run_metrics(registry, host.metrics, **labels)
    publish_network_stats(
        registry, host.transport.stats,
        graph=graph if graph is not None else host.share_graph,
        bounds=bounds, **labels,
    )
    return registry


def registry_for_live(result: Any, bounds: bool = True,
                      **labels: object) -> MetricsRegistry:
    """Everything a finished live run publishes, in one registry.

    Folds the merged :class:`RunMetrics`, the per-channel wire books, the
    TELEMETRY sample streams (in sample order, so counter resets across a
    kill/restart fold correctly) and, last, every node's final report
    counters — which share series with the telemetry stream and therefore
    fold *after* it through the same counter-reset state.
    """
    from .registry import fold_samples

    registry = MetricsRegistry()
    publish_run_metrics(registry, result.metrics, **labels)
    publish_channel_wire_stats(registry, result.channel_wire_stats(),
                               graph=result.share_graph, bounds=bounds,
                               **labels)
    for _, frames in sorted(result.telemetry.items()):
        for _, _, samples in sorted(frames, key=lambda frame: frame[0]):
            fold_samples(registry, samples)
    for rid, report in sorted(result.reports.items()):
        publish_node_counters(registry, rid, report.get("counters", {}),
                              **labels)
    return registry


__all__ = [
    "attach_encoder_observer",
    "publish_channel_wire_stats",
    "publish_network_stats",
    "publish_node_counters",
    "publish_run_metrics",
    "registry_for_live",
    "registry_for_sim",
]
