"""A small metrics registry: counters, gauges and histograms with labels.

The observability layer's second leg (next to the trace recorder): every
producer — :class:`~repro.core.host.RunMetrics`,
:class:`~repro.sim.engine.NetworkStats`, the live node's queue depths and
reliability counters — publishes into one :class:`MetricsRegistry`
(see :mod:`repro.obs.publish`), which then exports two ways:

* :meth:`MetricsRegistry.write_jsonl` / :meth:`MetricsRegistry.snapshot`
  — structured events, one JSON record per ``(metric, label set)``, the
  machine-readable dump ``tools/trace_report.py`` joins with traces;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format, for scraping or eyeballing.

The model is deliberately the Prometheus one (families keyed by name,
children keyed by label values, monotone counters vs. settable gauges vs.
bucketed histograms) but with zero dependencies and no global state: a
registry is just an object you create, fill, and export.
"""

from __future__ import annotations

import json
import math
from typing import IO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: latency-ish, in host time units.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: LabelItems) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (one labelled child)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ConfigurationError("a histogram needs at least one bucket")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


class _Family:
    """One named metric family: kind, help text, children by label values."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: Dict[LabelItems, object] = {}

    def labels(self, **labels: object):
        key: LabelItems = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self.children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets or DEFAULT_BUCKETS)
            self.children[key] = child
        return child


class MetricsRegistry:
    """A collection of metric families, exportable as JSONL or Prometheus text."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        #: Last cumulative value seen per ``(name, labels)`` series by
        #: :func:`fold_samples` — the state behind counter-reset folding.
        self._fold_last_seen: Dict[Tuple[str, LabelItems], float] = {}

    # ------------------------------------------------------------------
    # Declaring / fetching families
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Sequence[float]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"not a {kind}"
            )
        return family

    def counter(self, name: str, help_text: str = "", **labels: object) -> Counter:
        """The counter child for ``(name, labels)`` (created on first use)."""
        return self._family(name, "counter", help_text).labels(**labels)

    def gauge(self, name: str, help_text: str = "", **labels: object) -> Gauge:
        """The gauge child for ``(name, labels)`` (created on first use)."""
        return self._family(name, "gauge", help_text).labels(**labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        """The histogram child for ``(name, labels)`` (created on first use)."""
        return self._family(name, "histogram", help_text, buckets).labels(**labels)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """One structured record per ``(family, label set)``, sorted by name."""
        out: List[dict] = []
        for name in sorted(self._families):
            family = self._families[name]
            for labels in sorted(family.children):
                child = family.children[labels]
                record = {
                    "name": name,
                    "kind": family.kind,
                    "labels": dict(labels),
                }
                if isinstance(child, Histogram):
                    record["count"] = child.count
                    record["sum"] = child.total
                    record["buckets"] = [
                        ["+Inf" if math.isinf(bound) else bound, count]
                        for bound, count in child.cumulative()
                    ]
                else:
                    record["value"] = child.value
                out.append(record)
        return out

    def write_jsonl(self, path_or_file: Union[str, IO[str]]) -> int:
        """Dump :meth:`snapshot` as JSON Lines; returns the record count."""
        records = self.snapshot()
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        else:
            for record in records:
                path_or_file.write(json.dumps(record) + "\n")
        return len(records)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every family."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for labels in sorted(family.children):
                child = family.children[labels]
                if isinstance(child, Histogram):
                    for bound, count in child.cumulative():
                        le = _format_value(bound)
                        bucket_labels = labels + (("le", le),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} "
                        f"{_format_value(child.total)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def load_metrics_jsonl(path_or_file: Union[str, IO[str]]) -> List[dict]:
    """Load a :meth:`MetricsRegistry.write_jsonl` dump back into records."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return load_metrics_jsonl(handle)
    records: List[dict] = []
    for line in path_or_file:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def fold_samples(registry: MetricsRegistry,
                 samples: Iterable[Tuple[str, LabelItems, float]]) -> None:
    """Fold flat ``(name, labels, value)`` samples (a TELEMETRY payload)
    into a registry.  Names ending in ``_total`` are cumulative counters
    folded with Prometheus counter-reset semantics: the registry tracks
    the last value seen per ``(name, labels)`` series and accumulates
    deltas, treating a decrease as a restart (the source died, its counter
    reset to zero and regrew).  A plain ``max(seen, value)`` fold would
    freeze each series at its pre-crash high-water mark and silently drop
    every post-restart increment; delta accumulation counts both
    lifetimes.  Everything else is a gauge and keeps the last value."""
    last_seen = registry._fold_last_seen
    for name, labels, value in samples:
        if name.endswith("_total"):
            child = registry.counter(name, **dict(labels))
            key = (name, tuple(sorted((k, str(v)) for k, v in labels)))
            previous = last_seen.get(key)
            if previous is None or value < previous:
                # First sample of the series, or a reset: the cumulative
                # value is entirely new traffic.
                delta = value
            else:
                delta = value - previous
            last_seen[key] = value
            child.value += delta
        else:
            registry.gauge(name, **dict(labels)).set(value)
