"""Causal message-lifecycle tracing: one op's path, stage by stage.

The protocol already carries a globally unique identity on every wire
message — the update id ``(issuer, seq)`` minted when the op is issued —
so tracing needs no id machinery of its own: the uid *is* the trace id,
and every layer that touches a message can stamp ``(time, stage, uid,
src, dst)`` into a :class:`TraceRecorder`.  The recorded stages mirror
the message lifecycle documented in ``docs/ARCHITECTURE.md``:

``issue``
    The op executes at its issuing replica (once per uid).
``send``
    One destination copy is handed to the transport (simulator) or joins
    its channel's FIFO send queue (live runtime) — one event per
    ``(uid, destination)``.
``wire``
    The copy's batching window flushes and the encoded frame goes on the
    wire.  ``wire − send`` is the batching-window wait.
``deliver``
    The copy arrives at its destination (kernel delivery event, or read
    off the TCP socket).  ``deliver − wire`` is the transport latency.
``apply``
    The destination's apply loop applies the update.  ``apply − deliver``
    is the pending-buffer (causal-wait) time.

Times are *host time*: simulated units in the simulator, wall-clock
seconds relative to the cluster's shared ``clock_origin`` in the live
runtime — the same convention :class:`~repro.core.host.RunMetrics` uses,
so live recorders on different processes produce mutually comparable
timestamps and the launcher can join their events by uid exactly the way
it joins apply latencies.

The hooks are zero-cost when disabled: every instrumented layer keeps a
``tracer`` attribute that is ``None`` by default and guards each record
with one ``is not None`` check (the overhead contract is gated by
``benchmarks/bench_protocol_micro.py``).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Tuple, Union

from ..core.protocol import UpdateId
from ..core.registers import ReplicaId

#: The lifecycle stages, in causal order.
ISSUE = "issue"
SEND = "send"
WIRE = "wire"
DELIVER = "deliver"
APPLY = "apply"
STAGES: Tuple[str, ...] = (ISSUE, SEND, WIRE, DELIVER, APPLY)

#: One recorded event: ``(time, stage, uid, src, dst)``.
TraceEvent = Tuple[float, str, UpdateId, ReplicaId, ReplicaId]


class TraceRecorder:
    """An append-only span/event recorder (one per host or node process).

    Deliberately minimal: the hot-path cost of an enabled recorder is one
    tuple construction and one list append per event, and a disabled
    recorder costs the caller a single ``is not None`` check.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, stage: str, uid: UpdateId, src: ReplicaId,
               dst: ReplicaId, time: float) -> None:
        """Stamp one lifecycle event (hot path)."""
        self.events.append((time, stage, uid, src, dst))

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


def event_to_dict(event: TraceEvent) -> dict:
    """One event as the JSONL record ``trace_report`` consumes."""
    time, stage, uid, src, dst = event
    return {"t": time, "stage": stage, "uid": list(uid), "src": src, "dst": dst}


def event_from_dict(record: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict` (uid back to a hashable tuple)."""
    issuer, seq = record["uid"]
    return (record["t"], record["stage"], (issuer, seq),
            record["src"], record["dst"])


def write_trace_jsonl(events: Iterable[TraceEvent],
                      path_or_file: Union[str, IO[str]]) -> int:
    """Dump events as JSON Lines (one event per line); returns the count.

    Events are written sorted by time so dumps from several recorders
    (e.g. the per-process recorders of a live run) can be concatenated
    into one coherent trace by merging their event lists first.
    """
    ordered = sorted(events)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            return write_trace_jsonl(ordered, handle)
    for event in ordered:
        path_or_file.write(json.dumps(event_to_dict(event)) + "\n")
    return len(ordered)


def load_trace_jsonl(path_or_file: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a JSONL trace dump back into event tuples (blank lines skipped)."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return load_trace_jsonl(handle)
    events: List[TraceEvent] = []
    for line in path_or_file:
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events
