"""The replica (server) side of the client–server algorithm (Appendix E.5).

A server replica maintains an edge-indexed timestamp over its *augmented*
timestamp graph ``Ê_i`` and serves client requests that arrive with the
client's timestamp ``µ``:

* a read or write request is buffered until predicate
  ``J1 = J2``: ``τ_i[e_ji] ≥ µ[e_ji]`` for every incoming edge ``e_ji ∈ Ê_i``
  — i.e. the server has caught up with everything the client has already
  observed elsewhere;
* a served write runs ``advance(i, τ, c, µ, x, v)``: the counters towards
  co-owners of ``x`` are incremented and every other commonly indexed entry
  absorbs ``max(τ, µ)`` (the client may carry dependencies the server has not
  seen as updates yet);
* inter-replica update messages use predicate ``J3`` and ``merge3``, which
  are exactly the peer-to-peer predicate ``J`` and ``merge``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..core.protocol import EventKind, Update, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import TimestampGraph
from ..core.timestamps import EdgeTimestamp
from .augmented import AugmentedShareGraph, ClientId, augmented_timestamp_edges


@dataclass
class ClientRequest:
    """A buffered client read or write request."""

    kind: str
    client_id: ClientId
    register: Register
    value: Any
    client_timestamp: EdgeTimestamp
    sim_time: float = 0.0


@dataclass
class ClientResponse:
    """The server's reply to a served client request."""

    kind: str
    client_id: ClientId
    register: Register
    value: Any
    server_timestamp: EdgeTimestamp
    update_messages: Tuple[UpdateMessage, ...] = ()
    #: The update a served *write* issued (``None`` for reads).  Carried
    #: explicitly so the cluster never has to infer it from the server's
    #: apply log, which concurrent serves/applies may have extended since.
    issued: Optional[Update] = None


class ClientServerReplica(EdgeIndexedReplica):
    """A server replica of the client–server architecture."""

    def __init__(
        self,
        augmented: AugmentedShareGraph,
        replica_id: ReplicaId,
    ) -> None:
        share_graph = augmented.share_graph
        edges = augmented_timestamp_edges(augmented, replica_id)
        tgraph = TimestampGraph.from_edges(share_graph, replica_id, edges)
        super().__init__(share_graph, replica_id, timestamp_graph=tgraph)
        self.augmented = augmented
        #: Client requests buffered behind predicate J1/J2.
        self.waiting_requests: List[ClientRequest] = []
        #: Responses produced by :meth:`serve_waiting`, awaiting pickup by the caller.
        self.completed_responses: List[ClientResponse] = []

    #: Buffered client requests/responses live in server memory only: a
    #: crash drops them (clients see the operation rejected/timed out), so
    #: they are excluded from durable snapshots and reset on restore.
    _VOLATILE_STATE = ("waiting_requests", "completed_responses")

    def _reset_volatile(self) -> None:
        self.waiting_requests = []
        self.completed_responses = []

    # ------------------------------------------------------------------
    # Client request handling
    # ------------------------------------------------------------------
    def request_ready(self, request: ClientRequest) -> bool:
        """Predicate ``J1 = J2``: the server has seen everything the client has."""
        i = self.replica_id
        for e in self.timestamp.edges:
            if e[1] != i:
                continue
            if self.timestamp.get(e) < request.client_timestamp.get(e):
                return False
        return True

    def submit(self, request: ClientRequest) -> Optional[ClientResponse]:
        """Submit a client request; serve it now if possible, else buffer it."""
        if self.request_ready(request):
            return self._serve(request)
        self.waiting_requests.append(request)
        return None

    def serve_waiting(self, sim_time: float = 0.0) -> List[ClientResponse]:
        """Serve every buffered request whose predicate now holds.

        Served responses are both returned and queued on
        :attr:`completed_responses` so a caller that was not the one driving
        the simulation step can still collect them with
        :meth:`take_response`.
        """
        served: List[ClientResponse] = []
        progress = True
        while progress:
            progress = False
            for request in list(self.waiting_requests):
                if self.request_ready(request):
                    self.waiting_requests.remove(request)
                    request.sim_time = sim_time
                    response = self._serve(request)
                    served.append(response)
                    self.completed_responses.append(response)
                    progress = True
        return served

    def take_response(self, client_id: ClientId, kind: str,
                      register: Register) -> Optional[ClientResponse]:
        """Pop the first completed response matching a client's outstanding request."""
        for response in self.completed_responses:
            if (
                response.client_id == client_id
                and response.kind == kind
                and response.register == register
            ):
                self.completed_responses.remove(response)
                return response
        return None

    def _serve(self, request: ClientRequest) -> ClientResponse:
        if request.kind == "read":
            value = self.read(request.register, sim_time=request.sim_time)
            return ClientResponse(
                kind="read",
                client_id=request.client_id,
                register=request.register,
                value=value,
                server_timestamp=self.timestamp,
            )
        messages = self.write_for_client(
            request.register,
            request.value,
            request.client_timestamp,
            sim_time=request.sim_time,
        )
        return ClientResponse(
            kind="write",
            client_id=request.client_id,
            register=request.register,
            value=request.value,
            server_timestamp=self.timestamp,
            update_messages=tuple(messages),
            issued=self.applied[-1],
        )

    # ------------------------------------------------------------------
    # The client–server advance
    # ------------------------------------------------------------------
    def write_for_client(
        self,
        register: Register,
        value: Any,
        client_timestamp: EdgeTimestamp,
        sim_time: float = 0.0,
    ) -> List[UpdateMessage]:
        """Apply a served client write: ``advance(i, τ, c, µ, x, v)`` + multicast.

        Differs from the peer-to-peer write in that the non-incremented
        entries of the new timestamp absorb ``max(τ, µ)``.
        """
        i = self.replica_id
        # Absorb the client's knowledge on every commonly indexed edge first,
        # then increment the edges towards co-owners of the register.  No
        # pending-index notification is needed: the serve is gated by
        # predicate J1/J2 (τ_i ≥ µ on every incoming edge), so this merge
        # can only raise entries no buffered inter-replica update waits on.
        self.timestamp = self.timestamp.merged_with(client_timestamp)
        self.issued_count += 1
        update = Update(i, self.issued_count, register, value)
        self.store[register] = value
        bumped = [
            (i, k)
            for (j, k) in self.timestamp_graph.edges
            if j == i and register in self.share_graph.shared_registers(i, k)
        ]
        self.timestamp = self.timestamp.incremented(bumped)
        self.applied.append(update)
        self._applied_uids.add(update.uid)
        self._record(EventKind.ISSUE, update, register, sim_time)
        return [
            UpdateMessage(
                update=update,
                sender=i,
                destination=dest,
                metadata=self.timestamp,
                metadata_size=self.timestamp.size_counters(),
                epoch=self.epoch,
            )
            for dest in self.destinations(register)
        ]

    # ------------------------------------------------------------------
    # Epoch migration
    # ------------------------------------------------------------------
    def _rebuild_timestamp_graph(self, new_graph: ShareGraph) -> TimestampGraph:
        """``Ê_i`` over the new augmented graph (set by :meth:`migrate_augmented`)."""
        edges = augmented_timestamp_edges(self.augmented, self.replica_id)
        return TimestampGraph.from_edges(new_graph, self.replica_id, edges)

    def migrate_augmented(self, new_augmented: AugmentedShareGraph,
                          epoch: int) -> None:
        """Adopt a new configuration (server side).

        Recomputes the augmented timestamp graph against the new share
        graph *and* the new client assignment (a leave can change both),
        projects the timestamp, and drops buffered client requests whose
        register this server no longer stores — their clients see the
        operation rejected, exactly like a crash would reject it.
        """
        self.augmented = new_augmented
        self.migrate(new_augmented.share_graph, epoch)
        self.waiting_requests = [
            request
            for request in self.waiting_requests
            if request.register in self.registers
        ]
