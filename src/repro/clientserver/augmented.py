"""Augmented share graphs, loops and timestamp graphs (Section 6, Appendix E).

In the client–server architecture (Figure 1b) a client may access several
replicas, and by doing so it propagates causal dependencies between replicas
that share no register.  The *augmented share graph* ``Ĝ`` adds a pair of
directed edges between every two replicas some client can access
(Definition 16); the ``(i, e_jk)``-loop conditions are relaxed so that a
client link can stand in for a shared register on the r-side of the loop
(Definition 27); and the *augmented timestamp graph* ``Ĝ_i`` collects the
edges replica ``i`` must track — intersected with the real share-graph edge
set ``E``, because only real edges ever carry updates (Definition 28).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import ConfigurationError, UnknownReplicaError
from ..core.registers import Register, ReplicaId
from ..core.share_graph import Edge, ShareGraph

#: Client identifiers are strings (e.g. ``"c1"``) to keep them visually
#: distinct from integer replica ids.
ClientId = str


@dataclass(frozen=True)
class ClientAssignment:
    """Which replicas each client may access (the sets ``R_c``)."""

    replica_sets: Mapping[ClientId, FrozenSet[ReplicaId]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean = {
            str(cid): frozenset(int(r) for r in rids)
            for cid, rids in dict(self.replica_sets).items()
        }
        for cid, rids in clean.items():
            if not rids:
                raise ConfigurationError(f"client {cid!r} accesses no replica")
        object.__setattr__(self, "replica_sets", clean)

    @classmethod
    def from_dict(cls, mapping: Mapping[ClientId, Iterable[ReplicaId]]) -> "ClientAssignment":
        """Build an assignment from ``{client: iterable of replica ids}``."""
        return cls({cid: frozenset(rids) for cid, rids in mapping.items()})

    @property
    def client_ids(self) -> Tuple[ClientId, ...]:
        """All client ids, sorted."""
        return tuple(sorted(self.replica_sets))

    def replicas_of(self, client_id: ClientId) -> FrozenSet[ReplicaId]:
        """``R_c`` for one client."""
        try:
            return self.replica_sets[client_id]
        except KeyError:
            raise ConfigurationError(f"unknown client {client_id!r}") from None

    def client_edges(self) -> FrozenSet[Edge]:
        """All directed edges ``e_jk`` induced by some client with ``j, k ∈ R_c``.

        Cached on the instance (assignments are immutable): the augmented
        edge set is read on every adjacency query of the loop enumeration.
        """
        cached = self.__dict__.get("_client_edges")
        if cached is None:
            edges: Set[Edge] = set()
            for rids in self.replica_sets.values():
                for j in rids:
                    for k in rids:
                        if j != k:
                            edges.add((j, k))
            cached = frozenset(edges)
            object.__setattr__(self, "_client_edges", cached)
        return cached

    def linked(self, j: ReplicaId, k: ReplicaId) -> bool:
        """``True`` iff some client accesses both ``j`` and ``k``."""
        return any(
            j in rids and k in rids for rids in self.replica_sets.values()
        )


@dataclass(frozen=True)
class AugmentedShareGraph:
    """The augmented share graph ``Ĝ`` (Definition 16)."""

    share_graph: ShareGraph
    clients: ClientAssignment

    def __post_init__(self) -> None:
        for rids in self.clients.replica_sets.values():
            for rid in rids:
                if rid not in self.share_graph.placement:
                    raise UnknownReplicaError(rid)

    @property
    def replica_ids(self) -> Tuple[ReplicaId, ...]:
        """The vertex set (same as the share graph's)."""
        return self.share_graph.replica_ids

    @property
    def edges(self) -> FrozenSet[Edge]:
        """``Ê = E ∪ {e_jk | ∃ client c with j, k ∈ R_c}`` (cached; the
        instance is immutable and this union sits on the hot path of the
        augmented-loop enumeration)."""
        cached = self.__dict__.get("_edges")
        if cached is None:
            cached = self.share_graph.edges | self.clients.client_edges()
            object.__setattr__(self, "_edges", cached)
        return cached

    def has_edge(self, j: ReplicaId, k: ReplicaId) -> bool:
        """``True`` iff ``e_jk ∈ Ê``."""
        return (j, k) in self.edges

    def neighbors(self, i: ReplicaId) -> Tuple[ReplicaId, ...]:
        """Replicas adjacent to ``i`` in ``Ĝ``."""
        return tuple(
            sorted(j for j in self.replica_ids if (i, j) in self.edges)
        )

    def incident_edges(self, i: ReplicaId) -> FrozenSet[Edge]:
        """Directed edges of ``Ê`` incident on ``i``."""
        return frozenset(e for e in self.edges if i in e)

    def simple_cycles_through(
        self, i: ReplicaId, max_length: Optional[int] = None
    ) -> Iterator[Tuple[ReplicaId, ...]]:
        """Simple cycles of ``Ĝ`` through ``i`` (both orientations)."""
        adjacency = {v: self.neighbors(v) for v in self.replica_ids}
        limit = max_length if max_length is not None else len(self.replica_ids)
        path: List[ReplicaId] = [i]
        on_path: Set[ReplicaId] = {i}

        def dfs() -> Iterator[Tuple[ReplicaId, ...]]:
            current = path[-1]
            for nxt in adjacency[current]:
                if nxt == i and len(path) >= 3:
                    yield tuple(path)
                if nxt in on_path or len(path) >= limit:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                yield from dfs()
                path.pop()
                on_path.remove(nxt)

        yield from dfs()


def _union_registers(graph: ShareGraph, replicas: Iterable[ReplicaId]) -> FrozenSet[Register]:
    out: Set[Register] = set()
    for rid in replicas:
        out |= graph.registers_at(rid)
    return frozenset(out)


def augmented_loop_conditions(
    augmented: AugmentedShareGraph,
    observer: ReplicaId,
    jk: Edge,
    l_side: Sequence[ReplicaId],
    r_side: Sequence[ReplicaId],
) -> bool:
    """Conditions (i)–(iii) of the augmented ``(i, e_jk)``-loop (Definition 27).

    Compared to Definition 4, conditions (ii) and (iii) are satisfied either
    by a surviving shared register or by a client that accesses both
    endpoints of the r-side edge.
    """
    graph = augmented.share_graph
    clients = augmented.clients
    j, k = jk
    if not l_side or not r_side:
        return False
    if l_side[-1] != k or r_side[0] != j:
        return False

    blockers_excl_k = _union_registers(graph, l_side[:-1])
    blockers_incl_k = _union_registers(graph, l_side)

    # (i) unchanged: the witnessed edge must carry a register the l-side
    # interior does not store (it is a real share-graph edge).
    if not (graph.shared_registers(j, k) - blockers_excl_k):
        return False

    r_extended: List[ReplicaId] = list(r_side) + [observer]

    # (ii) a surviving register on e_{j r_2} OR a client accessing both.
    r2 = r_extended[1]
    if not (graph.shared_registers(j, r2) - blockers_excl_k) and not clients.linked(j, r2):
        return False

    # (iii) for each subsequent r-side edge: surviving register OR client link.
    for q in range(2, len(r_side) + 1):
        rq, rq_next = r_extended[q - 1], r_extended[q]
        if not (graph.shared_registers(rq, rq_next) - blockers_incl_k) and not clients.linked(
            rq, rq_next
        ):
            return False
    return True


def has_augmented_loop(
    augmented: AugmentedShareGraph,
    observer: ReplicaId,
    jk: Edge,
    max_loop_length: Optional[int] = None,
) -> bool:
    """``True`` iff an augmented ``(observer, e_jk)``-loop exists in ``Ĝ``."""
    j, k = jk
    if observer in (j, k):
        return False
    if jk not in augmented.share_graph.edges:
        return False
    for cycle in augmented.simple_cycles_through(observer, max_length=max_loop_length):
        for split in range(1, len(cycle) - 1):
            if (cycle[split + 1], cycle[split]) != jk:
                continue
            l_side = tuple(cycle[1:split + 1])
            r_side = tuple(cycle[split + 1:])
            if augmented_loop_conditions(augmented, observer, jk, l_side, r_side):
                return True
    return False


def augmented_loop_edges(
    augmented: AugmentedShareGraph,
    observer: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> FrozenSet[Edge]:
    """Every edge witnessed by some augmented ``(observer, e_jk)``-loop.

    One cycle enumeration per observer (every split of every cycle is
    tested against the conditions), instead of re-enumerating the cycles
    once per candidate edge as :func:`has_augmented_loop` would — same
    result, ``|E|`` times cheaper, which matters when dynamic membership
    recomputes every ``Ê_i`` at each epoch change.
    """
    share_edges = augmented.share_graph.edges
    loops: Set[Edge] = set()
    for cycle in augmented.simple_cycles_through(observer, max_length=max_loop_length):
        for split in range(1, len(cycle) - 1):
            jk = (cycle[split + 1], cycle[split])
            if jk in loops or jk not in share_edges or observer in jk:
                continue
            l_side = tuple(cycle[1:split + 1])
            r_side = tuple(cycle[split + 1:])
            if augmented_loop_conditions(augmented, observer, jk, l_side, r_side):
                loops.add(jk)
    return frozenset(loops)


def augmented_timestamp_edges(
    augmented: AugmentedShareGraph,
    replica_id: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> FrozenSet[Edge]:
    """The edge set ``Ê_i`` of the augmented timestamp graph (Definition 28).

    Incident edges of ``Ĝ`` plus augmented-loop-witnessed edges, intersected
    with the real share-graph edge set ``E`` (augmentation edges carry no
    updates and therefore need no counters).
    """
    share_edges = augmented.share_graph.edges
    incident = augmented.incident_edges(replica_id)
    loops = augmented_loop_edges(
        augmented, replica_id, max_loop_length=max_loop_length
    )
    return frozenset((incident | loops) & share_edges)


def build_all_augmented_timestamp_edges(
    augmented: AugmentedShareGraph,
    max_loop_length: Optional[int] = None,
) -> Dict[ReplicaId, FrozenSet[Edge]]:
    """``Ê_i`` for every replica."""
    return {
        rid: augmented_timestamp_edges(augmented, rid, max_loop_length=max_loop_length)
        for rid in augmented.replica_ids
    }


def client_index_edges(
    augmented: AugmentedShareGraph,
    client_id: ClientId,
    timestamp_edges_by_replica: Optional[Mapping[ReplicaId, FrozenSet[Edge]]] = None,
) -> FrozenSet[Edge]:
    """The index set of client ``c``'s timestamp: ``∪_{i ∈ R_c} Ê_i``."""
    if timestamp_edges_by_replica is None:
        timestamp_edges_by_replica = build_all_augmented_timestamp_edges(augmented)
    edges: Set[Edge] = set()
    for rid in augmented.clients.replicas_of(client_id):
        edges |= timestamp_edges_by_replica[rid]
    return frozenset(edges)
