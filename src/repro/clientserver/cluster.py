"""A simulated client–server deployment (Figure 1b).

Wires :class:`~repro.clientserver.server.ClientServerReplica` servers,
:class:`~repro.clientserver.client.ClientAgent` clients and a
:class:`~repro.sim.network.SimNetwork` together.  Client operations are
synchronous from the client's perspective (the client waits for the
response), but a request buffered behind predicate ``J1/J2`` is unblocked by
delivering inter-replica update messages, so issuing an operation may advance
the simulation.

The cluster records, alongside the servers' issue/apply traces, the
happened-before edges that clients propagate by touching several replicas
(condition (ii) of the ``↪'`` relation, Definition 25); consistency checking
injects those into the checker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.consistency import ConsistencyChecker, ConsistencyReport
from ..core.errors import SimulationError
from ..core.protocol import ReplicaEvent, UpdateId
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..sim.delays import DelayModel
from ..sim.network import SimNetwork
from .augmented import AugmentedShareGraph, ClientAssignment, ClientId
from .client import ClientAgent
from .server import ClientRequest, ClientServerReplica


class ClientServerCluster:
    """Servers + clients + network for the client–server architecture."""

    def __init__(
        self,
        share_graph: ShareGraph,
        clients: ClientAssignment,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
    ) -> None:
        self.share_graph = share_graph
        self.augmented = AugmentedShareGraph(share_graph, clients)
        self.network = SimNetwork(delay_model=delay_model, seed=seed)
        self.servers: Dict[ReplicaId, ClientServerReplica] = {
            rid: ClientServerReplica(self.augmented, rid)
            for rid in share_graph.replica_ids
        }
        self.clients: Dict[ClientId, ClientAgent] = {
            cid: ClientAgent(self.augmented, cid) for cid in clients.client_ids
        }
        #: Updates each client has (transitively) observed, for ↪' bookkeeping.
        self._client_seen: Dict[ClientId, Set[UpdateId]] = {
            cid: set() for cid in clients.client_ids
        }
        #: Extra ↪' edges induced by client sessions: (observed update, issued update).
        self._client_edges: List[Tuple[UpdateId, UpdateId]] = []

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def client_read(
        self,
        client_id: ClientId,
        register: Register,
        replica_id: Optional[ReplicaId] = None,
        max_steps: int = 100_000,
    ) -> Any:
        """Perform a client read; blocks (simulating) until the server can serve it."""
        client = self.clients[client_id]
        target = client.choose_replica(register, preferred=replica_id)
        request = ClientRequest(
            kind="read",
            client_id=client_id,
            register=register,
            value=None,
            client_timestamp=client.timestamp,
            sim_time=self.network.now,
        )
        response = self._submit_and_wait(target, request, max_steps)
        client.absorb_response(response.server_timestamp)
        client.record("read", target, register, response.value, self.network.now)
        self._note_client_observation(client_id, target)
        return response.value

    def client_write(
        self,
        client_id: ClientId,
        register: Register,
        value: Any,
        replica_id: Optional[ReplicaId] = None,
        max_steps: int = 100_000,
    ) -> None:
        """Perform a client write; blocks (simulating) until the server can serve it."""
        client = self.clients[client_id]
        target = client.choose_replica(register, preferred=replica_id)
        request = ClientRequest(
            kind="write",
            client_id=client_id,
            register=register,
            value=value,
            client_timestamp=client.timestamp,
            sim_time=self.network.now,
        )
        response = self._submit_and_wait(target, request, max_steps)
        issued = self.servers[target].applied[-1]
        # Everything the client had observed before this write happens-before it.
        for seen in self._client_seen[client_id]:
            if seen != issued.uid:
                self._client_edges.append((seen, issued.uid))
        self.network.send_all(response.update_messages)
        client.absorb_response(response.server_timestamp)
        client.record("write", target, register, value, self.network.now)
        self._note_client_observation(client_id, target)
        self._client_seen[client_id].add(issued.uid)

    def _submit_and_wait(self, target: ReplicaId, request: ClientRequest,
                         max_steps: int):
        server = self.servers[target]
        response = server.submit(request)
        steps = 0
        while response is None:
            made_progress = self.step()
            server.serve_waiting(sim_time=self.network.now)
            response = server.take_response(
                request.client_id, request.kind, request.register
            )
            if response is not None:
                break
            if not made_progress:
                raise SimulationError(
                    f"client request at replica {target} cannot be served: the "
                    "network is quiescent but predicate J1/J2 still fails"
                )
            steps += 1
            if steps > max_steps:
                raise SimulationError("client request exceeded the step budget")
        return response

    def _note_client_observation(self, client_id: ClientId, replica_id: ReplicaId) -> None:
        """After touching a replica, the client has observed its applied updates."""
        applied = {u.uid for u in self.servers[replica_id].applied}
        self._client_seen[client_id] |= applied

    # ------------------------------------------------------------------
    # Simulation control
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Deliver one inter-replica update message and run apply/serve loops."""
        delivery = self.network.deliver_next()
        if delivery is None:
            return False
        message = delivery.message
        server = self.servers[message.destination]
        server.receive(message)
        server.apply_ready(sim_time=self.network.now)
        server.serve_waiting(sim_time=self.network.now)
        return True

    def run_until_quiescent(self, max_steps: int = 1_000_000) -> int:
        """Deliver all in-flight update messages."""
        steps = 0
        while self.network.pending_count() > 0:
            if steps >= max_steps:
                raise SimulationError("run_until_quiescent exceeded the step budget")
            self.step()
            steps += 1
        for server in self.servers.values():
            server.apply_ready(sim_time=self.network.now)
            server.serve_waiting(sim_time=self.network.now)
        return steps

    # ------------------------------------------------------------------
    # Checking and metrics
    # ------------------------------------------------------------------
    def events_by_replica(self) -> Dict[ReplicaId, Sequence[ReplicaEvent]]:
        """Each server's local trace."""
        return {rid: tuple(s.events) for rid, s in self.servers.items()}

    def check_consistency(self, check_liveness: bool = True) -> ConsistencyReport:
        """Validate against Definition 26 (safety/liveness under ``↪'``)."""
        checker = ConsistencyChecker(self.share_graph)
        return checker.check(
            self.events_by_replica(),
            check_liveness=check_liveness,
            extra_happened_before=self._client_edges,
        )

    def server_metadata_sizes(self) -> Dict[ReplicaId, int]:
        """Counters per server (``|Ê_i|``)."""
        return {rid: s.metadata_size() for rid, s in sorted(self.servers.items())}

    def client_metadata_sizes(self) -> Dict[ClientId, int]:
        """Counters per client (``|∪_{i∈R_c} Ê_i|``)."""
        return {cid: c.metadata_size() for cid, c in sorted(self.clients.items())}
