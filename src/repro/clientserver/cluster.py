"""A simulated client–server deployment (Figure 1b), on the shared kernel.

Wires :class:`~repro.clientserver.server.ClientServerReplica` servers,
:class:`~repro.clientserver.client.ClientAgent` clients and the shared
simulation kernel (:mod:`repro.sim.engine`) together.  Client operations
are synchronous from the client's perspective (the client waits for the
response), but a request buffered behind predicate ``J1/J2`` is unblocked by
delivering inter-replica update messages, so issuing an operation may advance
the simulation.

The drive loop — :meth:`~repro.sim.engine.SimulationHost.step`,
:meth:`~repro.sim.engine.SimulationHost.run_until_quiescent` with its
cross-replica apply/serve fixpoint, and the unified
:class:`~repro.sim.engine.RunMetrics` — is inherited from
:class:`~repro.sim.engine.SimulationHost`, the same base the peer-to-peer
:class:`~repro.sim.cluster.Cluster` runs on.

The cluster records, alongside the servers' issue/apply traces, the
happened-before edges that clients propagate by touching several replicas
(condition (ii) of the ``↪'`` relation, Definition 25); consistency checking
injects those into the checker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ConfigurationError, SimulationError
from ..core.protocol import CausalReplica, Update, UpdateId, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..sim.delays import DelayModel
from ..sim.engine import BatchingConfig, SimulationHost
from ..sim.network import SimNetwork
from .augmented import (
    AugmentedShareGraph,
    ClientAssignment,
    ClientId,
    build_all_augmented_timestamp_edges,
)
from .client import ClientAgent
from .server import ClientRequest, ClientServerReplica


class ClientServerCluster(SimulationHost):
    """Servers + clients + network for the client–server architecture."""

    def __init__(
        self,
        share_graph: ShareGraph,
        clients: ClientAssignment,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        batching: Optional[BatchingConfig] = None,
        wire_accounting: bool = False,
    ) -> None:
        super().__init__(
            share_graph,
            SimNetwork(
                delay_model=delay_model,
                seed=seed,
                batching=batching,
                wire_accounting=wire_accounting,
            ),
        )
        self.augmented = AugmentedShareGraph(share_graph, clients)
        self.servers: Dict[ReplicaId, ClientServerReplica] = {
            rid: ClientServerReplica(self.augmented, rid)
            for rid in share_graph.replica_ids
        }
        self.transport.set_codec_resolver(self._codec_for_message)
        # One shared Ê_i computation for every client's index set (each
        # ClientAgent would otherwise recompute all replicas' edge sets).
        edges_map = build_all_augmented_timestamp_edges(self.augmented)
        self.clients: Dict[ClientId, ClientAgent] = {
            cid: ClientAgent(
                self.augmented, cid, timestamp_edges_by_replica=edges_map
            )
            for cid in clients.client_ids
        }
        #: Updates each client has (transitively) observed, for ↪' bookkeeping.
        self._client_seen: Dict[ClientId, Set[UpdateId]] = {
            cid: set() for cid in clients.client_ids
        }
        #: Extra ↪' edges induced by client sessions: (observed update, issued update).
        self._client_edges: List[Tuple[UpdateId, UpdateId]] = []
        #: Replica id → a client pinned to exactly that replica (if any),
        #: used to run replica-addressed workload operations (parity mode).
        self._colocated: Dict[ReplicaId, ClientId] = {}
        for cid in clients.client_ids:
            replica_set = clients.replicas_of(cid)
            if len(replica_set) == 1:
                self._colocated.setdefault(next(iter(replica_set)), cid)
        #: Whether the cluster follows the one-client-per-replica parity
        #: convention (set by :meth:`with_colocated_clients`); joiners then
        #: automatically get a pinned client.
        self._auto_colocated = False

    @classmethod
    def with_colocated_clients(
        cls,
        share_graph: ShareGraph,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        batching: Optional[BatchingConfig] = None,
        wire_accounting: bool = False,
    ) -> "ClientServerCluster":
        """A cluster with one client pinned to each replica (Figure 1a's
        access pattern run through the Figure 1b architecture).

        This is the configuration under which the two architectures are
        directly comparable on the same replica-addressed workload: client
        ``c<i>`` issues exactly the operations the peer-to-peer co-located
        client of replica ``i`` would.
        """
        clients = ClientAssignment.from_dict(
            {f"c{rid}": {rid} for rid in share_graph.replica_ids}
        )
        cluster = cls(
            share_graph,
            clients,
            delay_model=delay_model,
            seed=seed,
            batching=batching,
            wire_accounting=wire_accounting,
        )
        cluster._auto_colocated = True
        return cluster

    def _replica_map(self) -> Dict[ReplicaId, CausalReplica]:
        return self.servers

    def _codec_for_message(self, message: UpdateMessage) -> Any:
        server = self.servers.get(message.sender)
        return server.wire_codec() if server is not None else None

    # ------------------------------------------------------------------
    # Membership hooks (dynamic reconfiguration)
    # ------------------------------------------------------------------
    def _remove_member(self, replica_id: ReplicaId) -> None:
        del self.servers[replica_id]

    def _migrate_members(self, new_graph: ShareGraph, epoch: int) -> None:
        """Migrate servers *and* client sessions to the new configuration.

        Rebuilds the client assignment first: leavers disappear from every
        ``R_c``, a session left with no reachable server is handed off to
        the lowest surviving replica, and — under the colocated-parity
        convention — each joiner gets a fresh pinned client ``c<rid>``.
        The new augmented share graph then drives both the servers'
        ``Ê_i`` recomputation and the clients' ``µ_c`` re-indexing.
        """
        members = set(new_graph.replica_ids)
        survivors = sorted(set(self.servers) & members)
        joiners = sorted(members - set(self.servers))
        replica_sets: Dict[ClientId, Any] = {}
        for cid in self.augmented.clients.client_ids:
            kept = frozenset(
                rid
                for rid in self.augmented.clients.replicas_of(cid)
                if rid in members
            )
            if not kept:
                # Session handoff: the only server(s) this client could
                # reach have left; re-home it to the lowest survivor.
                kept = frozenset({min(survivors)})
            replica_sets[cid] = kept
        if self._auto_colocated:
            for rid in joiners:
                cid = f"c{rid}"
                if cid not in replica_sets:
                    replica_sets[cid] = frozenset({rid})
        assignment = ClientAssignment(replica_sets)
        self.augmented = AugmentedShareGraph(new_graph, assignment)
        for rid in survivors:
            self.servers[rid].migrate_augmented(self.augmented, epoch)
        edges_map = build_all_augmented_timestamp_edges(self.augmented)
        for cid in sorted(assignment.client_ids):
            if cid in self.clients:
                self.clients[cid].migrate(
                    self.augmented, timestamp_edges_by_replica=edges_map
                )
            else:
                self.clients[cid] = ClientAgent(
                    self.augmented, cid, timestamp_edges_by_replica=edges_map
                )
                self._client_seen[cid] = set()
        self._colocated = {}
        for cid in assignment.client_ids:
            replica_set = assignment.replicas_of(cid)
            if len(replica_set) == 1:
                self._colocated.setdefault(next(iter(replica_set)), cid)

    def _add_member(self, replica_id: ReplicaId, new_graph: ShareGraph,
                    epoch: int) -> CausalReplica:
        server = ClientServerReplica(self.augmented, replica_id)
        server.epoch = epoch
        self.servers[replica_id] = server
        return server

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def client_read(
        self,
        client_id: ClientId,
        register: Register,
        replica_id: Optional[ReplicaId] = None,
        max_steps: int = 100_000,
    ) -> Any:
        """Perform a client read; blocks (simulating) until the server can serve it.

        Returns ``None`` (rejecting the operation) while the chosen server
        is crashed by the fault injector.
        """
        client = self.clients[client_id]
        target = client.choose_replica(register, preferred=replica_id)
        if self.operation_rejected(target):
            self.metrics.rejected_operations += 1
            return None
        request = ClientRequest(
            kind="read",
            client_id=client_id,
            register=register,
            value=None,
            client_timestamp=client.timestamp,
            sim_time=self.now,
        )
        submitted_at = self.now
        response = self._submit_and_wait(target, request, max_steps)
        if response is None:
            # The server crashed while the request was buffered; its
            # volatile request state is gone, so the operation is lost.
            return None
        self._record_operation("read", at=submitted_at)
        client.absorb_response(response.server_timestamp)
        client.record("read", target, register, response.value, self.now)
        self._note_client_observation(client_id, target)
        return response.value

    def client_write(
        self,
        client_id: ClientId,
        register: Register,
        value: Any,
        replica_id: Optional[ReplicaId] = None,
        max_steps: int = 100_000,
    ) -> Optional[Update]:
        """Perform a client write; blocks (simulating) until the server can serve it.

        Returns the issued :class:`~repro.core.protocol.Update`, or ``None``
        (rejecting the operation) when the chosen server is crashed by the
        fault injector — before the request, or while it was buffered.
        """
        client = self.clients[client_id]
        target = client.choose_replica(register, preferred=replica_id)
        if self.operation_rejected(target):
            self.metrics.rejected_operations += 1
            return None
        request = ClientRequest(
            kind="write",
            client_id=client_id,
            register=register,
            value=value,
            client_timestamp=client.timestamp,
            sim_time=self.now,
        )
        submitted_at = self.now
        response = self._submit_and_wait(target, request, max_steps)
        if response is None:
            # The server crashed before serving the buffered write; the
            # client sees it rejected (the write never happened).
            return None
        self._record_operation("write", at=submitted_at)
        issued = response.issued
        self._note_issue(issued)
        # Everything the client had observed before this write happens-before it.
        for seen in self._client_seen[client_id]:
            if seen != issued.uid:
                self._client_edges.append((seen, issued.uid))
        client.absorb_response(response.server_timestamp)
        client.record("write", target, register, value, self.now)
        self._note_client_observation(client_id, target)
        self._client_seen[client_id].add(issued.uid)
        return issued

    def submit_operation(self, operation: Any) -> Any:
        """Execute a replica-addressed workload operation via its co-located client.

        Requires a client pinned to exactly ``operation.replica_id`` (see
        :meth:`with_colocated_clients`); this is what lets one workload
        drive both the peer-to-peer and the client–server architecture.
        """
        client_id = self._colocated.get(operation.replica_id)
        if client_id is None:
            if self.reconfig_manager is not None and not self.is_member(
                operation.replica_id
            ):
                # The workload targeted a replica that has left (or not yet
                # joined) the configuration: reject, exactly as the
                # peer-to-peer architecture does.
                self.metrics.rejected_operations += 1
                return None
            raise ConfigurationError(
                f"no client is co-located with replica {operation.replica_id!r}; "
                "build the cluster with ClientServerCluster.with_colocated_clients"
            )
        if operation.kind == "write":
            return self.client_write(
                client_id, operation.register, operation.value,
                replica_id=operation.replica_id,
            )
        if operation.kind == "read":
            return self.client_read(
                client_id, operation.register, replica_id=operation.replica_id
            )
        raise ConfigurationError(f"unknown operation kind {operation.kind!r}")

    def _dispatch(self, responses) -> bool:
        """Multicast the update messages of freshly served write responses.

        Dispatch happens at *serve* time — whichever loop served the request
        — so a write unblocked by the quiescence fixpoint still propagates
        (and the drain loop resumes), even when no client is waiting on it.
        Returns ``True`` when any message was sent.
        """
        sent = False
        for response in responses:
            if response.update_messages:
                self.network.send_all(response.update_messages)
                sent = True
        return sent

    def _submit_and_wait(self, target: ReplicaId, request: ClientRequest,
                         max_steps: int):
        server = self.servers[target]
        response = server.submit(request)
        if response is not None:
            self._dispatch([response])
            return response
        steps = 0
        while True:
            made_progress = self.step()
            if self.replica_down(target):
                # A fault event crashed the server while the request was
                # waiting; the buffered request is volatile, so the
                # operation is rejected rather than served after restart.
                self.metrics.rejected_operations += 1
                return None
            if target not in self.servers or request.register not in server.registers:
                # A reconfiguration removed the server — or took the
                # register away from it — while the request was buffered;
                # the session sees the operation rejected.
                self.metrics.rejected_operations += 1
                return None
            self._dispatch(server.serve_waiting(sim_time=self.now))
            response = server.take_response(
                request.client_id, request.kind, request.register
            )
            if response is not None:
                return response
            if not made_progress:
                raise SimulationError(
                    f"client request at replica {target} cannot be served: the "
                    "network is quiescent but predicate J1/J2 still fails"
                )
            steps += 1
            if steps > max_steps:
                raise SimulationError("client request exceeded the step budget")

    def _note_client_observation(self, client_id: ClientId, replica_id: ReplicaId) -> None:
        """After touching a replica, the client has observed its applied updates."""
        applied = {u.uid for u in self.servers[replica_id].applied}
        self._client_seen[client_id] |= applied

    # ------------------------------------------------------------------
    # Architecture-specific host hooks
    # ------------------------------------------------------------------
    def _after_delivery(self, replica: CausalReplica) -> None:
        """A delivered update can unblock buffered client requests."""
        self._dispatch(replica.serve_waiting(sim_time=self.now))  # type: ignore[attr-defined]

    def _quiescent_hook(self, replica: CausalReplica) -> bool:
        served = replica.serve_waiting(sim_time=self.now)  # type: ignore[attr-defined]
        self._dispatch(served)
        return bool(served)

    def _extra_happened_before(self) -> Sequence[Tuple[UpdateId, UpdateId]]:
        return self._client_edges

    # ------------------------------------------------------------------
    # Checking and metrics
    # ------------------------------------------------------------------
    def server_metadata_sizes(self) -> Dict[ReplicaId, int]:
        """Counters per server (``|Ê_i|``)."""
        return self.metadata_sizes()

    def client_metadata_sizes(self) -> Dict[ClientId, int]:
        """Counters per client (``|∪_{i∈R_c} Ê_i|``)."""
        return {cid: c.metadata_size() for cid, c in sorted(self.clients.items())}
