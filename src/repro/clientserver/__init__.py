"""Client–server architecture (Section 6 and Appendix E).

Augmented share graphs, augmented ``(i, e_jk)``-loops and timestamp graphs,
the client/server halves of the generalized algorithm, and a simulated
client–server cluster.
"""

from .augmented import (
    AugmentedShareGraph,
    ClientAssignment,
    ClientId,
    augmented_loop_conditions,
    augmented_timestamp_edges,
    build_all_augmented_timestamp_edges,
    client_index_edges,
    has_augmented_loop,
)
from .client import ClientAgent, ClientSessionRecord
from .cluster import ClientServerCluster
from .server import ClientRequest, ClientResponse, ClientServerReplica

__all__ = [
    "AugmentedShareGraph",
    "ClientAgent",
    "ClientAssignment",
    "ClientId",
    "ClientRequest",
    "ClientResponse",
    "ClientServerCluster",
    "ClientServerReplica",
    "ClientSessionRecord",
    "augmented_loop_conditions",
    "augmented_timestamp_edges",
    "build_all_augmented_timestamp_edges",
    "client_index_edges",
    "has_augmented_loop",
]
