"""The client side of the client–server algorithm (Appendix E.1/E.5).

Each client ``c`` maintains a timestamp ``µ_c`` indexed by the union of the
augmented timestamp graphs of the replicas it may access
(``∪_{i ∈ R_c} Ê_i``).  Every request carries ``µ_c``; every response carries
the serving replica's timestamp ``τ_i``, which the client folds into ``µ_c``
by element-wise maximum over the commonly indexed edges (``merge1 = merge2``).
The client timestamp is what propagates causal dependencies between replicas
that share no registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Tuple

from ..core.registers import Register, ReplicaId
from ..core.share_graph import Edge
from ..core.timestamps import EdgeTimestamp
from .augmented import AugmentedShareGraph, ClientId, client_index_edges


@dataclass
class ClientSessionRecord:
    """One completed client operation, kept for session analyses."""

    kind: str
    replica_id: ReplicaId
    register: Register
    value: Any
    sim_time: float


class ClientAgent:
    """A client of the client–server architecture.

    Parameters
    ----------
    augmented:
        The augmented share graph (supplies ``R_c`` and the index sets).
    client_id:
        This client's identifier.
    """

    def __init__(self, augmented: AugmentedShareGraph, client_id: ClientId,
                 timestamp_edges_by_replica=None) -> None:
        self.augmented = augmented
        self.client_id = client_id
        self.replica_set: FrozenSet[ReplicaId] = augmented.clients.replicas_of(client_id)
        self.index_edges: FrozenSet[Edge] = client_index_edges(
            augmented, client_id,
            timestamp_edges_by_replica=timestamp_edges_by_replica,
        )
        #: The client timestamp ``µ_c``.
        self.timestamp: EdgeTimestamp = EdgeTimestamp.zero(self.index_edges)
        #: Completed operations, in session order.
        self.history: List[ClientSessionRecord] = []

    # ------------------------------------------------------------------
    # Replica selection
    # ------------------------------------------------------------------
    def accessible_registers(self) -> FrozenSet[Register]:
        """``X_{R_c}``: every register stored at some replica the client can reach."""
        registers = set()
        for rid in self.replica_set:
            registers |= self.augmented.share_graph.registers_at(rid)
        return frozenset(registers)

    def choose_replica(self, register: Register,
                       preferred: Optional[ReplicaId] = None) -> ReplicaId:
        """Pick a replica of ``R_c`` storing ``register`` (lowest id by default)."""
        candidates = sorted(
            rid
            for rid in self.replica_set
            if self.augmented.share_graph.placement.stores_register(rid, register)
        )
        if preferred is not None and preferred in candidates:
            return preferred
        if not candidates:
            raise ValueError(
                f"client {self.client_id!r} cannot access any replica storing "
                f"{register!r}"
            )
        return candidates[0]

    # ------------------------------------------------------------------
    # Timestamp maintenance (merge1 = merge2)
    # ------------------------------------------------------------------
    def absorb_response(self, server_timestamp: EdgeTimestamp) -> None:
        """Fold a server's reply timestamp into ``µ_c``."""
        shared = self.timestamp.edges & server_timestamp.edges
        self.timestamp = self.timestamp.merged_with(
            server_timestamp, shared_edges=shared
        )

    def record(self, kind: str, replica_id: ReplicaId, register: Register,
               value: Any, sim_time: float) -> None:
        """Append a completed operation to the session history."""
        self.history.append(
            ClientSessionRecord(
                kind=kind,
                replica_id=replica_id,
                register=register,
                value=value,
                sim_time=sim_time,
            )
        )

    def metadata_size(self) -> int:
        """Number of counters in ``µ_c``."""
        return self.timestamp.size_counters()

    # ------------------------------------------------------------------
    # Epoch migration (session handoff)
    # ------------------------------------------------------------------
    def migrate(
        self,
        new_augmented: AugmentedShareGraph,
        timestamp_edges_by_replica=None,
    ) -> None:
        """Adopt a new configuration (client side).

        The client's replica set ``R_c`` may have changed — a server it was
        pinned to can leave, in which case the cluster re-homes the session
        to a surviving replica — so the index set ``∪_{i ∈ R_c} Ê_i`` is
        recomputed and ``µ_c`` projected onto it.  Surviving entries keep
        their counters: the dependencies the client has observed remain
        expressible exactly as far as the new configuration tracks them.
        """
        self.augmented = new_augmented
        self.replica_set = new_augmented.clients.replicas_of(self.client_id)
        self.index_edges = client_index_edges(
            new_augmented, self.client_id,
            timestamp_edges_by_replica=timestamp_edges_by_replica,
        )
        self.timestamp = self.timestamp.migrated(self.index_edges)
