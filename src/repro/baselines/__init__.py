"""Baseline protocols the paper compares against (conceptually or implicitly).

Every baseline implements the same :class:`~repro.core.protocol.CausalReplica`
interface as the paper's algorithm, so the simulator, checker and metrics
treat them interchangeably:

* :class:`~repro.baselines.vector_clock_full.FullReplicationReplica` — the
  classical Lazy-Replication-style design: full replication with a vector
  timestamp of length ``R``.
* :class:`~repro.baselines.all_edges.AllEdgesReplica` — partial replication
  that conservatively tracks *every* directed share-graph edge; always safe,
  never smaller than the paper's timestamp graph.
* :class:`~repro.baselines.incident_only.IncidentOnlyReplica` — partial
  replication tracking only edges incident on the replica (FIFO-per-channel
  information only).  Provably unsafe on loop topologies: it is the
  "oblivious" protocol used to demonstrate the necessity half of Theorem 8.
* :class:`~repro.baselines.hoop_tracking.HoopTrackingReplica` — edge sets
  derived from Hélary–Milani minimal hoops (original or modified
  definition), used to reproduce the paper's correction.
* :class:`~repro.baselines.full_track.FullTrackReplica` — a
  Full-Track-style matrix clock (Shen, Kshemkalyani & Hsu) adapted to the
  replica-centric model: one counter per (writer replica, destination
  replica) pair.
"""

from .all_edges import AllEdgesReplica, all_edges_factory
from .full_track import FullTrackReplica, full_track_factory
from .hoop_tracking import HoopTrackingReplica, hoop_tracking_factory
from .incident_only import IncidentOnlyReplica, incident_only_factory
from .vector_clock_full import FullReplicationReplica, full_replication_factory

__all__ = [
    "AllEdgesReplica",
    "FullReplicationReplica",
    "FullTrackReplica",
    "HoopTrackingReplica",
    "IncidentOnlyReplica",
    "all_edges_factory",
    "full_replication_factory",
    "full_track_factory",
    "hoop_tracking_factory",
    "incident_only_factory",
]
