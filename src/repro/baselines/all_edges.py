"""Conservative partial replication: track every directed share-graph edge.

A simple, always-safe way to achieve causal consistency under partial
replication is to run the edge-indexed algorithm with *every* directed edge
of the share graph in every replica's index set.  The paper's timestamp graph
``E_i`` is a subset of this, so this baseline upper-bounds the metadata the
optimal edge selection saves (experiment E7).
"""

from __future__ import annotations

from ..core.protocol import CausalReplica
from ..core.registers import ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import TimestampGraph


class AllEdgesReplica(EdgeIndexedReplica):
    """The edge-indexed algorithm indexed by *all* share-graph edges."""

    def __init__(self, share_graph: ShareGraph, replica_id: ReplicaId) -> None:
        tgraph = TimestampGraph.from_edges(share_graph, replica_id, share_graph.edges)
        super().__init__(share_graph, replica_id, timestamp_graph=tgraph)


def all_edges_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """Replica factory for :class:`~repro.sim.cluster.Cluster`."""
    return AllEdgesReplica(graph, replica_id)
