"""A Full-Track-style matrix clock (after Shen, Kshemkalyani & Hsu, 2015).

Full-Track achieves causal consistency under partial replication by having
every replica maintain, for every ordered pair of replicas ``(j, k)``, a
count of the updates issued by ``j`` that are destined to ``k`` — an
``R × (R−1)`` matrix regardless of how sparse the share graph is.  It is the
natural "track everything about everybody" point in the design space and
therefore a useful upper baseline for metadata comparisons: the paper's
edge-indexed timestamps never index more pairs than Full-Track, and on sparse
share graphs they index far fewer.

The adaptation to the replica-centric model is direct: the matrix entries
for pairs that share no register simply stay at zero, but they are still
carried (that is the point of the baseline — it does not exploit the share
graph's structure).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

from .._speedups import tsops
from ..core.protocol import CausalReplica, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..core.timestamps import EdgeTimestamp
from ..wire.codecs import MATRIX_CODEC


class FullTrackReplica(CausalReplica):
    """Partial replication with a complete ``R × (R−1)`` matrix clock.

    Internally the matrix is represented as an
    :class:`~repro.core.timestamps.EdgeTimestamp` indexed by *all* ordered
    replica pairs, which makes the delivery predicate and merge identical in
    form to the paper's algorithm — only the index set differs.
    """

    def __init__(self, share_graph: ShareGraph, replica_id: ReplicaId) -> None:
        super().__init__(replica_id, share_graph.registers_at(replica_id))
        self.share_graph = share_graph
        all_pairs = [
            (a, b)
            for a in share_graph.replica_ids
            for b in share_graph.replica_ids
            if a != b
        ]
        self.matrix = EdgeTimestamp.zero(all_pairs)
        self._incoming_pairs = tuple(
            sorted((j, replica_id) for j in share_graph.replica_ids if j != replica_id)
        )
        #: ``(pair, new value)`` incoming entries raised by the latest merge.
        self._changed_incoming: list = []

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def destinations(self, register: Register) -> Sequence[ReplicaId]:
        """Every other replica storing ``register`` (as in the prototype)."""
        return tuple(
            rid
            for rid in self.share_graph.replicas_storing(register)
            if rid != self.replica_id
        )

    def make_metadata(self, register: Register) -> Tuple[EdgeTimestamp, int]:
        """Increment the (self, destination) entries for co-owners of ``register``."""
        bumped = [(self.replica_id, dest) for dest in self.destinations(register)]
        self.matrix = self.matrix.incremented(bumped)
        return self.matrix, self.matrix.size_counters()

    def can_apply(self, message: UpdateMessage) -> bool:
        """Matrix-clock delivery condition (same shape as the paper's ``J``).

        Encoded once, in :meth:`blocking_key` ("nothing blocks").
        """
        return self.blocking_key(message) is None

    def absorb_metadata(self, message: UpdateMessage) -> None:
        """Element-wise maximum over the full matrix.

        Records the incoming entries the merge raised, for the pending index.
        """
        merged, changed = tsops.merge_intersection(
            self.matrix.counters, message.metadata.counters, self.replica_id
        )
        self.matrix = EdgeTimestamp._from_validated(merged)
        self._changed_incoming = changed

    # ------------------------------------------------------------------
    # Pending-index hooks
    # ------------------------------------------------------------------
    def blocking_key(self, message: UpdateMessage) -> Optional[Hashable]:
        """One-pass matrix-condition evaluation: ``None``, or a wake key.

        Same key scheme as the paper's replica: ``("seq", (k, i), n)`` for
        the FIFO equality, ``("ge", (j, i))`` for the monotone conjuncts.
        """
        return tsops.edge_blocking_key(
            self.matrix.counters,
            message.metadata.counters,
            message.sender,
            self.replica_id,
            self._incoming_pairs,
        )

    def applied_keys(self, message: UpdateMessage) -> Iterable[Hashable]:
        """Wake keys for the incoming matrix entries the merge just raised."""
        return self.wake_keys(self._changed_incoming)

    def metadata_size(self) -> int:
        """``R × (R−1)`` counters."""
        return self.matrix.size_counters()

    def wire_codec(self):
        """The dense matrix codec: the complete index set ships no edge ids."""
        return MATRIX_CODEC


def full_track_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """Replica factory for :class:`~repro.sim.cluster.Cluster`."""
    return FullTrackReplica(graph, replica_id)
