"""Full replication with classical vector clocks (Lazy Replication style).

The standard pre-partial-replication design: every replica stores a copy of
*every* register and maintains a vector timestamp with one entry per replica
(``R`` counters).  A write increments the writer's own entry and is broadcast
to all other replicas; a remote update from ``k`` with vector ``T`` is applied
once ``T[k] = τ[k] + 1`` and ``T[j] ≤ τ[j]`` for every other ``j`` — the
classical causal-broadcast delivery condition [Birman et al.; Lazy
Replication].

This baseline trades storage (every register everywhere) for the smallest
possible metadata, which is exactly the trade-off the paper's introduction
frames partial replication against (experiment E7).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

from ..core.protocol import CausalReplica, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..core.timestamps import VectorTimestamp
from ..wire.codecs import VECTOR_CODEC


class FullReplicationReplica(CausalReplica):
    """A fully replicated causally consistent replica with a length-``R`` vector.

    The replica stores *all* registers of the placement (not just its ``X_i``)
    — that is what "full replication" means — and therefore applies every
    update in the system.
    """

    def __init__(self, share_graph: ShareGraph, replica_id: ReplicaId) -> None:
        super().__init__(replica_id, share_graph.placement.registers)
        self.share_graph = share_graph
        self.vector = VectorTimestamp.zero(share_graph.replica_ids)
        #: ``(replica id, new value)`` entries raised by the latest merge.
        self._changed_entries: list = []

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def destinations(self, register: Register) -> Sequence[ReplicaId]:
        """Broadcast: every other replica stores every register."""
        return tuple(
            rid for rid in self.share_graph.replica_ids if rid != self.replica_id
        )

    def make_metadata(self, register: Register) -> Tuple[VectorTimestamp, int]:
        """Increment the local entry of the vector clock."""
        self.vector = self.vector.incremented(self.replica_id)
        return self.vector, self.vector.size_counters()

    def can_apply(self, message: UpdateMessage) -> bool:
        """Classical causal-broadcast delivery condition.

        Encoded once, in :meth:`blocking_key` ("nothing blocks").
        """
        return self.blocking_key(message) is None

    def absorb_metadata(self, message: UpdateMessage) -> None:
        """Element-wise maximum of the two vectors.

        Records the entries the merge raised, for the pending index.
        """
        old = self.vector
        self.vector = old.merged_with(message.metadata)
        self._changed_entries = [
            (rid, self.vector.get(rid))
            for rid, value in message.metadata.items()
            if value > old.get(rid)
        ]

    # ------------------------------------------------------------------
    # Pending-index hooks
    # ------------------------------------------------------------------
    def blocking_key(self, message: UpdateMessage) -> Optional[Hashable]:
        """One-pass delivery-condition evaluation: ``None``, or a wake key.

        ``("seq", k, n)`` is the exact-value bucket for the FIFO conjunct
        ``T[k] = τ[k] + 1`` (woken when ``τ[k]`` reaches ``n − 1``);
        ``("ge", j)`` wakes whenever entry ``j`` grows.
        """
        remote: VectorTimestamp = message.metadata
        sender = message.sender
        if remote.get(sender) != self.vector.get(sender) + 1:
            return ("seq", sender, remote.get(sender))
        for rid, value in remote.items():
            if rid != sender and value > self.vector.get(rid):
                return ("ge", rid)
        return None

    def applied_keys(self, message: UpdateMessage) -> Iterable[Hashable]:
        """Wake keys for the vector entries the merge just raised."""
        return self.wake_keys(self._changed_entries)

    def metadata_size(self) -> int:
        """``R`` counters."""
        return self.vector.size_counters()

    def wire_codec(self):
        """The classical replica-indexed vector codec (family ``vector``)."""
        return VECTOR_CODEC


def full_replication_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """Replica factory for :class:`~repro.sim.cluster.Cluster`."""
    return FullReplicationReplica(graph, replica_id)
