"""Full replication with classical vector clocks (Lazy Replication style).

The standard pre-partial-replication design: every replica stores a copy of
*every* register and maintains a vector timestamp with one entry per replica
(``R`` counters).  A write increments the writer's own entry and is broadcast
to all other replicas; a remote update from ``k`` with vector ``T`` is applied
once ``T[k] = τ[k] + 1`` and ``T[j] ≤ τ[j]`` for every other ``j`` — the
classical causal-broadcast delivery condition [Birman et al.; Lazy
Replication].

This baseline trades storage (every register everywhere) for the smallest
possible metadata, which is exactly the trade-off the paper's introduction
frames partial replication against (experiment E7).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

from .._speedups import tsops
from ..core.protocol import CausalReplica, UpdateMessage
from ..core.registers import Register, ReplicaId
from ..core.share_graph import ShareGraph
from ..core.timestamps import VectorTimestamp
from ..wire.codecs import VECTOR_CODEC


class FullReplicationReplica(CausalReplica):
    """A fully replicated causally consistent replica with a length-``R`` vector.

    The replica stores *all* registers of the placement (not just its ``X_i``)
    — that is what "full replication" means — and therefore applies every
    update in the system.
    """

    def __init__(self, share_graph: ShareGraph, replica_id: ReplicaId) -> None:
        super().__init__(replica_id, share_graph.placement.registers)
        self.share_graph = share_graph
        self.vector = VectorTimestamp.zero(share_graph.replica_ids)
        #: ``(replica id, new value)`` entries raised by the latest merge.
        self._changed_entries: list = []
        #: Merge outcome staged by the fused check in :meth:`blocking_key`:
        #: ``(update, base vector, merged counters, changed)``.  Valid only
        #: for the exact same update object while the base vector is still
        #: current — :meth:`absorb_metadata` checks both (by identity)
        #: before consuming it.
        self._staged: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def destinations(self, register: Register) -> Sequence[ReplicaId]:
        """Broadcast: every other replica stores every register."""
        return tuple(
            rid for rid in self.share_graph.replica_ids if rid != self.replica_id
        )

    def make_metadata(self, register: Register) -> Tuple[VectorTimestamp, int]:
        """Increment the local entry of the vector clock."""
        self.vector = self.vector.incremented(self.replica_id)
        return self.vector, self.vector.size_counters()

    def can_apply(self, message: UpdateMessage) -> bool:
        """Classical causal-broadcast delivery condition.

        Encoded once, in :meth:`blocking_key` ("nothing blocks").
        """
        return self.blocking_key(message) is None

    def absorb_metadata(self, message: UpdateMessage) -> None:
        """Element-wise maximum of the two vectors.

        Records the entries the merge raised, for the pending index.
        """
        staged = self._staged
        if (
            staged is not None
            and staged[0] is message.update
            and staged[1] is self.vector
        ):
            # The fused check in :meth:`blocking_key` already produced the
            # merge for exactly this message against exactly this vector.
            self._staged = None
            self.vector = VectorTimestamp._from_validated(staged[2])
            self._changed_entries = staged[3]
            return
        merged, changed = tsops.merge_union(
            self.vector.counters, message.metadata.counters
        )
        self.vector = VectorTimestamp._from_validated(merged)
        self._changed_entries = changed

    # ------------------------------------------------------------------
    # Pending-index hooks
    # ------------------------------------------------------------------
    def blocking_key(self, message: UpdateMessage) -> Optional[Hashable]:
        """One-pass delivery-condition evaluation: ``None``, or a wake key.

        ``("seq", k, n)`` is the exact-value bucket for the FIFO conjunct
        ``T[k] = τ[k] + 1`` (woken when ``τ[k]`` reaches ``n − 1``);
        ``("ge", j)`` wakes whenever entry ``j`` grows.
        """
        remote: VectorTimestamp = message.metadata
        local = self.vector.counters
        remote_counters = remote.counters
        sender = message.sender
        n = remote_counters.get(sender, 0)
        if local.get(sender, 0) != n - 1:
            # The FIFO conjunct fails; don't touch the other entries (or the
            # cached total) at all — a long out-of-order run from one sender
            # rechecks here once per apply.
            return ("seq", sender, n)
        total = remote.__dict__.get("_total")
        if total is None:
            total = remote.total()
        key, merged, changed = tsops.vector_try_apply(
            local, remote_counters, sender, total
        )
        if key is None:
            self._staged = (message.update, self.vector, merged, changed)
        return key

    def applied_keys(self, message: UpdateMessage) -> Iterable[Hashable]:
        """Wake keys for the vector entries the merge just raised.

        Inlined :meth:`~repro.core.protocol.CausalReplica.wake_keys` (same
        key scheme): the common merge raises exactly one entry, and this
        runs once per apply.
        """
        keys: list = []
        for key, value in self._changed_entries:
            keys.append(("seq", key, value + 1))
            keys.append(("ge", key))
        return keys

    def metadata_size(self) -> int:
        """``R`` counters."""
        return self.vector.size_counters()

    def wire_codec(self):
        """The classical replica-indexed vector codec (family ``vector``)."""
        return VECTOR_CODEC


def full_replication_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """Replica factory for :class:`~repro.sim.cluster.Cluster`."""
    return FullReplicationReplica(graph, replica_id)
