"""The oblivious baseline: track only edges incident on the replica.

A replica that indexes its timestamp only by its own incoming and outgoing
share-graph edges can enforce per-channel FIFO ordering but is *oblivious*
(in the sense of Theorem 8) to every loop edge of its timestamp graph.  On
any topology whose timestamp graphs contain loop edges — the triangle of
:func:`repro.sim.topologies.triangle_placement` is the smallest — adversarial
message delays make it apply an update before one of its causal
dependencies, violating safety.

This is the executable counterpart of the necessity half of Theorem 8
(experiment E4): the paper proves *some* execution breaks any protocol that
ignores a timestamp-graph edge, and the simulator exhibits one.
"""

from __future__ import annotations

from ..core.protocol import CausalReplica
from ..core.registers import ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import TimestampGraph


class IncidentOnlyReplica(EdgeIndexedReplica):
    """The edge-indexed algorithm restricted to incident edges (unsafe)."""

    def __init__(self, share_graph: ShareGraph, replica_id: ReplicaId) -> None:
        tgraph = TimestampGraph.from_edges(
            share_graph, replica_id, share_graph.incident_edges(replica_id)
        )
        super().__init__(share_graph, replica_id, timestamp_graph=tgraph)


def incident_only_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """Replica factory for :class:`~repro.sim.cluster.Cluster`."""
    return IncidentOnlyReplica(graph, replica_id)
