"""Edge tracking derived from Hélary–Milani minimal hoops (Section 3.2).

Hélary and Milani's criterion says a replica must keep/transmit information
about register ``x`` iff it stores ``x`` or belongs to a minimal x-hoop.
This baseline turns that register-level criterion into an edge-indexed
protocol: replica ``i`` indexes its timestamp by every share-graph edge whose
label set contains a register the criterion asks ``i`` to track
(:func:`repro.core.hoops.hoop_tracked_edges`).

With the **original** minimality definition the resulting edge sets are safe
but can be strictly larger than the paper's timestamp graph (counterexample 1
— wasted metadata).  With the **modified** definition of Appendix A they can
miss edges Theorem 8 proves necessary (counterexample 2 — the protocol is
unsafe), which the necessity experiment demonstrates by execution.
"""

from __future__ import annotations

from ..core.hoops import hoop_tracked_edges
from ..core.protocol import CausalReplica
from ..core.registers import ReplicaId
from ..core.replica import EdgeIndexedReplica
from ..core.share_graph import ShareGraph
from ..core.timestamp_graph import TimestampGraph
from ..wire.codecs import HOOP_CODEC


class HoopTrackingReplica(EdgeIndexedReplica):
    """The edge-indexed algorithm indexed by the Hélary–Milani edge sets."""

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_id: ReplicaId,
        modified: bool = False,
    ) -> None:
        edges = hoop_tracked_edges(share_graph, replica_id, modified=modified)
        # Incident edges are always tracked: the prototype's FIFO-per-channel
        # bookkeeping needs them regardless of the hoop criterion.
        edges = edges | share_graph.incident_edges(replica_id)
        tgraph = TimestampGraph.from_edges(share_graph, replica_id, edges)
        super().__init__(share_graph, replica_id, timestamp_graph=tgraph)
        self.modified = modified

    def wire_codec(self):
        """The hoop family codec (edge-shaped body, distinct wire tag)."""
        return HOOP_CODEC


def hoop_tracking_factory(graph: ShareGraph, replica_id: ReplicaId) -> CausalReplica:
    """Factory using the original minimal-hoop definition."""
    return HoopTrackingReplica(graph, replica_id, modified=False)


def modified_hoop_tracking_factory(
    graph: ShareGraph, replica_id: ReplicaId
) -> CausalReplica:
    """Factory using the modified minimal-hoop definition (can be unsafe)."""
    return HoopTrackingReplica(graph, replica_id, modified=True)
