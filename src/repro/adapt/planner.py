"""Bounded reconfiguration planning against the placement objective.

The planner turns one window of sensed signals into a *bounded diff*
against the current register placement: at most ``max_moves`` register
moves, each compiled into the existing reconfiguration action algebra
(one ``add_edge`` placing the register at its new holder, one
``remove_edge`` dropping the old copy).  Two move families implement the
paper's objective from opposite ends:

* **attract** — a hot register's non-pinned copy migrates to the replica
  closest to its current writer, cutting the writer→copy propagation
  latency every one of its updates pays;
* **shed** — a cold register stored at a hot *writer* migrates to an
  idle replica, thinning the writer's share-graph neighborhood: fewer
  incident edges mean fewer ``|E_i|`` counters in every timestamp the
  writer ships (Theorem 15's cost model).

A diff is only returned when it is *feasible* — every intermediate
placement validates (:func:`~repro.sim.reconfig.apply_action` raises
otherwise), every intermediate share graph stays connected, capacity and
pinned copies are respected, and the final placement re-validates as a
:class:`~repro.placement.base.PlacementResult` of the original spec —
and *worth it*: the traffic-weighted predicted cost (propagation
latency + shipped timestamp counters, the same quantities
:mod:`repro.placement.score` scores statically) must beat the current
placement's by the configured margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.registers import Register, RegisterPlacement, ReplicaId
from ..core.share_graph import ShareGraph
from ..lower_bounds import algorithm_counters
from ..placement.base import PlacementResult
from ..sim.reconfig import ReconfigAction, ReconfigSchedule, add_edge, apply_action, remove_edge

__all__ = ["PlanDiff", "Planner", "RegisterMove"]


@dataclass(frozen=True)
class RegisterMove:
    """Move one register copy ``source -> target``, anchored at a peer.

    ``anchor`` is a surviving holder of the register; the move compiles to
    ``add_edge(anchor, target, register)`` followed by
    ``remove_edge(anchor, source)``.  ``remove_edge`` drops *every*
    register the anchor–source pair shares, so any others — the
    ``collateral`` — are re-granted to ``source`` right away with one
    ``add_edge`` each.  A re-grant's state transfer is empty (the source
    already holds the history), so collateral costs one cheap epoch, not
    a warming window; the moved register's replication factor never drops
    below its starting value at any intermediate epoch.
    """

    register: Register
    anchor: ReplicaId
    source: ReplicaId
    target: ReplicaId
    #: Registers anchor and source also share, dropped by the
    #: ``remove_edge`` and re-granted to ``source`` immediately after.
    collateral: Tuple[Register, ...] = ()
    #: Why the planner chose it — ``"attract"`` or ``"shed"``.
    reason: str = "attract"

    def describe(self) -> str:
        return (
            f"{self.reason} {self.register!r}: {self.source} -> {self.target} "
            f"(anchor {self.anchor})"
        )

    def actions(self, start: float, spacing: float) -> Tuple[ReconfigAction, ...]:
        """The reconfiguration actions realising this move."""
        steps = [
            add_edge(start, self.anchor, self.target, register=self.register),
            remove_edge(start + spacing, self.anchor, self.source),
        ]
        for offset, register in enumerate(self.collateral, start=2):
            steps.append(
                add_edge(
                    start + offset * spacing, self.anchor, self.source,
                    register=register,
                )
            )
        return tuple(steps)


@dataclass(frozen=True)
class PlanDiff:
    """A validated, bounded placement diff with its predicted payoff."""

    moves: Tuple[RegisterMove, ...]
    #: The placement the moves produce (validated against the spec).
    placement: RegisterPlacement
    #: Traffic-weighted predicted cost before / after (lower is better).
    predicted_before: float
    predicted_after: float
    validated: Optional[PlacementResult] = field(default=None, compare=False)

    @property
    def predicted_gain(self) -> float:
        """Relative predicted improvement in [0, 1]."""
        if self.predicted_before <= 0:
            return 0.0
        return 1.0 - self.predicted_after / self.predicted_before

    def schedule(self, start: float, spacing: float = 0.001,
                 name: str = "adaptive") -> ReconfigSchedule:
        """The moves as an installable :class:`ReconfigSchedule`."""
        actions: List[ReconfigAction] = []
        at = start
        for move in self.moves:
            steps = move.actions(at, spacing)
            actions.extend(steps)
            at += len(steps) * spacing
        return ReconfigSchedule(name=name, actions=tuple(actions))

    def describe(self) -> str:
        moves = "; ".join(move.describe() for move in self.moves)
        return (
            f"{len(self.moves)} moves ({moves}), predicted cost "
            f"{self.predicted_before:.1f} -> {self.predicted_after:.1f}"
        )


class Planner:
    """Propose bounded diffs from sensed traffic against a placement.

    Parameters
    ----------
    result:
        The :class:`PlacementResult` the run started from — supplies the
        spec (capacity, registers), the replica→node assignment and the
        topology latencies.  The *placement* evolves with the run; the
        assignment is fixed (the controller moves registers, not
        replicas).
    pinned:
        Register → replica copies that may never move (each register's
        home copy, which the workload addresses directly).  Defaults to
        pinning every register at its lowest-id initial holder.
    max_moves:
        Diff budget per proposal.
    margin:
        Required relative predicted improvement (``after`` must be below
        ``before * (1 - margin)``).
    min_writes:
        Window writes below which a register is not considered hot.
    latency_weight / counter_weight:
        Objective mix: milliseconds of traffic-weighted propagation
        latency vs. shipped timestamp counters per window.
    """

    def __init__(
        self,
        result: PlacementResult,
        pinned: Optional[Mapping[Register, ReplicaId]] = None,
        max_moves: int = 2,
        margin: float = 0.05,
        min_writes: int = 4,
        latency_weight: float = 1.0,
        counter_weight: float = 1.0,
    ) -> None:
        self.result = result
        self.spec = result.spec
        self.assignment = dict(result.assignment)
        self._latency = result.topology.all_pairs_latency()
        if pinned is None:
            pinned = {
                register: min(result.placement.replicas_storing(register))
                for register in sorted(result.placement.registers)
            }
        self.pinned = dict(pinned)
        self.max_moves = max_moves
        self.margin = margin
        self.min_writes = min_writes
        self.latency_weight = latency_weight
        self.counter_weight = counter_weight
        #: Where this planner last attracted each register to.  Shed never
        #: displaces a deliberately-attracted copy: when the workload
        #: cycles back, the copy is already in place and the hot phase
        #: starts with zero relocation lag instead of a re-attract.
        self._attracted: Dict[Register, ReplicaId] = {}

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def latency_ms(self, a: ReplicaId, b: ReplicaId) -> float:
        """Base latency between two replicas' assigned nodes."""
        u, v = self.assignment[a], self.assignment[b]
        if u == v:
            return 0.1
        return self._latency[u][v]

    def _has_capacity(self, placement: RegisterPlacement,
                      replica_id: ReplicaId) -> bool:
        capacity = self.spec.capacity
        if capacity is None:
            return True
        return placement.storage_cost(replica_id) < capacity

    # ------------------------------------------------------------------
    # Move feasibility
    # ------------------------------------------------------------------
    def _anchor_for(
        self, placement: RegisterPlacement, register: Register,
        source: ReplicaId,
    ) -> Optional[Tuple[ReplicaId, Tuple[Register, ...]]]:
        """A surviving holder to anchor the move, with its collateral.

        Prefers an anchor sharing *only* this register with ``source`` (no
        collateral to re-grant), the pinned holder first; falls back to
        the pinned or lowest-id holder, whose other shared registers
        become the move's collateral.
        """
        pinned = self.pinned.get(register)
        candidates = [
            rid for rid in placement.replicas_storing(register)
            if rid != source
        ]
        if not candidates:
            return None
        sole = [
            rid for rid in candidates
            if placement.shared_registers(rid, source) == {register}
        ]
        pool = sole or candidates
        anchor = pinned if pinned in pool else min(pool)
        collateral = tuple(sorted(
            placement.shared_registers(anchor, source) - {register}
        ))
        return anchor, collateral

    def _feasible_move(self, placement: RegisterPlacement, register: Register,
                       source: ReplicaId, target: ReplicaId,
                       reason: str) -> Optional[Tuple[RegisterMove, RegisterPlacement]]:
        """Validate one move end to end; returns it with the new placement."""
        if source == target:
            return None
        if self.pinned.get(register) == source:
            return None
        if not placement.stores_register(source, register):
            return None
        if placement.stores_register(target, register):
            return None
        if len(placement.registers_at(source)) <= 1:
            return None
        if not self._has_capacity(placement, target):
            return None
        anchored = self._anchor_for(placement, register, source)
        if anchored is None or anchored[0] == target:
            return None
        anchor, collateral = anchored
        move = RegisterMove(register=register, anchor=anchor, source=source,
                            target=target, collateral=collateral,
                            reason=reason)
        working = placement
        try:
            for action in move.actions(0.0, 1.0):
                working = apply_action(working, action)
                if not ShareGraph.from_placement(working).is_connected():
                    return None
        except Exception:
            return None
        return move, working

    # ------------------------------------------------------------------
    # The predicted objective
    # ------------------------------------------------------------------
    def predicted_cost(self, placement: RegisterPlacement,
                       writes_by_register: Mapping[Register, int],
                       writer_of: Mapping[Register, ReplicaId]) -> float:
        """Traffic-weighted cost of serving the window on ``placement``.

        Every write to register ``x`` at writer ``w`` ships one update to
        each other copy: the latency term charges the writer→copy base
        latencies, the counter term charges ``|E_w|`` timestamp counters
        per shipped message — the measured quantities
        :func:`~repro.placement.score.score_placement` predicts
        statically, weighted by the window's actual write mix.
        """
        graph = ShareGraph.from_placement(placement)
        counters: Dict[ReplicaId, float] = {}
        cost = 0.0
        for register in sorted(writes_by_register):
            writes = writes_by_register[register]
            if writes <= 0:
                continue
            writer = writer_of.get(register, self.pinned.get(register))
            if writer is None or not placement.stores_register(writer, register):
                continue
            copies = [
                rid for rid in placement.replicas_storing(register)
                if rid != writer
            ]
            if writer not in counters:
                counters[writer] = float(algorithm_counters(graph, writer))
            for copy in copies:
                cost += writes * (
                    self.latency_weight * self.latency_ms(writer, copy)
                    + self.counter_weight * counters[writer]
                )
        return cost

    # ------------------------------------------------------------------
    # Proposal
    # ------------------------------------------------------------------
    def propose(self, placement: RegisterPlacement,
                writes_by_register: Mapping[Register, int],
                writes_by_replica: Mapping[ReplicaId, int],
                writer_of: Mapping[Register, ReplicaId]) -> Optional[PlanDiff]:
        """One bounded, validated, margin-beating diff — or ``None``.

        Deterministic in its inputs: candidate enumeration is fully
        sorted, so identical sensed windows propose identical diffs.
        """
        moves: List[RegisterMove] = []
        working = placement

        hot_registers = sorted(
            (r for r, n in writes_by_register.items() if n >= self.min_writes),
            key=lambda r: (-writes_by_register[r], r),
        )

        # Attract: bring each hot register's movable copy next to its
        # window writer.
        for register in hot_registers:
            if len(moves) >= self.max_moves:
                break
            writer = writer_of.get(register)
            if writer is None or not working.stores_register(writer, register):
                continue
            copies = sorted(
                rid for rid in working.replicas_storing(register)
                if rid != writer and self.pinned.get(register) != rid
            )
            targets = sorted(
                (rid for rid in working.replica_ids
                 if rid != writer
                 and not working.stores_register(rid, register)),
                key=lambda rid: (self.latency_ms(writer, rid), rid),
            )
            best: Optional[Tuple[RegisterMove, RegisterPlacement]] = None
            for source in copies:
                current_ms = self.latency_ms(writer, source)
                for target in targets:
                    if self.latency_ms(writer, target) >= current_ms:
                        break
                    candidate = self._feasible_move(
                        working, register, source, target, "attract"
                    )
                    if candidate is not None:
                        best = candidate
                        break
                if best is not None:
                    break
            if best is not None:
                moves.append(best[0])
                working = best[1]
                self._attracted[register] = best[0].target

        # Shed: thin hot writers' neighborhoods by moving their cold
        # registers to idle replicas, cutting shipped counters.  Skipped
        # entirely when counters carry no objective weight — a shed can
        # only pay for its migration window through the counter term.
        hot_writers = sorted(
            (rid for rid, n in writes_by_replica.items() if n >= self.min_writes),
            key=lambda rid: (-writes_by_replica[rid], rid),
        ) if self.counter_weight > 0 else []
        idle_replicas = [
            rid for rid in sorted(working.replica_ids)
            if writes_by_replica.get(rid, 0) < self.min_writes
        ]
        for writer in hot_writers:
            if len(moves) >= self.max_moves:
                break
            graph = ShareGraph.from_placement(working)
            cold = sorted(
                register for register in working.registers_at(writer)
                if writes_by_register.get(register, 0) == 0
                and self.pinned.get(register) != writer
                and self._attracted.get(register) != writer
            )
            for register in cold:
                # Only worth a migration window if it actually removes a
                # share edge (and with it the writer's counters for it).
                sole_link = any(
                    working.shared_registers(writer, peer) == {register}
                    for peer in graph.neighbors(writer)
                )
                if not sole_link:
                    continue
                # Park the copy near the register's home: in a shifting
                # workload the home replica is the likely next writer, so
                # a good shed is also a pre-emptive attract.
                home = self.pinned.get(register, writer)
                candidate = None
                for target in sorted(
                    idle_replicas,
                    key=lambda rid: (self.latency_ms(home, rid), rid),
                ):
                    candidate = self._feasible_move(
                        working, register, writer, target, "shed"
                    )
                    if candidate is not None:
                        break
                if candidate is not None:
                    moves.append(candidate[0])
                    working = candidate[1]
                    break

        if not moves:
            return None

        before = self.predicted_cost(placement, writes_by_register, writer_of)
        after = self.predicted_cost(working, writes_by_register, writer_of)
        if before <= 0 or after > before * (1.0 - self.margin):
            return None

        try:
            validated = PlacementResult(
                spec=self.spec,
                policy="adaptive",
                seed=self.result.seed,
                assignment=self.assignment,
                placement=working,
            )
        except Exception:
            return None
        if not validated.share_graph.is_connected():
            return None

        return PlanDiff(
            moves=tuple(moves),
            placement=working,
            predicted_before=before,
            predicted_after=after,
            validated=validated,
        )
