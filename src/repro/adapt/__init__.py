"""Closed-loop adaptive reconfiguration: sense → plan → act.

The offline placement layer (:mod:`repro.placement`) optimises the share
graph once, before the run; this package keeps optimising it *during*
the run.  A :class:`~repro.adapt.sensor.Sensor` reads the simulator's
cumulative telemetry into sliding
:class:`~repro.adapt.signals.SignalWindow`\\ s, a
:class:`~repro.adapt.planner.Planner` turns persistent workload shifts
into bounded, feasibility-validated placement diffs, and the
:class:`~repro.adapt.controller.AdaptiveController` installs accepted
diffs through the epoch-based reconfiguration machinery
(:mod:`repro.sim.reconfig`) — with hysteresis, fault deferral and rate
limiting so the loop is safe to leave attached.  Experiment E22
(:func:`repro.analysis.experiments.exp_adaptive`) demonstrates the loop
beating every static placement policy on a drifting-hotspot workload.
"""

from .controller import AdaptiveController, ControllerConfig, Decision
from .planner import PlanDiff, Planner, RegisterMove
from .sensor import Sensor, SignalSnapshot
from .signals import Hysteresis, SignalWindow

__all__ = [
    "AdaptiveController",
    "ControllerConfig",
    "Decision",
    "Hysteresis",
    "PlanDiff",
    "Planner",
    "RegisterMove",
    "Sensor",
    "SignalSnapshot",
    "SignalWindow",
]
