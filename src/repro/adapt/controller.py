"""The closed-loop adaptive reconfiguration controller (sense → plan → act).

:class:`AdaptiveController` closes the loop the offline placement layer
left open: a periodic timer samples the running host's signals through a
:class:`~repro.adapt.sensor.Sensor` into a sliding
:class:`~repro.adapt.signals.SignalWindow`, a
:class:`~repro.adapt.planner.Planner` turns persistent shifts into
bounded placement diffs, and accepted diffs are installed as ordinary
:class:`~repro.sim.reconfig.ReconfigSchedule` actions against the
running host's :class:`~repro.sim.reconfig.ReconfigManager`.

Stability discipline (the part that makes it safe to leave on):

* **hysteresis** — planning only arms after the hot-region write share
  stays above ``dominance_rise`` for ``arm`` consecutive windows, so a
  steady workload triggers *zero* reconfigurations;
* **deferral** — no plan is installed while a partition is open, a
  member is down, a migration window is active or a state transfer is
  still warming (the manager additionally defers commits on the same
  conditions, so an in-flight fault can never race a plan);
* **rate limiting** — at most one installed diff per ``cooldown`` of
  simulated time, each diff bounded to ``max_moves`` register moves, so
  migration-window downtime stays a bounded fraction of the run;
* **margin** — a diff must beat the current placement's predicted cost
  by ``margin`` before it is worth a migration window.

The one non-placement lever is compression: sustained timestamp bytes
per message above ``compress_bytes_per_msg`` switches the transport onto
batched delta encoding (the Section-5 wire optimisation), once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from ..core.registers import Register, ReplicaId
from ..placement.base import PlacementResult
from ..sim.engine import BatchingConfig, SimulationHost
from ..sim.reconfig import ReconfigManager
from .planner import PlanDiff, Planner
from .sensor import Sensor, SignalSnapshot
from .signals import Hysteresis, SignalWindow

__all__ = ["AdaptiveController", "ControllerConfig", "Decision"]


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs of the sense → plan → act loop."""

    #: Simulated time between sensor samples.
    interval: float = 5.0
    #: Sliding-window length, in samples.
    window: int = 3
    #: Minimum simulated time between two installed diffs.
    cooldown: float = 20.0
    #: Required relative predicted improvement before acting.
    margin: float = 0.05
    #: Maximum register moves per installed diff.
    max_moves: int = 2
    #: Window writes below which a register/writer is not hot.
    min_writes: int = 4
    #: Hot-region write share that arms / disarms planning.
    dominance_rise: float = 0.45
    dominance_fall: float = 0.30
    #: Consecutive armed windows required before planning.
    arm: int = 2
    #: Sustained timestamp bytes/msg that enables delta encoding
    #: (``None`` disables the compression lever).
    compress_bytes_per_msg: Optional[float] = None
    #: Batching shape of the compression lever.  The default batches only
    #: briefly: delta encoding does the heavy byte lifting, and a long
    #: batch window would show up directly in apply latency.
    compress_max_messages: int = 4
    compress_max_delay: float = 0.05
    #: Migration window of an auto-created :class:`ReconfigManager`.
    reconfig_window: float = 0.5
    #: Objective mix handed to the planner.
    latency_weight: float = 1.0
    counter_weight: float = 1.0
    #: Spacing between the compiled actions of one diff.
    action_spacing: float = 0.001


@dataclass(frozen=True)
class Decision:
    """One audit-trail entry: what the controller did and why."""

    time: float
    kind: str  # "reconfig" | "compress"
    reason: str
    moves: Tuple[str, ...] = ()
    predicted_before: float = 0.0
    predicted_after: float = 0.0

    def describe(self) -> str:
        if self.kind == "compress":
            return f"t={self.time:.1f} compress: {self.reason}"
        return (
            f"t={self.time:.1f} reconfig ({self.reason}): "
            + "; ".join(self.moves)
            + f" [predicted {self.predicted_before:.0f} -> "
            f"{self.predicted_after:.0f}]"
        )


class AdaptiveController:
    """Close the obs → placement → reconfig loop on a running host.

    Parameters
    ----------
    host:
        The running :class:`SimulationHost` (either architecture).
    result:
        The :class:`PlacementResult` the deployment started from — the
        spec, assignment and topology the planner replans against.
    pinned:
        Register → home replica copies the planner must never move
        (defaults to each register's lowest-id initial holder).
    config:
        A :class:`ControllerConfig`; defaults are conservative.

    Call :meth:`attach` once before running the workload; the controller
    samples on the host's own timer wheel and stops by itself when the
    run drains.
    """

    def __init__(
        self,
        host: SimulationHost,
        result: PlacementResult,
        pinned: Optional[Mapping[Register, ReplicaId]] = None,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        self.host = host
        self.result = result
        self.config = config or ControllerConfig()
        manager = host.reconfig_manager
        if manager is None:
            manager = ReconfigManager(host, window=self.config.reconfig_window)
        self.manager = manager
        self.region_of = {
            rid: result.region_of(rid) for rid in sorted(result.assignment)
        }
        self.sensor = Sensor(host, region_of=self.region_of)
        self.window: SignalWindow[SignalSnapshot] = SignalWindow(
            self.config.window
        )
        self.planner = Planner(
            result,
            pinned=pinned,
            max_moves=self.config.max_moves,
            margin=self.config.margin,
            min_writes=self.config.min_writes,
            latency_weight=self.config.latency_weight,
            counter_weight=self.config.counter_weight,
        )
        self.dominance = Hysteresis(
            self.config.dominance_rise, self.config.dominance_fall,
            arm=self.config.arm,
        )
        self.decisions: List[Decision] = []
        self.plans_installed = 0
        self._last_install: Optional[float] = None
        self._compressed = False
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "AdaptiveController":
        """Start the periodic sense → plan → act timer."""
        if not self._attached:
            self._attached = True
            self.host.schedule_timer(
                self.config.interval, self._tick, tag="adaptive-controller"
            )
        return self

    @property
    def compressed(self) -> bool:
        """Whether the compression lever has been pulled this run."""
        return self._compressed

    def _tick(self, host: SimulationHost, now: float) -> None:
        snapshot = self.sensor.sample()
        self.window.append(snapshot)
        self._decide(now)
        if host.busy():
            host.schedule_timer(
                self.config.interval, self._tick, tag="adaptive-controller"
            )

    # ------------------------------------------------------------------
    # Sense-side aggregates
    # ------------------------------------------------------------------
    def hot_region_share(self) -> Tuple[float, str]:
        """Share of window writes issued from the hottest region."""
        writes = self.window.merge_counts(lambda s: s.writes_by_replica)
        by_region: dict = {}
        for rid, count in sorted(writes.items()):
            region = self.region_of.get(rid)
            if region is not None:
                by_region[region] = by_region.get(region, 0) + count
        total = sum(by_region.values())
        if not total:
            return 0.0, ""
        region = max(sorted(by_region.items()), key=lambda item: item[1])[0]
        return by_region[region] / total, region

    def deferred(self) -> Optional[str]:
        """Why acting is unsafe right now (``None`` = clear to act)."""
        if self.host.transport.partitioned:
            return "partition open"
        injector = self.host.fault_injector
        if injector is not None and injector.down_replicas:
            return "members down"
        if self.manager.migrating:
            return "migration window active"
        if self.manager.warming_replicas():
            return "state transfer running"
        return None

    # ------------------------------------------------------------------
    # Plan / act
    # ------------------------------------------------------------------
    def _decide(self, now: float) -> None:
        self._maybe_compress(now)

        share, region = self.hot_region_share()
        armed = self.dominance.update(share)
        if not armed or not self.window.full:
            return
        if (
            self._last_install is not None
            and now - self._last_install < self.config.cooldown
        ):
            return
        if self.deferred() is not None:
            return

        diff = self.propose()
        if diff is None:
            return
        self.act(diff, now, reason=f"hot region {region} ({share:.0%} of writes)")

    def propose(self) -> Optional[PlanDiff]:
        """Run the planner on the current window (no side effects)."""
        return self.planner.propose(
            self.host.share_graph.placement,
            self.window.merge_counts(lambda s: s.writes_by_register),
            self.window.merge_counts(lambda s: s.writes_by_replica),
            self._merged_writer_of(),
        )

    def _merged_writer_of(self) -> Mapping[Register, ReplicaId]:
        merged: dict = {}
        for snapshot in self.window:
            merged.update(snapshot.writer_of)
        return merged

    def act(self, diff: PlanDiff, now: float, reason: str = "planned") -> None:
        """Install one validated diff against the running host."""
        schedule = diff.schedule(
            now + self.config.action_spacing,
            spacing=self.config.action_spacing,
            name=f"adaptive@{now:.1f}",
        )
        self.manager.install(schedule)
        self.plans_installed += 1
        self._last_install = now
        self.dominance.reset()
        self.decisions.append(
            Decision(
                time=now,
                kind="reconfig",
                reason=reason,
                moves=tuple(move.describe() for move in diff.moves),
                predicted_before=diff.predicted_before,
                predicted_after=diff.predicted_after,
            )
        )

    def _maybe_compress(self, now: float) -> None:
        threshold = self.config.compress_bytes_per_msg
        if threshold is None or self._compressed or not self.window.full:
            return
        busy = [s for s in self.window if s.messages > 0]
        if len(busy) < self.window.capacity:
            return
        mean_bytes = sum(s.ts_bytes_per_msg for s in busy) / len(busy)
        if mean_bytes <= threshold:
            return
        self.host.transport.enable_batching(
            BatchingConfig(
                max_messages=self.config.compress_max_messages,
                max_delay=self.config.compress_max_delay,
                delta_encoding=True,
            )
        )
        self._compressed = True
        self.decisions.append(
            Decision(
                time=now,
                kind="compress",
                reason=(
                    f"timestamp bytes/msg {mean_bytes:.1f} > {threshold:.1f}; "
                    "delta encoding enabled"
                ),
            )
        )
