"""Mid-run signal extraction for the adaptive controller.

Every source the simulator already maintains is *cumulative* — per-channel
wire books, replica event traces, the apply-latency sample list — so the
:class:`Sensor` keeps a consumption cursor into each and emits per-window
deltas as one immutable :class:`SignalSnapshot`:

* per-channel / per-sender **timestamp bytes vs. the closed-form bound**
  (``algorithm_counters``, the ``|E_i|`` of Theorem 15) — the byte
  pressure signal behind the compression lever and edge shedding;
* **hot/cold register and writer activity** from fresh ``ISSUE`` events —
  what the planner attracts copies towards and sheds copies away from;
* **skewed channel traffic** (per-channel message deltas);
* overall and **region-level apply-latency p99** over the window, the
  placement-quality signal.

Sampling is read-only and allocation-light: one pass over the new suffix
of each replica's trace plus a dict diff of the wire books.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.protocol import EventKind
from ..core.registers import Register, ReplicaId
from ..lower_bounds import algorithm_counters

__all__ = ["Sensor", "SignalSnapshot"]

Channel = Tuple[ReplicaId, ReplicaId]


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(math.ceil(fraction * len(ordered))) - 1)
    return ordered[max(0, index)]


@dataclass(frozen=True)
class SignalSnapshot:
    """Window deltas of every controller-relevant signal."""

    time: float
    #: Wire messages / timestamp bytes sent since the previous sample.
    messages: int
    timestamp_bytes: int
    #: Measured timestamp bytes per message over the window (0 if idle).
    ts_bytes_per_msg: float
    #: Traffic-weighted mean ``|E_i|`` of the window's senders — the
    #: closed-form counters-per-message bound the bytes should track.
    bound_counters_per_msg: float
    #: Per-channel message deltas (skew signal).
    channel_messages: Mapping[Channel, int] = field(default_factory=dict)
    #: Fresh client writes per register / per issuing replica.
    writes_by_register: Mapping[Register, int] = field(default_factory=dict)
    writes_by_replica: Mapping[ReplicaId, int] = field(default_factory=dict)
    #: The replica that issued most of each register's window writes.
    writer_of: Mapping[Register, ReplicaId] = field(default_factory=dict)
    #: Apply-latency p99 over the window's fresh samples (overall and by
    #: the applying replica's region, when a region map was given).
    apply_p99: float = 0.0
    region_apply_p99: Mapping[str, float] = field(default_factory=dict)


class Sensor:
    """Incremental reader of one host's cumulative telemetry sources."""

    def __init__(self, host, region_of: Optional[Mapping[ReplicaId, str]] = None):
        self.host = host
        self.region_of = dict(region_of or {})
        #: Wire-book cursor: channel -> (messages, timestamp_bytes).
        self._wire_seen: Dict[Channel, Tuple[int, int]] = {}
        #: Trace cursor: replica -> events consumed.
        self._events_seen: Dict[ReplicaId, int] = {}
        #: Apply-latency samples consumed from ``metrics.apply_latencies``.
        self._latencies_seen = 0
        #: Issue times by uid, for region-level apply latencies.
        self._issue_times: Dict[object, float] = {}
        #: ``algorithm_counters`` memo, invalidated on epoch change.
        self._bound_epoch: Optional[int] = None
        self._bounds: Dict[ReplicaId, float] = {}

    # ------------------------------------------------------------------
    def _sender_bound(self, sender: ReplicaId) -> float:
        host = self.host
        epoch = getattr(host, "epoch", 0)
        if epoch != self._bound_epoch:
            self._bounds = {}
            self._bound_epoch = epoch
        bound = self._bounds.get(sender)
        if bound is None:
            if sender in host.share_graph.replica_ids:
                bound = float(algorithm_counters(host.share_graph, sender))
            else:
                bound = 0.0
            self._bounds[sender] = bound
        return bound

    def sample(self) -> SignalSnapshot:
        """One window's deltas across every source, as of ``host.now``."""
        host = self.host

        # Wire books: per-channel message / timestamp-byte deltas.
        channel_messages: Dict[Channel, int] = {}
        messages = 0
        timestamp_bytes = 0
        weighted_bound = 0.0
        for channel, stats in sorted(host.transport.stats.per_channel.items()):
            seen_msgs, seen_bytes = self._wire_seen.get(channel, (0, 0))
            d_msgs = stats.messages - seen_msgs
            d_bytes = stats.timestamp_bytes - seen_bytes
            self._wire_seen[channel] = (stats.messages, stats.timestamp_bytes)
            if d_msgs <= 0:
                continue
            channel_messages[channel] = d_msgs
            messages += d_msgs
            timestamp_bytes += d_bytes
            weighted_bound += d_msgs * self._sender_bound(channel[0])

        # Replica traces: fresh issues (hot registers / writers) and the
        # issue times the region-level apply latencies need.
        writes_by_register: Dict[Register, int] = {}
        writes_by_replica: Dict[ReplicaId, int] = {}
        writer_votes: Dict[Register, Dict[ReplicaId, int]] = {}
        fresh_applies: List[Tuple[ReplicaId, object, float]] = []
        for rid, events in sorted(host.events_by_replica().items()):
            start = self._events_seen.get(rid, 0)
            for event in events[start:]:
                if event.kind is EventKind.ISSUE and event.update is not None:
                    register = event.update.register
                    writes_by_register[register] = (
                        writes_by_register.get(register, 0) + 1
                    )
                    writes_by_replica[rid] = writes_by_replica.get(rid, 0) + 1
                    writer_votes.setdefault(register, {})
                    writer_votes[register][rid] = (
                        writer_votes[register].get(rid, 0) + 1
                    )
                    self._issue_times[event.update.uid] = event.sim_time
                elif event.kind is EventKind.APPLY and event.update is not None:
                    fresh_applies.append(
                        (rid, event.update.uid, event.sim_time)
                    )
            self._events_seen[rid] = len(events)

        writer_of = {
            register: max(sorted(votes.items()), key=lambda item: item[1])[0]
            for register, votes in writer_votes.items()
        }

        # Region-level apply latencies from the fresh applies whose issue
        # we have seen (always, since issues precede applies in the trace).
        by_region: Dict[str, List[float]] = {}
        for rid, uid, applied_at in fresh_applies:
            issued_at = self._issue_times.get(uid)
            if issued_at is None:
                continue
            region = self.region_of.get(rid)
            if region is not None:
                by_region.setdefault(region, []).append(applied_at - issued_at)

        latencies = host.metrics.apply_latencies
        fresh_latencies = [float(v) for v in latencies[self._latencies_seen:]]
        self._latencies_seen = len(latencies)

        return SignalSnapshot(
            time=host.now,
            messages=messages,
            timestamp_bytes=timestamp_bytes,
            ts_bytes_per_msg=(timestamp_bytes / messages) if messages else 0.0,
            bound_counters_per_msg=(
                weighted_bound / messages if messages else 0.0
            ),
            channel_messages=channel_messages,
            writes_by_register=writes_by_register,
            writes_by_replica=writes_by_replica,
            writer_of=writer_of,
            apply_p99=_percentile(fresh_latencies, 0.99),
            region_apply_p99={
                region: _percentile(samples, 0.99)
                for region, samples in sorted(by_region.items())
            },
        )
