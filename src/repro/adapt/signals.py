"""Sliding signal windows and hysteresis for the adaptive controller.

The controller must react to *persistent* workload shifts and ignore
noise: a single bursty window must not trigger a migration (each one
costs availability), and a steady workload must trigger none at all.
Two small primitives implement that discipline:

* :class:`SignalWindow` — a bounded sliding window of samples with the
  aggregates the planner consumes (sum/mean/last and per-key merges of
  dict-valued signals);
* :class:`Hysteresis` — a two-threshold trigger with an arming count:
  it fires only after ``arm`` *consecutive* samples at or above the
  ``rise`` threshold, and once fired stays quiet until the signal falls
  to ``fall`` or below.  The gap between the thresholds is what keeps a
  signal oscillating around a single cutoff from flapping the
  controller.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generic, Iterator, List, Mapping, TypeVar

from ..core.errors import ConfigurationError

__all__ = ["Hysteresis", "SignalWindow"]

T = TypeVar("T")


class SignalWindow(Generic[T]):
    """A bounded sliding window of signal samples (oldest dropped first)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"signal window capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._samples: Deque[T] = deque(maxlen=capacity)

    def append(self, sample: T) -> None:
        """Add one sample, evicting the oldest beyond ``capacity``."""
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[T]:
        return iter(self._samples)

    @property
    def full(self) -> bool:
        """``True`` once ``capacity`` samples have accumulated."""
        return len(self._samples) == self.capacity

    def last(self) -> T:
        """The most recent sample."""
        if not self._samples:
            raise ConfigurationError("signal window is empty")
        return self._samples[-1]

    def samples(self) -> List[T]:
        """The window contents, oldest first."""
        return list(self._samples)

    # ------------------------------------------------------------------
    # Aggregates over numeric / dict-valued projections
    # ------------------------------------------------------------------
    def total(self, key) -> float:
        """Sum of ``key(sample)`` over the window."""
        return float(sum(key(sample) for sample in self._samples))

    def mean(self, key) -> float:
        """Mean of ``key(sample)`` over the window (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self.total(key) / len(self._samples)

    def merge_counts(self, key) -> Dict:
        """Per-key sums of dict-valued ``key(sample)`` over the window."""
        merged: Dict = {}
        for sample in self._samples:
            mapping: Mapping = key(sample)
            for k, v in mapping.items():
                merged[k] = merged.get(k, 0) + v
        return merged


class Hysteresis:
    """A two-threshold trigger with an arming count.

    ``update(value)`` returns ``True`` exactly while the trigger is
    *active*: it activates after ``arm`` consecutive updates with
    ``value >= rise`` and deactivates on the first update with
    ``value <= fall``.  Values in the dead band ``(fall, rise)`` keep the
    current state but reset the arming streak, so only a persistent
    excursion fires.
    """

    def __init__(self, rise: float, fall: float, arm: int = 2) -> None:
        if fall > rise:
            raise ConfigurationError(
                f"hysteresis fall threshold {fall!r} must not exceed "
                f"rise threshold {rise!r}"
            )
        if arm < 1:
            raise ConfigurationError(f"arm count must be >= 1, got {arm}")
        self.rise = float(rise)
        self.fall = float(fall)
        self.arm = arm
        self.active = False
        self._streak = 0

    def update(self, value: float) -> bool:
        """Feed one sample; returns the (possibly new) active state."""
        if value >= self.rise:
            self._streak += 1
            if self._streak >= self.arm:
                self.active = True
        elif value <= self.fall:
            self._streak = 0
            self.active = False
        else:
            self._streak = 0
        return self.active

    def reset(self) -> None:
        """Drop back to the inactive state (e.g. after acting on it)."""
        self.active = False
        self._streak = 0
