"""Messages, update records and the abstract replica protocol.

This module defines the vocabulary shared by every protocol implementation
in the library (the paper's edge-indexed algorithm and all the baselines):

* :class:`Update` — a uniquely identified write issued by some replica.
* :class:`UpdateMessage` — the ``update(i, τ_i, x, v)`` message of the
  algorithm prototype: an update plus the metadata (timestamp) attached by
  the issuing protocol.
* :class:`ReplicaEvent` / :class:`EventKind` — the issue/apply trace entries
  consumed by the consistency checker (:mod:`repro.core.consistency`).
* :class:`CausalReplica` — the abstract base class every replica
  implementation (paper algorithm, full replication, track-all-edges,
  incident-only, hoop tracking, …) conforms to, so the simulator, checker
  and metrics treat them uniformly.
"""

from __future__ import annotations

import abc
import copy
import enum
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Deque,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .errors import ProtocolError, ReconfigurationError, RegisterNotStoredError
from .registers import Register, ReplicaId

class _AnyKey:
    """Sentinel type for :data:`ANY_KEY`.

    Copy/deepcopy/pickle all resolve back to the module-level singleton, so
    a cloned replica's ``ANY_KEY`` buckets stay poppable by the original
    key.
    """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<ANY_KEY>"

    def __copy__(self) -> "_AnyKey":
        return self

    def __deepcopy__(self, memo: Dict) -> "_AnyKey":
        return self

    def __reduce__(self) -> str:
        return "ANY_KEY"


#: Index key for pending messages whose blocking reason is unknown: they are
#: re-examined after *every* local apply (the conservative fallback that
#: reproduces the behaviour of a full pending-buffer rescan).
ANY_KEY = _AnyKey()

#: A globally unique update identifier: ``(issuing replica, per-replica sequence number)``.
UpdateId = Tuple[ReplicaId, int]

#: Pending-index key gating *all* normal traffic at a replica that is still
#: receiving a state-transfer stream: pre-transfer history must finish
#: applying before any post-reconfiguration update does, because the new
#: epoch's timestamps cannot express dependencies on pre-epoch updates.
BOOTSTRAP_GATE = ("bootstrap-gate",)


@dataclass(frozen=True, slots=True)
class BootstrapMetadata:
    """Metadata of a state-transfer (bootstrap) message.

    When a replica joins — or an existing replica gains registers through a
    share-graph edge change — the reconfiguration coordinator replays the
    gained registers' update history to it as ordinary
    :class:`UpdateMessage`\\ s through the transport (so delays, batching,
    the sent-log and the crash-recovery resync all apply).  These messages
    bypass the protocol's delivery predicate: the coordinator has already
    topologically sorted them along ``↪``, and the receiver applies them
    strictly in ``index`` order (0-based, ``total`` messages in the stream).

    Attributes
    ----------
    index:
        Position of this message in the transfer stream.
    total:
        Stream length; applying message ``total - 1`` completes the
        transfer and lifts the replica's :data:`BOOTSTRAP_GATE`.
    epoch:
        The configuration epoch the transfer belongs to.
    """

    index: int
    total: int
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class Update:
    """A single write operation issued by a replica.

    Slotted: updates are the highest-volume objects in a run (one per write,
    referenced by every message copy), so dropping the per-instance
    ``__dict__`` measurably shrinks large backlogs.

    Attributes
    ----------
    issuer:
        The replica that issued (and locally applied) the update.
    seq:
        The issuer-local sequence number, starting at 1.  ``(issuer, seq)``
        is globally unique and is exposed as :attr:`uid`.
    register:
        The register written.
    value:
        The value written.  Values are opaque to the protocol.
    """

    issuer: ReplicaId
    seq: int
    register: Register
    value: Any

    @property
    def uid(self) -> UpdateId:
        """The globally unique identifier ``(issuer, seq)``."""
        return (self.issuer, self.seq)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"u({self.issuer}:{self.seq} {self.register}={self.value!r})"


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """The ``update(i, τ_i, x, v)`` message sent from the issuer to peers.

    Slotted like :class:`Update`: one instance per (update, destination)
    pair makes these the dominant allocation of every broadcast-heavy run.

    Attributes
    ----------
    update:
        The update being propagated.
    sender:
        The issuing replica ``i`` (always equal to ``update.issuer`` in the
        peer-to-peer architecture; kept separate so routed/piggybacked
        variants can forward messages through intermediaries).
    destination:
        The replica this copy of the message is addressed to.
    metadata:
        The protocol-specific timestamp attached to the update (an
        :class:`~repro.core.timestamps.EdgeTimestamp`, a
        :class:`~repro.core.timestamps.VectorTimestamp`, or whatever the
        protocol uses).
    metadata_size:
        Number of integer counters carried by ``metadata``; recorded here so
        metrics do not need to understand every metadata type.
    payload:
        ``True`` when the message carries the written value (a real update),
        ``False`` for metadata-only messages such as the dummy-register
        optimization's notifications.
    """

    update: Update
    sender: ReplicaId
    destination: ReplicaId
    metadata: Any
    metadata_size: int
    payload: bool = True
    #: The configuration epoch the message was issued in.  Stamped by the
    #: sending replica, carried in the wire frame header, and checked at
    #: delivery: a frame from a stale epoch is rejected cleanly (its content
    #: is recovered by the retransmission/resync layers, never by decoding
    #: metadata whose index structure no longer matches the configuration).
    epoch: int = 0

    # -- wire-format hooks ---------------------------------------------
    # The binary encoding itself lives in :mod:`repro.wire` (which imports
    # this module); these convenience hooks lazily bridge the two layers so
    # callers holding a message can ask for its bytes without knowing the
    # codec machinery.

    def encoded_size(self, codec: Any = None) -> Any:
        """Byte breakdown of this message as a standalone, fully-encoded
        wire envelope (a :class:`~repro.wire.frames.WireSizes`).

        ``codec`` optionally forces a timestamp-family codec (e.g. the dense
        matrix codec); by default the family is dispatched from the metadata
        type.  Delta encoding is per-channel transport state and therefore
        not reflected here — this is the context-free size of the message.
        """
        from ..wire.frames import message_wire_sizes

        return message_wire_sizes(self, codec=codec)

    def to_wire(self, codec: Any = None) -> bytes:
        """Serialize to a standalone wire envelope (full timestamp frame)."""
        from ..wire.frames import encode_message

        data, _ = encode_message(self, codec=codec)
        return data

    @classmethod
    def from_wire(cls, data: bytes) -> "UpdateMessage":
        """Decode a standalone wire envelope back into a message.

        Inverse of :meth:`to_wire` for payload messages; a metadata-only
        message (``payload=False``) ships no value, so its decoded update
        carries ``value=None`` — exactly what arrived on the wire.
        """
        from ..wire.frames import decode_message

        message, _ = decode_message(data)
        return message

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "update" if self.payload else "meta"
        return (
            f"{tag}({self.update}) {self.sender}->{self.destination} "
            f"[{self.metadata_size} counters]"
        )


class EventKind(enum.Enum):
    """The kinds of events a replica records in its local trace."""

    #: The replica issued an update (and applied it locally, step 2).
    ISSUE = "issue"
    #: The replica applied a remote update from its pending buffer (step 4).
    APPLY = "apply"
    #: The replica served a client read (recorded for client-session analyses).
    READ = "read"


@dataclass(frozen=True)
class ReplicaSnapshot:
    """A replica's durable state, as captured by :meth:`CausalReplica.snapshot`.

    The snapshot is a deep copy of every non-volatile attribute — the
    timestamp, register store, pending buffer (with its index), applied log
    and event trace — so :meth:`CausalReplica.restore` can rebuild the
    replica exactly as it was at the durability point.  Used by the
    fault-injection subsystem's crash/restart protocol
    (:mod:`repro.sim.faults`).
    """

    replica_id: ReplicaId
    state: Dict[str, Any]


@dataclass(frozen=True, slots=True)
class ReplicaEvent:
    """One entry of a replica's local trace.

    Slotted: one event per issue/apply/read makes these as numerous as
    updates themselves.

    Attributes
    ----------
    replica_id:
        The replica at which the event occurred.
    kind:
        Issue, apply or read.
    update:
        The update issued/applied; for reads, ``None``.
    register:
        The register involved (for reads, the register read).
    local_index:
        Position of this event in the replica's local order (0-based).
    sim_time:
        Simulation time at which the event happened (0.0 outside the
        simulator).
    """

    replica_id: ReplicaId
    kind: EventKind
    update: Optional[Update]
    register: Optional[Register]
    local_index: int
    sim_time: float = 0.0


#: Hoisted ``EventKind.APPLY`` — enum attribute access costs a descriptor
#: lookup, and the apply path records one event per applied update.
_APPLY = EventKind.APPLY


class CausalReplica(abc.ABC):
    """Abstract base class for every replica-protocol implementation.

    The algorithm prototype of Section 2.1 fixes the *shape* of a protocol —
    local reads answered immediately, local writes applied + timestamped +
    multicast, remote updates buffered until a delivery predicate holds —
    and leaves the timestamp structure, ``advance``/``merge`` and the
    predicate open.  Concrete subclasses fill those in.

    Subclasses must implement the five abstract methods; the base class
    provides the register storage, the pending buffer with its wake-key
    index, the local event trace, and the indexed apply loop realising
    step 4 of the prototype (:meth:`apply_ready`; the original full-rescan
    semantics survive as the :meth:`apply_ready_rescan` reference).
    """

    def __init__(self, replica_id: ReplicaId, registers: Iterable[Register]) -> None:
        self.replica_id = replica_id
        self.registers: FrozenSet[Register] = frozenset(registers)
        #: The configuration epoch this replica currently runs in; bumped by
        #: :meth:`migrate` and stamped onto every outgoing message.
        self.epoch: int = 0
        #: State-transfer stream length, or ``None`` when no transfer is in
        #: progress.  While a transfer is active the replica applies only
        #: bootstrap messages (in index order) and parks all normal traffic
        #: under :data:`BOOTSTRAP_GATE`.
        self._bootstrap_total: Optional[int] = None
        #: Next expected bootstrap stream index.
        self._bootstrap_next: int = 0
        #: Current value of every locally stored register (None = never written).
        self.store: Dict[Register, Any] = {r: None for r in self.registers}
        #: Remote updates received but not yet applied.  Applied messages
        #: are removed lazily (tombstoned by update uid in
        #: ``_applied_pending_uids`` and compacted once they reach half the
        #: list), so a delivery-driven drain pays O(1) amortised removal per
        #: apply instead of an O(P) rebuild per :meth:`apply_ready` call;
        #: use :meth:`pending_count` for the exact count.  Uids are value
        #: keys, so the bookkeeping survives deepcopy/pickle; each replica
        #: receives at most one message per update, keeping them unique.
        self.pending: List[UpdateMessage] = []
        self._applied_pending_uids: set = set()
        #: Uids currently buffered (pending minus tombstones), kept so
        #: :meth:`receive` can suppress duplicate deliveries in O(1) — the
        #: protocol-layer half of the exactly-once guarantee over lossy or
        #: duplicating channels (the transport's ack/resend layer is the
        #: at-least-once half).
        self._pending_uids: Set[UpdateId] = set()
        #: Duplicate deliveries suppressed by :meth:`receive`.
        self.duplicates_ignored: int = 0
        #: Local issue/apply/read trace, consumed by the consistency checker.
        self.events: List[ReplicaEvent] = []
        #: Number of updates issued locally (used for sequence numbers).
        self.issued_count: int = 0
        #: Updates applied at this replica, in application order.
        self.applied: List[Update] = []
        self._applied_uids: set = set()
        #: Uids applied from a state-transfer (bootstrap) stream rather than
        #: live propagation — replayed history, whose issue→apply delta
        #: measures the history's age, not the network (the host skips them
        #: when sampling apply latency).
        self.bootstrap_replayed: set = set()
        # -- pending-buffer index ------------------------------------------
        # Every buffered message lives in exactly one of two places: the
        # recheck queue (its predicate will be evaluated on the next
        # :meth:`apply_ready`) or one bucket of ``_blocked``, keyed by the
        # protocol-reported reason it last failed (:meth:`blocking_key`).
        # Applying a message notifies the keys it plausibly unblocked
        # (:meth:`applied_keys`), moving just those buckets back to the
        # queue — so an apply re-checks plausible candidates instead of
        # rescanning the whole buffer.
        self._recheck: Deque[UpdateMessage] = deque()
        self._blocked: Dict[Hashable, List[UpdateMessage]] = {}

    # ------------------------------------------------------------------
    # Hooks each protocol must provide
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def destinations(self, register: Register) -> Sequence[ReplicaId]:
        """Replicas (other than this one) that must receive updates to ``register``."""

    @abc.abstractmethod
    def make_metadata(self, register: Register) -> Tuple[Any, int]:
        """Advance the local timestamp for a write of ``register``.

        Returns the metadata to attach to the outgoing update message and its
        size in counters.  Called exactly once per local write, *after* the
        local store has been updated.
        """

    @abc.abstractmethod
    def can_apply(self, message: UpdateMessage) -> bool:
        """The protocol's delivery predicate ``J`` for a pending message."""

    @abc.abstractmethod
    def absorb_metadata(self, message: UpdateMessage) -> None:
        """The protocol's ``merge``: fold an applied message's metadata into the local timestamp."""

    @abc.abstractmethod
    def metadata_size(self) -> int:
        """Current number of integer counters held locally (the metadata overhead)."""

    def payload_for(self, register: Register, destination: ReplicaId) -> bool:
        """Whether the update message to ``destination`` carries the written value.

        The default is ``True``; the dummy-register optimization overrides
        this to send metadata-only messages to replicas that hold a register
        only as a dummy copy (Appendix D).
        """
        return True

    def wire_codec(self) -> Any:
        """The timestamp codec for this replica family's metadata, or ``None``.

        Each protocol family registers its codec by overriding this (the
        paper's replicas return the sparse edge codec, Full-Track the dense
        matrix codec, …); the transport's byte accounting resolves a
        message's codec through its sending replica.  ``None`` falls back to
        type-based dispatch (:func:`repro.wire.codecs.codec_for`).
        """
        return None

    # ------------------------------------------------------------------
    # Pending-index hooks (optional, for fast apply scheduling)
    # ------------------------------------------------------------------
    def blocking_key(self, message: UpdateMessage) -> Optional[Hashable]:
        """Evaluate the delivery predicate, reporting what blocks ``message``.

        Returns ``None`` when the predicate holds (the message is
        applicable now).  Otherwise returns a hashable key (an edge, a
        replica id, …) such that the predicate cannot start holding before
        the local state indexed by that key changes; the message is then
        parked until some applied message's :meth:`applied_keys` mentions
        the same key.  Combining the check and the blocking reason in one
        hook lets keyed protocols evaluate their conjuncts a single time
        per recheck.  Implementations must agree with :meth:`can_apply`.

        The default defers to :meth:`can_apply` and parks under
        :data:`ANY_KEY` — a bucket re-examined after every apply, which
        reproduces the semantics of the original full rescan for protocols
        that do not implement the hook.
        """
        return None if self.can_apply(message) else ANY_KEY

    def applied_keys(self, message: UpdateMessage) -> Optional[Iterable[Hashable]]:
        """Keys whose local state plausibly changed by applying ``message``.

        Returning ``None`` (the default) re-examines every parked message —
        always safe.  Protocols with keyed indexes return just the
        counters/edges their ``merge`` touched (see :meth:`wake_keys`).
        """
        return None

    @staticmethod
    def wake_keys(changed: Iterable[Tuple[Hashable, int]]) -> List[Hashable]:
        """Standard wake keys for raised counters, paired with :meth:`blocking_key`.

        For every ``(counter key, new value)`` raised by a merge, emits
        ``("seq", key, value + 1)`` — waking the exact-value bucket of a
        FIFO conjunct now expecting ``value + 1`` next — and ``("ge", key)``
        — waking every message parked on a monotone conjunct over that
        counter.  Shared by all keyed protocols so the key scheme stays a
        single contract.
        """
        keys: List[Hashable] = []
        for key, value in changed:
            keys.append(("seq", key, value + 1))
            keys.append(("ge", key))
        return keys

    def notify_pending(self, keys: Optional[Iterable[Hashable]] = None) -> None:
        """Re-examine parked messages after an out-of-band state change.

        Protocols that mutate delivery-relevant local state outside
        :meth:`absorb_metadata` (e.g. the client–server ``advance`` merging a
        client timestamp) must call this with the touched keys, or with
        ``None`` to re-examine everything.  The messages are re-checked on
        the next :meth:`apply_ready` call.
        """
        if keys is None:
            for bucket in self._blocked.values():
                self._recheck.extend(bucket)
            self._blocked.clear()
            return
        for key in keys:
            bucket = self._blocked.pop(key, None)
            if bucket:
                self._recheck.extend(bucket)
        bucket = self._blocked.pop(ANY_KEY, None)
        if bucket:
            self._recheck.extend(bucket)

    # ------------------------------------------------------------------
    # The algorithm prototype (Section 2.1), common to all protocols
    # ------------------------------------------------------------------
    def read(self, register: Register, sim_time: float = 0.0) -> Any:
        """Step 1: answer a client read from the local copy."""
        if register not in self.registers:
            raise RegisterNotStoredError(register, self.replica_id)
        self._record(EventKind.READ, None, register, sim_time)
        return self.store[register]

    def write(self, register: Register, value: Any,
              sim_time: float = 0.0) -> List[UpdateMessage]:
        """Step 2: apply a client write locally and produce the update messages.

        Returns one :class:`UpdateMessage` per destination replica; the caller
        (simulator or application) is responsible for transporting them.
        """
        if register not in self.registers:
            raise RegisterNotStoredError(register, self.replica_id)
        self.issued_count += 1
        update = Update(self.replica_id, self.issued_count, register, value)
        self.store[register] = value
        metadata, size = self.make_metadata(register)
        self.applied.append(update)
        self._applied_uids.add(update.uid)
        self._record(EventKind.ISSUE, update, register, sim_time)
        return [
            UpdateMessage(
                update=update,
                sender=self.replica_id,
                destination=dest,
                metadata=metadata,
                metadata_size=size,
                payload=self.payload_for(register, dest),
                epoch=self.epoch,
            )
            for dest in self.destinations(register)
        ]

    def receive(self, message: UpdateMessage) -> None:
        """Step 3: buffer a received update message.

        Deliveries of an update already applied or already buffered are
        suppressed, so retransmissions and duplicating channels cannot
        violate the exactly-once delivery assumption of the algorithm
        prototype.
        """
        uid = message.update.uid
        if uid in self._applied_uids or uid in self._pending_uids:
            self.duplicates_ignored += 1
            return
        self._pending_uids.add(uid)
        self.pending.append(message)
        self._recheck.append(message)

    def apply_ready(self, sim_time: float = 0.0, force: bool = False) -> List[Update]:
        """Step 4: apply pending updates whose predicate holds.

        Instead of rescanning the whole pending buffer to a fixpoint, this
        drains the recheck queue: newly received messages, plus messages
        whose blocking key was touched by an earlier apply.  ``force=True``
        re-enqueues every parked message first (used by the simulator's
        quiescence fixpoint as a safety net against protocols with
        imprecise :meth:`blocking_key` implementations).

        Returns the updates applied during this call, in application order.
        """
        if force and self._blocked:
            self.notify_pending(None)
        return self._drain_recheck(sim_time)

    def _drain_recheck(self, sim_time: float) -> List[Update]:
        """The indexed drain loop shared by :meth:`apply_ready` and
        :meth:`apply_batch` (one code path, so the two entry points cannot
        diverge semantically).  Attribute lookups are hoisted out of the
        loop: this is the hottest loop in the library — every delivered
        message passes through it at least once."""
        recheck = self._recheck
        if not recheck:
            return []
        applied_now: List[Update] = []
        blocked = self._blocked
        effective_key = self._effective_blocking_key
        protocol_key = self.blocking_key
        apply_one = self._apply
        applied_pending = self._applied_pending_uids
        bootstrap_cls = BootstrapMetadata
        while recheck:
            message = recheck.popleft()
            # Fast path for normal traffic outside a state transfer: go
            # straight to the protocol predicate.  Bootstrap messages and
            # gated traffic take the full decision in
            # :meth:`_effective_blocking_key` (same semantics, hoisted
            # checks).
            is_bootstrap = message.metadata.__class__ is bootstrap_cls
            if is_bootstrap or self._bootstrap_total is not None:
                key = effective_key(message)
            else:
                key = protocol_key(message)
            if key is None:
                applied_now.append(message.update)
                applied_pending.add(apply_one(message, sim_time))
                if is_bootstrap:
                    keys = self._effective_applied_keys(message)
                else:
                    keys = self.applied_keys(message)
                if keys is None:
                    self.notify_pending(None)
                else:
                    # Inlined notify_pending(keys): pop the woken buckets
                    # (plus the ANY_KEY fallback) straight into the queue.
                    for wake in keys:
                        bucket = blocked.pop(wake, None)
                        if bucket:
                            recheck.extend(bucket)
                    bucket = blocked.pop(ANY_KEY, None)
                    if bucket:
                        recheck.extend(bucket)
            else:
                bucket = blocked.get(key)
                if bucket is None:
                    blocked[key] = [message]
                else:
                    bucket.append(message)
        if applied_now:
            self._compact_pending()
        return applied_now

    def receive_many(self, messages: Iterable[UpdateMessage]) -> int:
        """Step 3, vectorized: buffer a batch of received messages.

        Same dedup semantics as :meth:`receive`, one loop, no per-message
        call overhead.  Returns the number of messages actually buffered
        (duplicates excluded).
        """
        applied_uids = self._applied_uids
        pending_uids = self._pending_uids
        pending = self.pending
        recheck = self._recheck
        count = 0
        for message in messages:
            uid = message.update.uid
            if uid in applied_uids or uid in pending_uids:
                self.duplicates_ignored += 1
                continue
            pending_uids.add(uid)
            pending.append(message)
            recheck.append(message)
            count += 1
        return count

    def apply_batch(self, batch: Any, sim_time: float = 0.0) -> List[Update]:
        """Steps 3+4 for a whole delivered batch: buffer it, then drain once.

        ``batch`` is a :class:`~repro.wire.batch.MessageBatch` or any
        iterable of :class:`UpdateMessage` (duck-typed on ``.messages`` so
        this module does not import the wire layer).  The messages are
        buffered in one :meth:`receive_many` pass and the recheck queue is
        drained by a single sweep of the shared indexed loop — the same
        code path :meth:`apply_ready` runs, so ``apply_batch(batch)`` is
        *by construction* equivalent to ``receive()`` of each message
        followed by one ``apply_ready()``, while replacing the per-message
        receive/event churn with two tight loops over the batch.

        Returns the updates applied during this call, in application order.
        """
        self.receive_many(getattr(batch, "messages", batch))
        return self._drain_recheck(sim_time)

    # ------------------------------------------------------------------
    # State transfer (bootstrap streams) and the gate over normal traffic
    # ------------------------------------------------------------------
    def _effective_blocking_key(self, message: UpdateMessage) -> Optional[Hashable]:
        """The full delivery decision: bootstrap stream order, then the gate,
        then the protocol predicate.

        Bootstrap messages apply strictly in stream-index order (the
        coordinator pre-sorted them along ``↪``); while a stream is open,
        every normal message parks under :data:`BOOTSTRAP_GATE` so no
        post-reconfiguration update can overtake pre-epoch history.
        """
        metadata = message.metadata
        if isinstance(metadata, BootstrapMetadata):
            if metadata.index == self._bootstrap_next:
                return None
            return ("bootstrap", metadata.index)
        if self._bootstrap_total is not None:
            return BOOTSTRAP_GATE
        return self.blocking_key(message)

    def _effective_applied_keys(
        self, message: UpdateMessage
    ) -> Optional[Iterable[Hashable]]:
        """Wake keys for an applied message, bootstrap streams included."""
        if isinstance(message.metadata, BootstrapMetadata):
            keys: List[Hashable] = [("bootstrap", self._bootstrap_next)]
            if self._bootstrap_total is None:
                # The stream just completed: lift the gate.
                keys.append(BOOTSTRAP_GATE)
            return keys
        return self.applied_keys(message)

    def begin_bootstrap(self, total: int) -> None:
        """Open a state-transfer stream of ``total`` messages.

        Called by the reconfiguration coordinator immediately before it
        sends the stream.  Until the stream completes, the replica applies
        only bootstrap messages (in order) and gates everything else.
        """
        if total <= 0:
            raise ProtocolError(f"bootstrap stream length must be positive: {total}")
        if self._bootstrap_total is not None:
            raise ProtocolError(
                f"replica {self.replica_id!r} already has a state transfer open"
            )
        self._bootstrap_total = total
        self._bootstrap_next = 0

    @property
    def bootstrapping(self) -> bool:
        """``True`` while a state-transfer stream is still being applied."""
        return self._bootstrap_total is not None

    def _compact_pending(self, force: bool = False) -> None:
        """Drop tombstoned (applied) messages from the pending list.

        Runs only once tombstones reach half the list (or on ``force``), so
        removal costs O(1) amortised per apply.
        """
        dead = self._applied_pending_uids
        if dead and (force or 2 * len(dead) >= len(self.pending)):
            self.pending = [m for m in self.pending if m.update.uid not in dead]
            dead.clear()

    def apply_ready_rescan(self, sim_time: float = 0.0) -> List[Update]:
        """Reference implementation of step 4: fixpoint rescan of the buffer.

        Kept for differential testing and benchmarking against the indexed
        path (:meth:`apply_ready`); semantically equivalent but O(P²) in the
        pending-buffer size ``P`` per call.
        """
        self._compact_pending(force=True)
        applied_now: List[Update] = []
        progress = True
        while progress:
            progress = False
            for message in list(self.pending):
                if self._effective_blocking_key(message) is not None:
                    continue
                self.pending.remove(message)
                self._apply(message, sim_time)
                applied_now.append(message.update)
                progress = True
        # Resynchronise the index with the buffer so the two entry points
        # can be mixed on one replica.
        self._recheck = deque(self.pending)
        self._blocked.clear()
        return applied_now

    def _apply(self, message: UpdateMessage, sim_time: float) -> UpdateId:
        """Apply a buffered message; returns the applied update's uid."""
        update = message.update
        if message.payload and update.register in self.registers:
            self.store[update.register] = update.value
        if isinstance(message.metadata, BootstrapMetadata):
            # Bootstrap messages carry stream-position metadata, not a
            # timestamp: advance the stream instead of merging.
            self.bootstrap_replayed.add(update.uid)
            self._bootstrap_next += 1
            if (
                self._bootstrap_total is not None
                and self._bootstrap_next >= self._bootstrap_total
            ):
                self._bootstrap_total = None
        else:
            self.absorb_metadata(message)
        uid = (update.issuer, update.seq)
        self.applied.append(update)
        self._applied_uids.add(uid)
        self._pending_uids.discard(uid)
        # Inlined self._record(...): one positional construction, no
        # per-apply method call or enum attribute lookup.
        events = self.events
        events.append(
            ReplicaEvent(
                self.replica_id, _APPLY, update, update.register,
                len(events), sim_time,
            )
        )
        return uid

    # ------------------------------------------------------------------
    # Epoch migration (dynamic membership support)
    # ------------------------------------------------------------------
    def migrate(self, new_graph: Any, epoch: int) -> None:
        """Adopt a new configuration: recompute the timestamp structure for
        the new share graph and carry the local state across the epoch.

        Protocol families that support dynamic membership override this
        (the paper's edge-indexed family does); the default refuses, so a
        reconfiguration against an unsupported baseline fails loudly
        instead of silently corrupting its metadata.
        """
        raise ReconfigurationError(
            f"protocol family {type(self).__name__} does not implement "
            "epoch migration"
        )

    def _migrate_common(self, new_registers: Iterable[Register], epoch: int) -> None:
        """The family-independent half of :meth:`migrate`.

        Adjusts the register store (gained registers start unwritten — their
        history arrives via the bootstrap stream; lost registers are
        dropped), garbage-collects pending messages whose register is no
        longer stored here, bumps the epoch, and re-keys the whole pending
        index against the new timestamp structure (every surviving message
        is re-examined on the next :meth:`apply_ready`).
        """
        new_registers = frozenset(new_registers)
        for register in new_registers - self.registers:
            self.store.setdefault(register, None)
        for register in self.registers - new_registers:
            self.store.pop(register, None)
        self.registers = new_registers
        self.discard_pending(
            lambda message: message.update.register not in new_registers
        )
        self.epoch = epoch
        self._compact_pending(force=True)
        self._recheck = deque(self.pending)
        self._blocked = {}

    def discard_pending(self, drop: Callable[[UpdateMessage], bool]) -> List[UpdateMessage]:
        """Remove buffered messages matching ``drop`` from the pending buffer.

        Used by epoch migration to garbage-collect messages for registers
        the replica no longer stores.  Already-applied (tombstoned) entries
        are never handed to ``drop``.  Returns the discarded messages.
        """
        dropped = [
            message
            for message in self.pending
            if message.update.uid in self._pending_uids and drop(message)
        ]
        if not dropped:
            return []
        uids = {message.update.uid for message in dropped}
        self._pending_uids -= uids
        self.pending = [m for m in self.pending if m.update.uid not in uids]
        self._remove_from_index(uids)
        return dropped

    def _remove_from_index(self, uids: Set[UpdateId]) -> None:
        """Scrub uids from the recheck queue and every blocked bucket."""
        self._recheck = deque(m for m in self._recheck if m.update.uid not in uids)
        for key in list(self._blocked):
            bucket = [m for m in self._blocked[key] if m.update.uid not in uids]
            if bucket:
                self._blocked[key] = bucket
            else:
                del self._blocked[key]

    def force_apply(self, message: UpdateMessage, sim_time: float = 0.0) -> None:
        """Apply a buffered message unconditionally (coordinator override).

        The reconfiguration flush uses this for messages still blocked after
        the old epoch's traffic has fully arrived: the coordinator applies
        them in a globally valid causal order, which the per-edge predicate
        can no longer certify once the edges that carried the dependency are
        about to disappear.
        """
        uid = message.update.uid
        if uid in self._applied_uids:
            return
        if uid not in self._pending_uids:
            raise ProtocolError(
                f"force_apply of a message not buffered at replica "
                f"{self.replica_id!r}: {message}"
            )
        self._apply(message, sim_time)
        self._applied_pending_uids.add(uid)
        self._remove_from_index({uid})
        self._compact_pending()

    # ------------------------------------------------------------------
    # Durable state (crash/restart support)
    # ------------------------------------------------------------------
    #: Attributes excluded from durable snapshots — architecture-specific
    #: in-memory state (e.g. buffered client requests) that a crash loses;
    #: subclasses extend the tuple and reinitialise the attributes in
    #: :meth:`_reset_volatile`.
    _VOLATILE_STATE: ClassVar[Tuple[str, ...]] = ()

    def snapshot(self) -> ReplicaSnapshot:
        """Capture the replica's durable state (write-ahead persistence).

        The fault model persists every protocol state change synchronously:
        the timestamp, register store, pending buffer + index, applied log,
        sequence counter and event trace all survive a crash.  What a crash
        costs is *availability* — deliveries addressed to the replica while
        it is down are lost and must be recovered via the transport's
        anti-entropy resync.
        """
        state = {
            name: value
            for name, value in self.__dict__.items()
            if name not in self._VOLATILE_STATE
        }
        return ReplicaSnapshot(replica_id=self.replica_id, state=copy.deepcopy(state))

    def restore(self, snapshot: ReplicaSnapshot) -> None:
        """Rebuild the replica from a durable snapshot (crash recovery).

        Volatile attributes are re-initialised empty; everything else is
        deep-copied back so the restored replica shares no structure with
        the snapshot (it can be restored from again).
        """
        if snapshot.replica_id != self.replica_id:
            raise ProtocolError(
                f"snapshot of replica {snapshot.replica_id!r} cannot restore "
                f"replica {self.replica_id!r}"
            )
        self.__dict__.update(copy.deepcopy(snapshot.state))
        self._reset_volatile()

    def _reset_volatile(self) -> None:
        """Re-initialise the non-durable attributes after a restore."""

    def known_update_ids(self) -> Set[UpdateId]:
        """Uids this replica holds durably: applied plus buffered.

        The restarted replica's half of the anti-entropy exchange — the
        transport re-sends exactly the logged messages outside this set
        (:meth:`~repro.sim.engine.Transport.resync`).
        """
        return set(self._applied_uids) | set(self._pending_uids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def has_applied(self, uid: UpdateId) -> bool:
        """``True`` iff the update with this id has been applied here."""
        return uid in self._applied_uids

    def pending_count(self) -> int:
        """Number of buffered, not-yet-applied update messages."""
        return len(self._pending_uids)

    def _record(self, kind: EventKind, update: Optional[Update],
                register: Optional[Register], sim_time: float) -> None:
        self.events.append(
            ReplicaEvent(
                replica_id=self.replica_id,
                kind=kind,
                update=update,
                register=register,
                local_index=len(self.events),
                sim_time=sim_time,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} id={self.replica_id} "
            f"registers={sorted(self.registers)} applied={len(self.applied)}>"
        )
