"""The paper's algorithm: a replica with an edge-indexed vector timestamp.

:class:`EdgeIndexedReplica` instantiates the algorithm prototype of
Section 2.1 with the timestamp structure, ``advance``, ``merge`` and
delivery predicate ``J`` of Section 3.3:

* the timestamp ``τ_i`` is a vector indexed by the edges ``E_i`` of replica
  ``i``'s timestamp graph (:mod:`repro.core.timestamp_graph`);
* a local write of register ``x`` increments ``τ_i[e_ik]`` for every tracked
  edge towards a replica ``k`` that also stores ``x`` and attaches the
  resulting vector to the outgoing ``update`` messages;
* a pending update from ``k`` with timestamp ``T`` is applied once
  ``τ_i[e_ki] = T[e_ki] − 1`` and ``τ_i[e_ji] ≥ T[e_ji]`` for every other
  commonly indexed incoming edge;
* applying it merges ``T`` into ``τ_i`` by element-wise maximum over the
  commonly indexed edges.

Because an update message carries the *issuer's* timestamp (indexed by
``E_k``), the intersection ``E_i ∩ E_k`` needed by the predicate and the
merge is recovered directly from the two index sets — no replica needs any
global knowledge beyond its own timestamp graph.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .protocol import CausalReplica, UpdateMessage
from .registers import Register, ReplicaId
from .share_graph import ShareGraph
from .timestamp_graph import TimestampGraph
from .timestamps import EdgeTimestamp


class EdgeIndexedReplica(CausalReplica):
    """A replica running the paper's edge-indexed timestamp algorithm.

    Parameters
    ----------
    share_graph:
        The system's share graph; determines the registers stored locally,
        the destinations of update messages and the timestamp graph.
    replica_id:
        This replica's id.
    timestamp_graph:
        Optionally a pre-computed timestamp graph (or one with a restricted
        edge set, as used by the bounded-loop-length optimization).  By
        default the exact timestamp graph of Definition 5 is built.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_id: ReplicaId,
        timestamp_graph: Optional[TimestampGraph] = None,
    ) -> None:
        super().__init__(replica_id, share_graph.registers_at(replica_id))
        self.share_graph = share_graph
        self.timestamp_graph = timestamp_graph or TimestampGraph.build(
            share_graph, replica_id
        )
        #: The current edge-indexed timestamp ``τ_i``.
        self.timestamp: EdgeTimestamp = EdgeTimestamp.zero(self.timestamp_graph.edges)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def destinations(self, register: Register) -> Sequence[ReplicaId]:
        """Every other replica that stores ``register`` (step 2(iii))."""
        return tuple(
            rid
            for rid in self.share_graph.replicas_storing(register)
            if rid != self.replica_id
        )

    def make_metadata(self, register: Register) -> Tuple[EdgeTimestamp, int]:
        """``advance``: bump the counters of edges towards co-owners of ``register``."""
        i = self.replica_id
        bumped = [
            (i, k)
            for (j, k) in self.timestamp_graph.edges
            if j == i and register in self.share_graph.shared_registers(i, k)
        ]
        self.timestamp = self.timestamp.incremented(bumped)
        return self.timestamp, self.timestamp.size_counters()

    def can_apply(self, message: UpdateMessage) -> bool:
        """Predicate ``J(i, τ_i, k, T)`` of Section 3.3."""
        i = self.replica_id
        sender = message.sender
        remote: EdgeTimestamp = message.metadata
        ki = (sender, i)
        if self.timestamp.get(ki) != remote.get(ki) - 1:
            return False
        for e in remote.edges & self.timestamp.edges:
            j, head = e
            if head != i or j == sender:
                continue
            if self.timestamp.get(e) < remote.get(e):
                return False
        return True

    def absorb_metadata(self, message: UpdateMessage) -> None:
        """``merge``: element-wise maximum over the commonly indexed edges."""
        remote: EdgeTimestamp = message.metadata
        shared = self.timestamp.edges & remote.edges
        self.timestamp = self.timestamp.merged_with(remote, shared_edges=shared)

    def metadata_size(self) -> int:
        """Number of counters in ``τ_i`` (``|E_i|``)."""
        return self.timestamp.size_counters()
