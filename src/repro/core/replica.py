"""The paper's algorithm: a replica with an edge-indexed vector timestamp.

:class:`EdgeIndexedReplica` instantiates the algorithm prototype of
Section 2.1 with the timestamp structure, ``advance``, ``merge`` and
delivery predicate ``J`` of Section 3.3:

* the timestamp ``τ_i`` is a vector indexed by the edges ``E_i`` of replica
  ``i``'s timestamp graph (:mod:`repro.core.timestamp_graph`);
* a local write of register ``x`` increments ``τ_i[e_ik]`` for every tracked
  edge towards a replica ``k`` that also stores ``x`` and attaches the
  resulting vector to the outgoing ``update`` messages;
* a pending update from ``k`` with timestamp ``T`` is applied once
  ``τ_i[e_ki] = T[e_ki] − 1`` and ``τ_i[e_ji] ≥ T[e_ji]`` for every other
  commonly indexed incoming edge;
* applying it merges ``T`` into ``τ_i`` by element-wise maximum over the
  commonly indexed edges.

Because an update message carries the *issuer's* timestamp (indexed by
``E_k``), the intersection ``E_i ∩ E_k`` needed by the predicate and the
merge is recovered directly from the two index sets — no replica needs any
global knowledge beyond its own timestamp graph.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from .._speedups import tsops
from ..wire.codecs import EDGE_CODEC
from .protocol import CausalReplica, UpdateMessage
from .registers import Register, ReplicaId
from .share_graph import ShareGraph
from .timestamp_graph import TimestampGraph
from .timestamps import EdgeTimestamp


class EdgeIndexedReplica(CausalReplica):
    """A replica running the paper's edge-indexed timestamp algorithm.

    Parameters
    ----------
    share_graph:
        The system's share graph; determines the registers stored locally,
        the destinations of update messages and the timestamp graph.
    replica_id:
        This replica's id.
    timestamp_graph:
        Optionally a pre-computed timestamp graph (or one with a restricted
        edge set, as used by the bounded-loop-length optimization).  By
        default the exact timestamp graph of Definition 5 is built.
    """

    def __init__(
        self,
        share_graph: ShareGraph,
        replica_id: ReplicaId,
        timestamp_graph: Optional[TimestampGraph] = None,
    ) -> None:
        super().__init__(replica_id, share_graph.registers_at(replica_id))
        self.share_graph = share_graph
        self.timestamp_graph = timestamp_graph or TimestampGraph.build(
            share_graph, replica_id
        )
        #: The current edge-indexed timestamp ``τ_i``.
        self.timestamp: EdgeTimestamp = EdgeTimestamp.zero(self.timestamp_graph.edges)
        #: The incoming edges ``e_ji ∈ E_i`` — the only entries the delivery
        #: predicate reads — in deterministic order, so the hot path never
        #: materialises the full edge-set intersection.
        self._incoming_edges: Tuple[Tuple[ReplicaId, ReplicaId], ...] = tuple(
            sorted(e for e in self.timestamp_graph.edges if e[1] == replica_id)
        )
        #: ``(edge, new value)`` of the incoming entries raised by the most
        #: recent merge; feeds :meth:`applied_keys`.
        self._changed_incoming: List[Tuple[Tuple[ReplicaId, ReplicaId], int]] = []

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def destinations(self, register: Register) -> Sequence[ReplicaId]:
        """Every other replica that stores ``register`` (step 2(iii))."""
        return tuple(
            rid
            for rid in self.share_graph.replicas_storing(register)
            if rid != self.replica_id
        )

    def make_metadata(self, register: Register) -> Tuple[EdgeTimestamp, int]:
        """``advance``: bump the counters of edges towards co-owners of ``register``."""
        i = self.replica_id
        bumped = [
            (i, k)
            for (j, k) in self.timestamp_graph.edges
            if j == i and register in self.share_graph.shared_registers(i, k)
        ]
        self.timestamp = self.timestamp.incremented(bumped)
        return self.timestamp, self.timestamp.size_counters()

    def can_apply(self, message: UpdateMessage) -> bool:
        """Predicate ``J(i, τ_i, k, T)`` of Section 3.3.

        Defined as "nothing blocks the message", so the predicate is
        encoded exactly once — in :meth:`blocking_key` — and the indexed
        apply path cannot drift from the rescan reference.
        """
        return self.blocking_key(message) is None

    def absorb_metadata(self, message: UpdateMessage) -> None:
        """``merge``: element-wise maximum over the commonly indexed edges.

        Also records which incoming entries the merge raised, which is what
        the pending index uses to wake just the plausibly unblocked
        messages (:meth:`applied_keys`).
        """
        remote: EdgeTimestamp = message.metadata
        merged, changed = tsops.merge_intersection(
            self.timestamp.counters, remote.counters, self.replica_id
        )
        self.timestamp = EdgeTimestamp._from_validated(merged)
        self._changed_incoming = changed

    # ------------------------------------------------------------------
    # Pending-index hooks
    # ------------------------------------------------------------------
    def blocking_key(self, message: UpdateMessage) -> Optional[Hashable]:
        """One-pass evaluation of predicate ``J``: ``None``, or a wake key.

        Only the incoming edges of ``E_i`` that are also indexed by the
        sender matter, so the scan walks the precomputed incoming-edge
        list instead of materialising ``E_i ∩ E_k``.  Two kinds of key
        mirror the two kinds of conjunct:

        * ``("seq", e_ki, n)`` — the FIFO equality ``τ_i[e_ki] = T[e_ki] − 1``
          failed; the message wakes exactly when ``τ_i[e_ki]`` reaches
          ``n − 1`` (an *exact-value* bucket, so a long run of out-of-order
          messages from one sender costs one recheck per apply, not a
          rescan);
        * ``("ge", e_ji)`` — a monotone conjunct ``τ_i[e_ji] ≥ T[e_ji]``
          failed; the message wakes whenever that entry grows.
        """
        return tsops.edge_blocking_key(
            self.timestamp.counters,
            message.metadata.counters,
            message.sender,
            self.replica_id,
            self._incoming_edges,
        )

    def applied_keys(self, message: UpdateMessage) -> Iterable[Hashable]:
        """Wake keys for the incoming entries the merge just raised."""
        return self.wake_keys(self._changed_incoming)

    def metadata_size(self) -> int:
        """Number of counters in ``τ_i`` (``|E_i|``)."""
        return self.timestamp.size_counters()

    def wire_codec(self):
        """The sparse edge-indexed timestamp codec (family ``edge``)."""
        return EDGE_CODEC

    # ------------------------------------------------------------------
    # Epoch migration
    # ------------------------------------------------------------------
    def _rebuild_timestamp_graph(self, new_graph: ShareGraph) -> TimestampGraph:
        """Recompute the timestamp graph for a new share graph.

        The bounded-loop restriction (if any) is carried across the epoch;
        the client–server subclass overrides this to use the augmented
        edge set instead.
        """
        return TimestampGraph.build(
            new_graph, self.replica_id,
            max_loop_length=self.timestamp_graph.max_loop_length,
        )

    def migrate(self, new_graph: ShareGraph, epoch: int) -> None:
        """Adopt a new share graph: recompute ``E_i`` and project ``τ_i``.

        Counters of edges present in both epochs are preserved — that is
        what keeps the per-edge FIFO chains (the ``τ_i[e_ki] = T[e_ki]−1``
        conjuncts) intact across the transition.  Removed edges are
        garbage-collected; new edges start at zero, which is their true
        count since no update was ever stamped on them.  The base-class
        half re-keys the pending buffer and adjusts the register store.
        """
        self.share_graph = new_graph
        self.timestamp_graph = self._rebuild_timestamp_graph(new_graph)
        self.timestamp = self.timestamp.migrated(self.timestamp_graph.edges)
        self._incoming_edges = tuple(
            sorted(e for e in self.timestamp_graph.edges if e[1] == self.replica_id)
        )
        self._changed_incoming = []
        self._migrate_common(new_graph.registers_at(self.replica_id), epoch)
