"""The share graph (Definition 3 of the paper).

The share graph ``G = (V, E)`` has one vertex per replica and a pair of
directed edges ``e_ij`` and ``e_ji`` whenever replicas ``i`` and ``j`` store
at least one register in common (``X_ij ≠ ∅``).  It captures exactly which
pairs of replicas exchange update messages under the algorithm prototype of
Section 2.1, and it is the combinatorial object over which the paper's
``(i, e_jk)``-loops, timestamp graphs, hoops and lower bounds are defined.

Directed edges are represented as ``(tail, head)`` tuples of replica ids; the
helper :class:`Edge` type alias documents that convention.  The graph always
contains both orientations of every adjacency, mirroring the paper's remark
that the share graph could equivalently be viewed as undirected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple

import networkx as nx

from .errors import ConfigurationError, UnknownReplicaError
from .registers import Register, RegisterPlacement, ReplicaId

#: A directed share-graph edge ``e_ij`` is the tuple ``(i, j)``.
Edge = Tuple[ReplicaId, ReplicaId]


def edge(i: ReplicaId, j: ReplicaId) -> Edge:
    """Construct the directed edge ``e_ij`` (a plain tuple)."""
    return (i, j)


def reverse(e: Edge) -> Edge:
    """Return the opposite orientation of a directed edge."""
    return (e[1], e[0])


@dataclass(frozen=True)
class ShareGraph:
    """The share graph of a register placement (Definition 3).

    Instances are immutable; construct them with :meth:`from_placement` (the
    normal route) or directly from a placement in the constructor.

    Attributes
    ----------
    placement:
        The :class:`~repro.core.registers.RegisterPlacement` the graph was
        derived from.  All register-set queries (``X_i``, ``X_ij``) delegate
        to it.
    """

    placement: RegisterPlacement
    _edges: FrozenSet[Edge] = field(default=frozenset(), compare=False, repr=False)

    def __post_init__(self) -> None:
        edges: Set[Edge] = set()
        ids = self.placement.replica_ids
        for a in ids:
            for b in ids:
                if a == b:
                    continue
                if self.placement.shared_registers(a, b):
                    edges.add((a, b))
        object.__setattr__(self, "_edges", frozenset(edges))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_placement(cls, placement: RegisterPlacement) -> "ShareGraph":
        """Build the share graph of ``placement``."""
        return cls(placement)

    @classmethod
    def from_dict(cls, stores: Mapping[ReplicaId, Iterable[Register]]) -> "ShareGraph":
        """Convenience constructor straight from ``{replica: registers}``."""
        return cls(RegisterPlacement.from_dict(stores))

    # ------------------------------------------------------------------
    # Vertices and edges
    # ------------------------------------------------------------------
    @property
    def replica_ids(self) -> Tuple[ReplicaId, ...]:
        """The vertex set ``V`` (sorted replica ids)."""
        return self.placement.replica_ids

    @property
    def num_replicas(self) -> int:
        """``R``, the number of replicas."""
        return self.placement.num_replicas

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The directed edge set ``E`` (both orientations of every adjacency)."""
        return self._edges

    @property
    def undirected_edges(self) -> FrozenSet[FrozenSet[ReplicaId]]:
        """The adjacencies of the graph viewed undirected."""
        return frozenset(frozenset(e) for e in self._edges)

    def has_edge(self, i: ReplicaId, j: ReplicaId) -> bool:
        """``True`` iff ``e_ij ∈ E`` i.e. ``X_ij ≠ ∅``."""
        return (i, j) in self._edges

    def neighbors(self, i: ReplicaId) -> Tuple[ReplicaId, ...]:
        """Replicas adjacent to ``i`` in the share graph, sorted."""
        if i not in self.placement:
            raise UnknownReplicaError(i)
        return tuple(sorted(j for j in self.replica_ids if (i, j) in self._edges))

    def degree(self, i: ReplicaId) -> int:
        """``N_i``: number of share-graph neighbours of replica ``i``."""
        return len(self.neighbors(i))

    def incident_edges(self, i: ReplicaId) -> FrozenSet[Edge]:
        """All directed edges with ``i`` as tail or head."""
        if i not in self.placement:
            raise UnknownReplicaError(i)
        return frozenset(e for e in self._edges if i in e)

    def outgoing_edges(self, i: ReplicaId) -> FrozenSet[Edge]:
        """All directed edges ``e_ij`` leaving ``i``."""
        return frozenset(e for e in self._edges if e[0] == i)

    def incoming_edges(self, i: ReplicaId) -> FrozenSet[Edge]:
        """All directed edges ``e_ji`` entering ``i``."""
        return frozenset(e for e in self._edges if e[1] == i)

    # ------------------------------------------------------------------
    # Register-set queries (delegating to the placement)
    # ------------------------------------------------------------------
    def registers_at(self, i: ReplicaId) -> FrozenSet[Register]:
        """``X_i``."""
        return self.placement.registers_at(i)

    def shared_registers(self, i: ReplicaId, j: ReplicaId) -> FrozenSet[Register]:
        """``X_ij``."""
        return self.placement.shared_registers(i, j)

    def edge_registers(self, e: Edge) -> FrozenSet[Register]:
        """Registers labelling edge ``e = (i, j)``, i.e. ``X_ij``."""
        return self.placement.shared_registers(e[0], e[1])

    def replicas_storing(self, register: Register) -> Tuple[ReplicaId, ...]:
        """``C(x)`` for a register ``x``."""
        return self.placement.replicas_storing(register)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def to_networkx(self, directed: bool = True) -> nx.Graph:
        """Export the share graph as a :mod:`networkx` graph.

        Each edge carries a ``registers`` attribute holding ``X_ij``.
        """
        graph: nx.Graph = nx.DiGraph() if directed else nx.Graph()
        graph.add_nodes_from(self.replica_ids)
        for (i, j) in sorted(self._edges):
            graph.add_edge(i, j, registers=sorted(self.shared_registers(i, j)))
        return graph

    def is_connected(self) -> bool:
        """``True`` iff the (undirected) share graph is connected."""
        if self.num_replicas <= 1:
            return True
        return nx.is_connected(self.to_networkx(directed=False))

    def connected_components(self) -> List[FrozenSet[ReplicaId]]:
        """Connected components of the undirected share graph."""
        graph = self.to_networkx(directed=False)
        return [frozenset(c) for c in nx.connected_components(graph)]

    def is_tree(self) -> bool:
        """``True`` iff the undirected share graph is a tree."""
        return nx.is_tree(self.to_networkx(directed=False))

    def is_cycle(self) -> bool:
        """``True`` iff the undirected share graph is a single simple cycle."""
        graph = self.to_networkx(directed=False)
        if graph.number_of_nodes() < 3:
            return False
        return (
            nx.is_connected(graph)
            and all(d == 2 for _, d in graph.degree())
        )

    def is_clique(self) -> bool:
        """``True`` iff every pair of replicas shares at least one register."""
        n = self.num_replicas
        return len(self._edges) == n * (n - 1)

    def spanning_tree(self, root: ReplicaId) -> Dict[ReplicaId, ReplicaId]:
        """A BFS spanning tree of the share graph rooted at ``root``.

        Returns a parent map ``{child: parent}`` with the root absent.  Used
        by the lower-bound execution constructions (Appendix C) and by the
        virtual-register routing optimization.
        """
        if root not in self.placement:
            raise UnknownReplicaError(root)
        if not self.is_connected():
            raise ConfigurationError("spanning_tree requires a connected share graph")
        graph = self.to_networkx(directed=False)
        parents: Dict[ReplicaId, ReplicaId] = {}
        for parent, child in nx.bfs_edges(graph, root):
            parents[child] = parent
        return parents

    def simple_cycles_through(self, i: ReplicaId,
                              max_length: int | None = None) -> Iterator[Tuple[ReplicaId, ...]]:
        """Yield simple cycles (as vertex tuples starting at ``i``) through ``i``.

        Cycles are yielded in both traversal directions, because the paper's
        ``(i, e_jk)``-loop conditions are not symmetric under reversal.  A
        cycle of length ``L`` is reported as a tuple of ``L`` distinct
        vertices beginning with ``i``; the closing edge back to ``i`` is
        implicit.

        Parameters
        ----------
        max_length:
            If given, only cycles with at most this many vertices are
            produced.  This is the knob used by the bounded-loop-length
            optimization of Appendix D.
        """
        if i not in self.placement:
            raise UnknownReplicaError(i)
        adjacency: Dict[ReplicaId, Tuple[ReplicaId, ...]] = {
            v: self.neighbors(v) for v in self.replica_ids
        }
        limit = max_length if max_length is not None else self.num_replicas
        path: List[ReplicaId] = [i]
        on_path: Set[ReplicaId] = {i}

        def dfs() -> Iterator[Tuple[ReplicaId, ...]]:
            current = path[-1]
            for nxt in adjacency[current]:
                if nxt == i and len(path) >= 3:
                    yield tuple(path)
                if nxt in on_path or len(path) >= limit:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                yield from dfs()
                path.pop()
                on_path.remove(nxt)

        yield from dfs()

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return item in self._edges
        return item in self.placement

    def __len__(self) -> int:
        return self.num_replicas

    def describe(self) -> str:
        """Human-readable multi-line description of the share graph."""
        lines = [
            f"ShareGraph with {self.num_replicas} replicas and "
            f"{len(self._edges)} directed edges"
        ]
        for (i, j) in sorted(self._edges):
            if i < j:
                regs = ", ".join(sorted(self.shared_registers(i, j)))
                lines.append(f"  {i} <-> {j}: {{{regs}}}")
        return "\n".join(lines)
