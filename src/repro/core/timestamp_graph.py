"""Timestamp graphs ``G_i`` (Definition 5 of the paper).

The timestamp graph of replica ``i`` contains exactly the directed
share-graph edges that replica ``i`` must "keep track of" to achieve
replica-centric causal consistency:

* every directed edge incident on ``i`` (both ``e_ij`` and ``e_ji``), and
* every edge ``e_jk`` with ``j ≠ i ≠ k`` for which an ``(i, e_jk)``-loop
  exists (:mod:`repro.core.loops`).

Theorem 8 shows tracking these edges is *necessary*; the algorithm of
Section 3.3 (:mod:`repro.core.timestamps`, :mod:`repro.core.replica`) shows
it is *sufficient*.  The edge set ``E_i`` is therefore both the index set of
replica ``i``'s vector timestamp and the exact measure of its metadata
overhead in counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from .loops import loop_edges
from .registers import ReplicaId
from .share_graph import Edge, ShareGraph


def timestamp_edges(
    graph: ShareGraph,
    replica_id: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> FrozenSet[Edge]:
    """Compute the edge set ``E_i`` of replica ``replica_id``'s timestamp graph.

    Parameters
    ----------
    max_loop_length:
        When given, only ``(i, e_jk)``-loops with at most this many vertices
        contribute loop edges.  ``None`` (the default) computes the exact
        timestamp graph of Definition 5; smaller values implement the
        Appendix-D relaxation that may sacrifice causality.
    """
    incident = graph.incident_edges(replica_id)
    loops = loop_edges(graph, replica_id, max_loop_length=max_loop_length)
    return frozenset(incident | loops)


@dataclass(frozen=True)
class TimestampGraph:
    """The timestamp graph ``G_i = (V_i, E_i)`` of a single replica.

    Attributes
    ----------
    replica_id:
        The replica ``i`` whose metadata requirement this graph describes.
    edges:
        The directed edge set ``E_i``.
    share_graph:
        The share graph the timestamp graph was derived from.
    max_loop_length:
        The loop-length bound used during construction (``None`` = exact).
    """

    replica_id: ReplicaId
    share_graph: ShareGraph
    edges: FrozenSet[Edge] = field(default=frozenset())
    max_loop_length: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: ShareGraph,
        replica_id: ReplicaId,
        max_loop_length: Optional[int] = None,
    ) -> "TimestampGraph":
        """Derive ``G_i`` from the share graph (the normal constructor)."""
        return cls(
            replica_id=replica_id,
            share_graph=graph,
            edges=timestamp_edges(graph, replica_id, max_loop_length=max_loop_length),
            max_loop_length=max_loop_length,
        )

    @classmethod
    def from_edges(
        cls,
        graph: ShareGraph,
        replica_id: ReplicaId,
        edges: Iterable[Edge],
    ) -> "TimestampGraph":
        """Build a timestamp graph with an explicitly chosen edge set.

        Baseline protocols (track-all-edges, incident-only, hoop tracking)
        use this constructor to plug alternative edge sets into the same
        timestamp machinery.
        """
        return cls(replica_id=replica_id, share_graph=graph, edges=frozenset(edges))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> FrozenSet[ReplicaId]:
        """``V_i``: endpoints of the tracked edges."""
        verts = set()
        for (a, b) in self.edges:
            verts.add(a)
            verts.add(b)
        return frozenset(verts)

    @property
    def num_counters(self) -> int:
        """``|E_i|``: number of integer counters in replica ``i``'s timestamp."""
        return len(self.edges)

    def tracks(self, e: Edge) -> bool:
        """``True`` iff edge ``e`` is tracked (``e ∈ E_i``)."""
        return e in self.edges

    def incident_edges(self) -> FrozenSet[Edge]:
        """Tracked edges incident on the owning replica."""
        rid = self.replica_id
        return frozenset(e for e in self.edges if rid in e)

    def remote_edges(self) -> FrozenSet[Edge]:
        """Tracked edges between two *other* replicas (the loop edges)."""
        rid = self.replica_id
        return frozenset(e for e in self.edges if rid not in e)

    def outgoing_edges_of(self, j: ReplicaId) -> FrozenSet[Edge]:
        """Tracked edges whose tail is replica ``j`` (the set ``O_j`` of App. D)."""
        return frozenset(e for e in self.edges if e[0] == j)

    def shared_edges_with(self, other: "TimestampGraph") -> FrozenSet[Edge]:
        """``E_i ∩ E_k``: the counters merged when applying ``other``'s update."""
        return self.edges & other.edges

    def size_bits(self, max_updates: int) -> float:
        """Timestamp size in bits when each replica issues at most ``max_updates``.

        Each counter counts updates on one edge, so it needs
        ``log2(max_updates + 1)`` bits; the total is ``|E_i|`` times that.
        Used when comparing with the Section-4 closed-form lower bounds.
        """
        import math

        if max_updates < 1:
            raise ValueError("max_updates must be at least 1")
        return self.num_counters * math.log2(max_updates + 1)

    def describe(self) -> str:
        """Human-readable multi-line description of ``G_i``."""
        lines = [
            f"TimestampGraph of replica {self.replica_id}: "
            f"{self.num_counters} counters"
        ]
        for (a, b) in sorted(self.edges):
            kind = "incident" if self.replica_id in (a, b) else "loop"
            lines.append(f"  e_{a}{b} ({kind})")
        return "\n".join(lines)


def build_all_timestamp_graphs(
    graph: ShareGraph,
    max_loop_length: Optional[int] = None,
) -> Dict[ReplicaId, TimestampGraph]:
    """Build the timestamp graph of every replica of a share graph."""
    return {
        rid: TimestampGraph.build(graph, rid, max_loop_length=max_loop_length)
        for rid in graph.replica_ids
    }


def metadata_summary(
    graphs: Mapping[ReplicaId, TimestampGraph],
) -> Dict[ReplicaId, int]:
    """Counters per replica, convenient for tables and benchmarks."""
    return {rid: tg.num_counters for rid, tg in sorted(graphs.items())}
