"""Happened-before relation, causal pasts and causal dependency graphs.

Definition 1 of the paper defines ``u1 ↪ u2`` (read "u1 happened before u2")
for updates: ``u1 ↪ u2`` iff ``u1`` was applied at some replica before that
same replica issued ``u2``, or the relation follows transitively.  Note that
issuing an update counts as applying it locally (step 2 of the prototype), so
a replica's own earlier updates always happen-before its later ones.

The checker (:mod:`repro.core.consistency`) recomputes this relation purely
from the replicas' issue/apply traces, independently of whatever metadata the
protocol under test maintained, so protocol bugs cannot hide behind their own
bookkeeping.

Definition 6 introduces the *causal past* of a replica (the set of updates it
has applied plus everything that happened before them) and the *causal
dependency graph* (that set plus the ``↪`` edges among its members); both are
provided here because the lower-bound machinery of Section 4 is phrased in
terms of causal pasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from .protocol import EventKind, ReplicaEvent, Update, UpdateId
from .registers import ReplicaId


@dataclass
class HappenedBefore:
    """The happened-before relation ``↪`` over a set of updates.

    Built from per-replica event traces with :meth:`from_events`.  Queries
    are answered on the transitive closure, which is materialised lazily the
    first time a query needs it.
    """

    #: All updates mentioned by the traces, keyed by uid.
    updates: Dict[UpdateId, Update] = field(default_factory=dict)
    #: Direct (non-transitive) happened-before edges, as uid pairs.
    direct_edges: Set[Tuple[UpdateId, UpdateId]] = field(default_factory=set)
    _closure: Optional[Dict[UpdateId, FrozenSet[UpdateId]]] = field(
        default=None, repr=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]]
    ) -> "HappenedBefore":
        """Recompute ``↪`` from per-replica issue/apply traces.

        For every replica, every update applied (or issued) at local position
        ``p`` happens before every update *issued* by that replica at a later
        position.  The transitive closure of these direct edges is the full
        relation.
        """
        relation = cls()
        for replica_id, events in events_by_replica.items():
            applied_so_far: List[UpdateId] = []
            for event in events:
                if event.update is not None:
                    relation.updates.setdefault(event.update.uid, event.update)
                if event.kind is EventKind.ISSUE and event.update is not None:
                    for prior in applied_so_far:
                        if prior != event.update.uid:
                            relation.direct_edges.add((prior, event.update.uid))
                    applied_so_far.append(event.update.uid)
                elif event.kind is EventKind.APPLY and event.update is not None:
                    applied_so_far.append(event.update.uid)
        return relation

    @classmethod
    def from_pairs(
        cls,
        updates: Iterable[Update],
        pairs: Iterable[Tuple[UpdateId, UpdateId]],
    ) -> "HappenedBefore":
        """Build the relation from an explicit set of direct edges (tests, examples)."""
        relation = cls()
        for update in updates:
            relation.updates[update.uid] = update
        relation.direct_edges = set(pairs)
        return relation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _ensure_closure(self) -> Dict[UpdateId, FrozenSet[UpdateId]]:
        if self._closure is None:
            graph = nx.DiGraph()
            graph.add_nodes_from(self.updates)
            graph.add_edges_from(self.direct_edges)
            closure: Dict[UpdateId, FrozenSet[UpdateId]] = {}
            for uid in graph.nodes:
                closure[uid] = frozenset(nx.descendants(graph, uid))
            self._closure = closure
        return self._closure

    def happened_before(self, u1: UpdateId, u2: UpdateId) -> bool:
        """``True`` iff ``u1 ↪ u2``."""
        if u1 == u2:
            return False
        closure = self._ensure_closure()
        return u2 in closure.get(u1, frozenset())

    def concurrent(self, u1: UpdateId, u2: UpdateId) -> bool:
        """``True`` iff neither ``u1 ↪ u2`` nor ``u2 ↪ u1`` (and ``u1 ≠ u2``)."""
        if u1 == u2:
            return False
        return not self.happened_before(u1, u2) and not self.happened_before(u2, u1)

    def predecessors(self, uid: UpdateId) -> FrozenSet[UpdateId]:
        """All updates ``u'`` with ``u' ↪ uid``."""
        closure = self._ensure_closure()
        return frozenset(u for u, descendants in closure.items() if uid in descendants)

    def successors(self, uid: UpdateId) -> FrozenSet[UpdateId]:
        """All updates ``u'`` with ``uid ↪ u'``."""
        closure = self._ensure_closure()
        return closure.get(uid, frozenset())

    def all_updates(self) -> Tuple[Update, ...]:
        """Every update mentioned by the relation, sorted by uid."""
        return tuple(self.updates[uid] for uid in sorted(self.updates))

    def to_networkx(self) -> nx.DiGraph:
        """The direct-edge relation as a DAG (nodes are update uids)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.updates)
        graph.add_edges_from(self.direct_edges)
        return graph


@dataclass(frozen=True)
class CausalPast:
    """The causal past ``S`` of a replica (Definition 6).

    The set of updates the replica has applied together with every update
    that happened before any of them.
    """

    replica_id: ReplicaId
    update_ids: FrozenSet[UpdateId]

    def restricted_to_edge(
        self,
        relation: HappenedBefore,
        issuer: ReplicaId,
        registers: Iterable[str],
    ) -> FrozenSet[UpdateId]:
        """``S|e_jk``: updates in the past issued by ``issuer`` on the given registers."""
        registers = frozenset(registers)
        out = set()
        for uid in self.update_ids:
            update = relation.updates.get(uid)
            if update is None:
                continue
            if update.issuer == issuer and update.register in registers:
                out.add(uid)
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.update_ids)

    def __contains__(self, uid: object) -> bool:
        return uid in self.update_ids


@dataclass(frozen=True)
class CausalDependencyGraph:
    """The causal dependency graph ``R`` of a replica (Definition 6).

    Vertices are the replica's causal past; edges are the ``↪`` pairs among
    them.  Lemma 7 observes that, under the algorithm prototype, a replica's
    timestamp is always a function of this graph.
    """

    replica_id: ReplicaId
    vertices: FrozenSet[UpdateId]
    edges: FrozenSet[Tuple[UpdateId, UpdateId]]

    @property
    def causal_past(self) -> CausalPast:
        """The vertex set viewed as a causal past."""
        return CausalPast(self.replica_id, self.vertices)

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :mod:`networkx` DAG."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.vertices)
        graph.add_edges_from(self.edges)
        return graph


def causal_past_of(
    relation: HappenedBefore,
    replica_id: ReplicaId,
    applied: Iterable[UpdateId],
) -> CausalPast:
    """Compute a replica's causal past from the updates it has applied."""
    applied = set(applied)
    past = set(applied)
    for uid in applied:
        past |= relation.predecessors(uid)
    return CausalPast(replica_id, frozenset(past))


def dependency_graph_of(
    relation: HappenedBefore,
    replica_id: ReplicaId,
    applied: Iterable[UpdateId],
) -> CausalDependencyGraph:
    """Compute a replica's causal dependency graph from its applied updates."""
    past = causal_past_of(relation, replica_id, applied)
    edges = {
        (a, b)
        for a in past.update_ids
        for b in past.update_ids
        if a != b and relation.happened_before(a, b)
    }
    return CausalDependencyGraph(replica_id, past.update_ids, frozenset(edges))
