"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol
violations detected at run time.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters.

    Examples: a replica id that does not exist in the share graph, a
    register placed at no replica, a client associated with an unknown
    replica.
    """


class UnknownReplicaError(ConfigurationError):
    """A replica id was referenced that is not part of the system."""

    def __init__(self, replica_id: object) -> None:
        super().__init__(f"unknown replica id: {replica_id!r}")
        self.replica_id = replica_id


class UnknownRegisterError(ConfigurationError):
    """A register name was referenced that is not stored anywhere."""

    def __init__(self, register: object) -> None:
        super().__init__(f"unknown register: {register!r}")
        self.register = register


class RegisterNotStoredError(ReproError):
    """An operation targeted a register not stored at the chosen replica."""

    def __init__(self, register: object, replica_id: object) -> None:
        super().__init__(
            f"register {register!r} is not stored at replica {replica_id!r}"
        )
        self.register = register
        self.replica_id = replica_id


class TopologyError(ConfigurationError):
    """A network topology description was malformed or physically impossible.

    Raised by the measured-topology import layer (:mod:`repro.topo`) on
    malformed rows, self-loops, non-positive or non-finite link latencies,
    references to undeclared nodes, duplicate links, and disconnected
    graphs — every failure mode that would otherwise produce a silently
    wrong latency matrix.
    """


class PlacementError(ConfigurationError):
    """A placement policy could not satisfy its constraints.

    Raised by the :mod:`repro.placement` policies when a
    :class:`~repro.placement.base.PlacementSpec` is infeasible (more
    replicas than topology nodes, a replica-capacity budget too small for
    the register copies plus connectivity slack) or when an assignment
    step finds no capacity-respecting candidate.
    """


class ProtocolError(ReproError):
    """The messaging protocol was used incorrectly.

    Raised, for instance, when an update message is delivered to a replica
    that does not store the register being updated, or when a timestamp is
    merged against an incompatible index set in a way the algorithm forbids.
    """


class WireFormatError(ProtocolError):
    """A byte sequence could not be decoded as the expected wire frame.

    Defined here (rather than in :mod:`repro.wire.primitives`, which
    re-exports it) so the compilable codec kernels in
    :mod:`repro._speedups` can raise it without importing the wire layer.
    """


class ConsistencyViolationError(ReproError):
    """The execution checker detected a causal-consistency violation.

    Carries the human-readable explanation produced by the checker, which
    identifies the update applied out of order and the missing dependency.
    """

    def __init__(self, message: str, violations: list | None = None) -> None:
        super().__init__(message)
        self.violations = list(violations or [])


class LivenessViolationError(ReproError):
    """The execution checker detected that an update was never applied."""

    def __init__(self, message: str, missing: list | None = None) -> None:
        super().__init__(message)
        self.missing = list(missing or [])


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class ReconfigurationError(ReproError):
    """A dynamic-membership operation was invalid or unsupported.

    Raised when a reconfiguration action names a replica or register
    inconsistently with the current configuration (joining an existing id,
    removing an unknown replica, orphaning a register), or when a protocol
    family that does not implement epoch migration is asked to migrate.
    """
