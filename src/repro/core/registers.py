"""Register placement: which replica stores which shared registers.

The paper models a distributed shared memory of named read/write registers.
Replica ``i`` stores copies of a subset of the registers, written ``X_i``.
Partial replication means the ``X_i`` may differ between replicas; full
replication is the special case in which they are all identical.

This module provides :class:`RegisterPlacement`, an immutable description of
the assignment of registers to replicas.  It is the single source of truth
from which the share graph (:mod:`repro.core.share_graph`), the timestamp
graphs (:mod:`repro.core.timestamp_graph`) and the simulation cluster
(:mod:`repro.sim.cluster`) are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from .errors import ConfigurationError, UnknownRegisterError, UnknownReplicaError

ReplicaId = int
Register = str


@dataclass(frozen=True)
class RegisterPlacement:
    """An immutable mapping from replica ids to the registers they store.

    Parameters
    ----------
    stores:
        Mapping from replica id to the set of register names stored at that
        replica (the paper's ``X_i``).

    Notes
    -----
    * Replica ids may be any hashable integers; the paper numbers them
      ``1..R`` and the topology helpers in :mod:`repro.sim.topologies`
      follow that convention, but nothing in the library requires it.
    * Every register must be stored at at least one replica.  Registers
      stored at exactly one replica never generate share-graph edges but are
      still legal (purely local state).
    """

    stores: Mapping[ReplicaId, FrozenSet[Register]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: Dict[ReplicaId, FrozenSet[Register]] = {}
        for replica_id, registers in dict(self.stores).items():
            if not isinstance(replica_id, int):
                raise ConfigurationError(
                    f"replica ids must be integers, got {replica_id!r}"
                )
            normalized[replica_id] = frozenset(str(r) for r in registers)
        if not normalized:
            raise ConfigurationError("a placement needs at least one replica")
        object.__setattr__(self, "stores", normalized)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, stores: Mapping[ReplicaId, Iterable[Register]]) -> "RegisterPlacement":
        """Build a placement from any mapping of replica id to iterable of names."""
        return cls({rid: frozenset(regs) for rid, regs in stores.items()})

    @classmethod
    def full_replication(cls, replica_ids: Iterable[ReplicaId],
                         registers: Iterable[Register]) -> "RegisterPlacement":
        """Every replica stores every register (the classical setting)."""
        regs = frozenset(registers)
        return cls({rid: regs for rid in replica_ids})

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def replica_ids(self) -> Tuple[ReplicaId, ...]:
        """All replica ids, sorted."""
        return tuple(sorted(self.stores))

    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R``."""
        return len(self.stores)

    @property
    def registers(self) -> FrozenSet[Register]:
        """The set of all register names stored anywhere."""
        out: set = set()
        for regs in self.stores.values():
            out |= regs
        return frozenset(out)

    def registers_at(self, replica_id: ReplicaId) -> FrozenSet[Register]:
        """``X_i``: registers stored at ``replica_id``."""
        try:
            return self.stores[replica_id]
        except KeyError:
            raise UnknownReplicaError(replica_id) from None

    def shared_registers(self, i: ReplicaId, j: ReplicaId) -> FrozenSet[Register]:
        """``X_ij = X_i ∩ X_j``: registers stored at both ``i`` and ``j``."""
        return self.registers_at(i) & self.registers_at(j)

    def stores_register(self, replica_id: ReplicaId, register: Register) -> bool:
        """``True`` iff ``register ∈ X_{replica_id}``."""
        return register in self.registers_at(replica_id)

    def replicas_storing(self, register: Register) -> Tuple[ReplicaId, ...]:
        """``C(x)``: all replicas storing ``register``, sorted."""
        owners = tuple(
            rid for rid in self.replica_ids if register in self.stores[rid]
        )
        if not owners:
            raise UnknownRegisterError(register)
        return owners

    def is_fully_replicated(self) -> bool:
        """``True`` iff every replica stores the same register set."""
        sets = {self.stores[rid] for rid in self.replica_ids}
        return len(sets) == 1

    def replication_factor(self, register: Register) -> int:
        """Number of replicas storing ``register``."""
        return len(self.replicas_storing(register))

    def storage_cost(self, replica_id: ReplicaId) -> int:
        """Number of register copies stored at ``replica_id``."""
        return len(self.registers_at(replica_id))

    def total_storage_cost(self) -> int:
        """Total number of register copies in the system."""
        return sum(len(regs) for regs in self.stores.values())

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_additional_registers(
        self, extra: Mapping[ReplicaId, Iterable[Register]]
    ) -> "RegisterPlacement":
        """Return a new placement with extra registers added at some replicas.

        Used by the dummy-register and virtual-register optimizations
        (Appendix D) which modify the share graph by pretending additional
        registers are stored at selected replicas.
        """
        stores: Dict[ReplicaId, set] = {
            rid: set(regs) for rid, regs in self.stores.items()
        }
        for rid, regs in extra.items():
            if rid not in stores:
                raise UnknownReplicaError(rid)
            stores[rid] |= {str(r) for r in regs}
        return RegisterPlacement.from_dict(stores)

    def with_replica(
        self, replica_id: ReplicaId, registers: Iterable[Register]
    ) -> "RegisterPlacement":
        """Return a new placement with an additional replica (a *join*).

        The joiner may store brand-new registers, registers that already
        exist elsewhere (joining their replication group), or a mix.  Used
        by the reconfiguration subsystem (:mod:`repro.sim.reconfig`).
        """
        if replica_id in self.stores:
            raise ConfigurationError(
                f"replica {replica_id!r} is already part of the placement"
            )
        stores: Dict[ReplicaId, Iterable[Register]] = {
            rid: regs for rid, regs in self.stores.items()
        }
        stores[replica_id] = frozenset(str(r) for r in registers)
        return RegisterPlacement.from_dict(stores)

    def without_replica(self, replica_id: ReplicaId) -> "RegisterPlacement":
        """Return a new placement with one replica removed (a *leave*).

        Registers stored only at the leaving replica disappear with it; the
        reconfiguration layer is responsible for deciding whether that is
        acceptable for the change at hand.
        """
        if replica_id not in self.stores:
            raise UnknownReplicaError(replica_id)
        return RegisterPlacement.from_dict(
            {rid: regs for rid, regs in self.stores.items() if rid != replica_id}
        )

    def without_registers_at(
        self, replica_id: ReplicaId, registers: Iterable[Register]
    ) -> "RegisterPlacement":
        """Return a new placement with some registers dropped from one replica.

        The reconfiguration layer uses this to remove share-graph edges: a
        directed edge ``e_ij`` disappears once ``X_ij = ∅``.
        """
        dropped = frozenset(str(r) for r in registers)
        current = self.registers_at(replica_id)
        missing = dropped - current
        if missing:
            raise UnknownRegisterError(sorted(missing)[0])
        stores: Dict[ReplicaId, FrozenSet[Register]] = dict(self.stores)
        stores[replica_id] = current - dropped
        return RegisterPlacement.from_dict(stores)

    def restricted_to(self, replica_ids: Iterable[ReplicaId]) -> "RegisterPlacement":
        """Return the placement induced on a subset of replicas."""
        keep = set(replica_ids)
        missing = keep - set(self.stores)
        if missing:
            raise UnknownReplicaError(sorted(missing)[0])
        return RegisterPlacement.from_dict(
            {rid: self.stores[rid] for rid in sorted(keep)}
        )

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ReplicaId]:
        return iter(self.replica_ids)

    def __len__(self) -> int:
        return self.num_replicas

    def __contains__(self, replica_id: object) -> bool:
        return replica_id in self.stores

    def describe(self) -> str:
        """Human-readable multi-line description of the placement."""
        lines = [f"RegisterPlacement with {self.num_replicas} replicas, "
                 f"{len(self.registers)} registers"]
        for rid in self.replica_ids:
            regs = ", ".join(sorted(self.stores[rid]))
            lines.append(f"  replica {rid}: {{{regs}}}")
        return "\n".join(lines)
