"""``(i, e_jk)``-loops (Definition 4 of the paper).

An ``(i, e_jk)``-loop is a simple cycle through replica ``i`` of the form::

    i, l_1, l_2, ..., l_s = k,  j = r_1, r_2, ..., r_t,  i        (s, t >= 1)

i.e. a cycle that, when traversed starting at ``i``, first walks the "l-side"
and reaches ``k``, then crosses the share-graph edge between ``k`` and ``j``,
and finally returns to ``i`` along the "r-side" ``j = r_1, ..., r_t``.  With
``r_{t+1} = i``, the register-set conditions are:

``(i)``   ``X_jk  −  ∪_{1≤p≤s−1} X_{l_p}  ≠ ∅``
``(ii)``  ``X_{j r_2}  −  ∪_{1≤p≤s−1} X_{l_p}  ≠ ∅``
``(iii)`` for ``2 ≤ q ≤ t``:  ``X_{r_q r_{q+1}}  −  ∪_{1≤p≤s} X_{l_p}  ≠ ∅``

Intuitively the conditions guarantee that a chain of causally dependent
updates can be driven from ``j`` around the r-side to ``i`` without touching
any replica on the l-side, so the only way ``i`` can learn that the chain
causally depends on ``j``'s update on ``X_jk`` is by tracking edge ``e_jk``
explicitly.  The existence of such a loop is exactly the criterion that puts
``e_jk`` into replica ``i``'s timestamp graph
(:mod:`repro.core.timestamp_graph`).

The enumeration is exponential in the worst case because the object itself
ranges over simple cycles; the ``max_loop_length`` knob restricts the search
and doubles as the Appendix-D "sacrificing causality" optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .registers import Register, ReplicaId
from .share_graph import Edge, ShareGraph


@dataclass(frozen=True)
class Loop:
    """A concrete ``(i, e_jk)``-loop.

    Attributes
    ----------
    observer:
        The replica ``i`` from whose perspective the loop is defined.
    edge:
        The directed share-graph edge ``e_jk`` witnessed by the loop.
    l_side:
        The vertices ``(l_1, ..., l_s)``; the last element is ``k``.
    r_side:
        The vertices ``(r_1, ..., r_t)``; the first element is ``j``.
    """

    observer: ReplicaId
    edge: Edge
    l_side: Tuple[ReplicaId, ...]
    r_side: Tuple[ReplicaId, ...]

    @property
    def j(self) -> ReplicaId:
        """The tail of the witnessed edge (``j``)."""
        return self.edge[0]

    @property
    def k(self) -> ReplicaId:
        """The head of the witnessed edge (``k``)."""
        return self.edge[1]

    @property
    def vertices(self) -> Tuple[ReplicaId, ...]:
        """The full cycle ``(i, l_1, ..., l_s, r_1, ..., r_t)``."""
        return (self.observer, *self.l_side, *self.r_side)

    @property
    def length(self) -> int:
        """Number of vertices on the cycle."""
        return len(self.vertices)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cycle = " -> ".join(str(v) for v in (*self.vertices, self.observer))
        return f"({self.observer}, e_{self.j}{self.k})-loop: {cycle}"


def _union_registers(graph: ShareGraph, replicas: Iterable[ReplicaId]) -> FrozenSet[Register]:
    out: Set[Register] = set()
    for rid in replicas:
        out |= graph.registers_at(rid)
    return frozenset(out)


def check_loop_conditions(
    graph: ShareGraph,
    observer: ReplicaId,
    jk: Edge,
    l_side: Sequence[ReplicaId],
    r_side: Sequence[ReplicaId],
) -> bool:
    """Check conditions (i)–(iii) of Definition 4 for a candidate cycle.

    ``l_side`` must end with ``k`` and ``r_side`` must start with ``j``; the
    cycle itself (adjacency of consecutive vertices in the share graph) is
    assumed to have been validated by the caller.
    """
    j, k = jk
    if not l_side or not r_side:
        return False
    if l_side[-1] != k or r_side[0] != j:
        return False

    # Registers stored by l_1 .. l_{s-1}  (excluding l_s = k).
    blockers_excl_k = _union_registers(graph, l_side[:-1])
    # Registers stored by l_1 .. l_s  (including l_s = k).
    blockers_incl_k = _union_registers(graph, l_side)

    # Condition (i): X_jk minus registers of l_1..l_{s-1} is non-empty.
    if not (graph.shared_registers(j, k) - blockers_excl_k):
        return False

    # r_{t+1} = i (the observer).
    r_extended: List[ReplicaId] = list(r_side) + [observer]

    # Condition (ii): X_{j r_2} minus registers of l_1..l_{s-1} is non-empty.
    r2 = r_extended[1]
    if not (graph.shared_registers(j, r2) - blockers_excl_k):
        return False

    # Condition (iii): for 2 <= q <= t, X_{r_q r_{q+1}} minus registers of
    # l_1..l_s is non-empty.
    for q in range(2, len(r_side) + 1):
        rq = r_extended[q - 1]
        rq_next = r_extended[q]
        if not (graph.shared_registers(rq, rq_next) - blockers_incl_k):
            return False
    return True


def _loops_from_cycle(
    graph: ShareGraph,
    observer: ReplicaId,
    cycle: Sequence[ReplicaId],
    target_edge: Optional[Edge] = None,
) -> Iterator[Loop]:
    """Yield every ``(observer, e_jk)``-loop realised by one oriented cycle.

    ``cycle`` is a tuple of distinct vertices starting with ``observer``; the
    closing edge back to ``observer`` is implicit.  Every split point
    ``m`` (``1 <= m <= len(cycle) - 2``) is tried: the l-side is
    ``cycle[1:m+1]`` (so ``k = cycle[m]``) and the r-side is ``cycle[m+1:]``
    (so ``j = cycle[m+1]``).

    Conditions (i)–(iii) are evaluated in O(1) per split instead of
    re-deriving the l-side register unions from scratch (which made one
    cycle cost O(n²) set unions — prohibitive at 512-replica rings, where
    every oriented cycle has 511 split points).  The trick: the blocker
    union only ever grows vertex by vertex along the cycle, so

    * ``X − (X_{l_1} ∪ … ∪ X_{l_p}) ≠ ∅`` iff some register of ``X`` first
      appears on the cycle tail *after* position ``p`` (or never); each
      condition collapses to comparing a per-edge "survives until"
      position — the max over the edge's registers of their first
      appearance — against the split point;
    * condition (iii) quantifies over a suffix of cycle edges, so a
      suffix-minimum over those per-edge positions answers the whole
      conjunction at once.

    :func:`check_loop_conditions` remains the executable reference; the
    equivalence is pinned by a property test in ``tests/test_loops.py``.
    """
    n = len(cycle)
    if n < 3:
        return
    absent = n + 1
    # First tail position (1-indexed) at which each register joins the
    # blocker union; registers never stored on the tail stay ``absent``.
    firstpos: Dict[Register, int] = {}
    for p in range(1, n):
        for register in graph.registers_at(cycle[p]):
            if register not in firstpos:
                firstpos[register] = p

    def survives_until(u: ReplicaId, v: ReplicaId) -> int:
        # Max over X_uv of the register's first blocking position: the set
        # X_uv − regs(c_1..c_p) is non-empty iff this exceeds p.
        best = 0
        for register in graph.shared_registers(u, v):
            p = firstpos.get(register, absent)
            if p > best:
                best = p
        return best

    # forward[p] covers the cycle edge leaving tail position p: (c_p, c_{p+1})
    # for p < n-1, and the implicit closing edge (c_{n-1}, observer) at n-1.
    forward = [0] * n
    for p in range(1, n - 1):
        forward[p] = survives_until(cycle[p], cycle[p + 1])
    forward[n - 1] = survives_until(cycle[n - 1], observer)
    # smin[p]: the weakest condition-(iii) edge among tail positions >= p.
    smin = [absent] * (n + 1)
    for p in range(n - 1, 0, -1):
        smin[p] = min(forward[p], smin[p + 1])

    for m in range(1, n - 1):
        k = cycle[m]
        j = cycle[m + 1]
        jk = (j, k)
        if target_edge is not None and jk != target_edge:
            continue
        if jk not in graph.edges:
            continue
        # (i): X_jk − regs(l_1..l_{s-1}) ≠ ∅  (blockers exclude k = c_m).
        if survives_until(j, k) < m:
            continue
        # (ii): X_{j r_2} − the same prefix ≠ ∅; r_2 is c_{m+2}, or the
        # observer when the r-side is the single vertex j — either way the
        # edge leaving tail position m+1.
        if forward[m + 1] < m:
            continue
        # (iii): every r-side edge from r_2 onwards survives regs(l_1..l_s)
        # (blockers now include k).
        if m + 2 <= n - 1 and smin[m + 2] < m + 1:
            continue
        yield Loop(
            observer=observer, edge=jk,
            l_side=tuple(cycle[1:m + 1]), r_side=tuple(cycle[m + 1:]),
        )


def iter_loops(
    graph: ShareGraph,
    observer: ReplicaId,
    target_edge: Optional[Edge] = None,
    max_loop_length: Optional[int] = None,
) -> Iterator[Loop]:
    """Iterate over ``(observer, e_jk)``-loops in the share graph.

    Parameters
    ----------
    graph:
        The share graph.
    observer:
        The replica ``i``.
    target_edge:
        If given, only loops witnessing this specific edge are produced.
    max_loop_length:
        If given, only loops with at most this many vertices are considered
        (Appendix D's bounded-loop-length relaxation).
    """
    for cycle in graph.simple_cycles_through(observer, max_length=max_loop_length):
        yield from _loops_from_cycle(graph, observer, cycle, target_edge=target_edge)


def has_loop(
    graph: ShareGraph,
    observer: ReplicaId,
    jk: Edge,
    max_loop_length: Optional[int] = None,
) -> bool:
    """``True`` iff at least one ``(observer, e_jk)``-loop exists."""
    j, k = jk
    if observer in (j, k):
        return False
    if jk not in graph.edges:
        return False
    for _ in iter_loops(graph, observer, target_edge=jk, max_loop_length=max_loop_length):
        return True
    return False


def find_loop(
    graph: ShareGraph,
    observer: ReplicaId,
    jk: Edge,
    max_loop_length: Optional[int] = None,
) -> Optional[Loop]:
    """Return a witnessing ``(observer, e_jk)``-loop, or ``None``."""
    for loop in iter_loops(graph, observer, target_edge=jk, max_loop_length=max_loop_length):
        return loop
    return None


def loop_edges(
    graph: ShareGraph,
    observer: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> FrozenSet[Edge]:
    """All edges ``e_jk`` (``j ≠ i ≠ k``) witnessed by some ``(i, e_jk)``-loop.

    This is the "loop part" of replica ``i``'s timestamp graph edge set; the
    full edge set additionally contains all edges incident on ``i``
    (:func:`repro.core.timestamp_graph.timestamp_edges`).
    """
    witnessed: Set[Edge] = set()
    for cycle in graph.simple_cycles_through(observer, max_length=max_loop_length):
        for loop in _loops_from_cycle(graph, observer, cycle):
            witnessed.add(loop.edge)
    return frozenset(witnessed)


def loops_by_edge(
    graph: ShareGraph,
    observer: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> Dict[Edge, List[Loop]]:
    """Group every ``(observer, ·)``-loop by the edge it witnesses."""
    grouped: Dict[Edge, List[Loop]] = {}
    for loop in iter_loops(graph, observer, max_loop_length=max_loop_length):
        grouped.setdefault(loop.edge, []).append(loop)
    return grouped
