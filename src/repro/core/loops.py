"""``(i, e_jk)``-loops (Definition 4 of the paper).

An ``(i, e_jk)``-loop is a simple cycle through replica ``i`` of the form::

    i, l_1, l_2, ..., l_s = k,  j = r_1, r_2, ..., r_t,  i        (s, t >= 1)

i.e. a cycle that, when traversed starting at ``i``, first walks the "l-side"
and reaches ``k``, then crosses the share-graph edge between ``k`` and ``j``,
and finally returns to ``i`` along the "r-side" ``j = r_1, ..., r_t``.  With
``r_{t+1} = i``, the register-set conditions are:

``(i)``   ``X_jk  −  ∪_{1≤p≤s−1} X_{l_p}  ≠ ∅``
``(ii)``  ``X_{j r_2}  −  ∪_{1≤p≤s−1} X_{l_p}  ≠ ∅``
``(iii)`` for ``2 ≤ q ≤ t``:  ``X_{r_q r_{q+1}}  −  ∪_{1≤p≤s} X_{l_p}  ≠ ∅``

Intuitively the conditions guarantee that a chain of causally dependent
updates can be driven from ``j`` around the r-side to ``i`` without touching
any replica on the l-side, so the only way ``i`` can learn that the chain
causally depends on ``j``'s update on ``X_jk`` is by tracking edge ``e_jk``
explicitly.  The existence of such a loop is exactly the criterion that puts
``e_jk`` into replica ``i``'s timestamp graph
(:mod:`repro.core.timestamp_graph`).

The enumeration is exponential in the worst case because the object itself
ranges over simple cycles; the ``max_loop_length`` knob restricts the search
and doubles as the Appendix-D "sacrificing causality" optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .registers import Register, ReplicaId
from .share_graph import Edge, ShareGraph


@dataclass(frozen=True)
class Loop:
    """A concrete ``(i, e_jk)``-loop.

    Attributes
    ----------
    observer:
        The replica ``i`` from whose perspective the loop is defined.
    edge:
        The directed share-graph edge ``e_jk`` witnessed by the loop.
    l_side:
        The vertices ``(l_1, ..., l_s)``; the last element is ``k``.
    r_side:
        The vertices ``(r_1, ..., r_t)``; the first element is ``j``.
    """

    observer: ReplicaId
    edge: Edge
    l_side: Tuple[ReplicaId, ...]
    r_side: Tuple[ReplicaId, ...]

    @property
    def j(self) -> ReplicaId:
        """The tail of the witnessed edge (``j``)."""
        return self.edge[0]

    @property
    def k(self) -> ReplicaId:
        """The head of the witnessed edge (``k``)."""
        return self.edge[1]

    @property
    def vertices(self) -> Tuple[ReplicaId, ...]:
        """The full cycle ``(i, l_1, ..., l_s, r_1, ..., r_t)``."""
        return (self.observer, *self.l_side, *self.r_side)

    @property
    def length(self) -> int:
        """Number of vertices on the cycle."""
        return len(self.vertices)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cycle = " -> ".join(str(v) for v in (*self.vertices, self.observer))
        return f"({self.observer}, e_{self.j}{self.k})-loop: {cycle}"


def _union_registers(graph: ShareGraph, replicas: Iterable[ReplicaId]) -> FrozenSet[Register]:
    out: Set[Register] = set()
    for rid in replicas:
        out |= graph.registers_at(rid)
    return frozenset(out)


def check_loop_conditions(
    graph: ShareGraph,
    observer: ReplicaId,
    jk: Edge,
    l_side: Sequence[ReplicaId],
    r_side: Sequence[ReplicaId],
) -> bool:
    """Check conditions (i)–(iii) of Definition 4 for a candidate cycle.

    ``l_side`` must end with ``k`` and ``r_side`` must start with ``j``; the
    cycle itself (adjacency of consecutive vertices in the share graph) is
    assumed to have been validated by the caller.
    """
    j, k = jk
    if not l_side or not r_side:
        return False
    if l_side[-1] != k or r_side[0] != j:
        return False

    # Registers stored by l_1 .. l_{s-1}  (excluding l_s = k).
    blockers_excl_k = _union_registers(graph, l_side[:-1])
    # Registers stored by l_1 .. l_s  (including l_s = k).
    blockers_incl_k = _union_registers(graph, l_side)

    # Condition (i): X_jk minus registers of l_1..l_{s-1} is non-empty.
    if not (graph.shared_registers(j, k) - blockers_excl_k):
        return False

    # r_{t+1} = i (the observer).
    r_extended: List[ReplicaId] = list(r_side) + [observer]

    # Condition (ii): X_{j r_2} minus registers of l_1..l_{s-1} is non-empty.
    r2 = r_extended[1]
    if not (graph.shared_registers(j, r2) - blockers_excl_k):
        return False

    # Condition (iii): for 2 <= q <= t, X_{r_q r_{q+1}} minus registers of
    # l_1..l_s is non-empty.
    for q in range(2, len(r_side) + 1):
        rq = r_extended[q - 1]
        rq_next = r_extended[q]
        if not (graph.shared_registers(rq, rq_next) - blockers_incl_k):
            return False
    return True


def _loops_from_cycle(
    graph: ShareGraph,
    observer: ReplicaId,
    cycle: Sequence[ReplicaId],
    target_edge: Optional[Edge] = None,
) -> Iterator[Loop]:
    """Yield every ``(observer, e_jk)``-loop realised by one oriented cycle.

    ``cycle`` is a tuple of distinct vertices starting with ``observer``; the
    closing edge back to ``observer`` is implicit.  Every split point
    ``m`` (``1 <= m <= len(cycle) - 2``) is tried: the l-side is
    ``cycle[1:m+1]`` (so ``k = cycle[m]``) and the r-side is ``cycle[m+1:]``
    (so ``j = cycle[m+1]``).
    """
    n = len(cycle)
    for m in range(1, n - 1):
        k = cycle[m]
        j = cycle[m + 1]
        jk = (j, k)
        if target_edge is not None and jk != target_edge:
            continue
        if jk not in graph.edges:
            continue
        l_side = tuple(cycle[1:m + 1])
        r_side = tuple(cycle[m + 1:])
        if check_loop_conditions(graph, observer, jk, l_side, r_side):
            yield Loop(observer=observer, edge=jk, l_side=l_side, r_side=r_side)


def iter_loops(
    graph: ShareGraph,
    observer: ReplicaId,
    target_edge: Optional[Edge] = None,
    max_loop_length: Optional[int] = None,
) -> Iterator[Loop]:
    """Iterate over ``(observer, e_jk)``-loops in the share graph.

    Parameters
    ----------
    graph:
        The share graph.
    observer:
        The replica ``i``.
    target_edge:
        If given, only loops witnessing this specific edge are produced.
    max_loop_length:
        If given, only loops with at most this many vertices are considered
        (Appendix D's bounded-loop-length relaxation).
    """
    for cycle in graph.simple_cycles_through(observer, max_length=max_loop_length):
        yield from _loops_from_cycle(graph, observer, cycle, target_edge=target_edge)


def has_loop(
    graph: ShareGraph,
    observer: ReplicaId,
    jk: Edge,
    max_loop_length: Optional[int] = None,
) -> bool:
    """``True`` iff at least one ``(observer, e_jk)``-loop exists."""
    j, k = jk
    if observer in (j, k):
        return False
    if jk not in graph.edges:
        return False
    for _ in iter_loops(graph, observer, target_edge=jk, max_loop_length=max_loop_length):
        return True
    return False


def find_loop(
    graph: ShareGraph,
    observer: ReplicaId,
    jk: Edge,
    max_loop_length: Optional[int] = None,
) -> Optional[Loop]:
    """Return a witnessing ``(observer, e_jk)``-loop, or ``None``."""
    for loop in iter_loops(graph, observer, target_edge=jk, max_loop_length=max_loop_length):
        return loop
    return None


def loop_edges(
    graph: ShareGraph,
    observer: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> FrozenSet[Edge]:
    """All edges ``e_jk`` (``j ≠ i ≠ k``) witnessed by some ``(i, e_jk)``-loop.

    This is the "loop part" of replica ``i``'s timestamp graph edge set; the
    full edge set additionally contains all edges incident on ``i``
    (:func:`repro.core.timestamp_graph.timestamp_edges`).
    """
    witnessed: Set[Edge] = set()
    for cycle in graph.simple_cycles_through(observer, max_length=max_loop_length):
        for loop in _loops_from_cycle(graph, observer, cycle):
            witnessed.add(loop.edge)
    return frozenset(witnessed)


def loops_by_edge(
    graph: ShareGraph,
    observer: ReplicaId,
    max_loop_length: Optional[int] = None,
) -> Dict[Edge, List[Loop]]:
    """Group every ``(observer, ·)``-loop by the edge it witnesses."""
    grouped: Dict[Edge, List[Loop]] = {}
    for loop in iter_loops(graph, observer, max_loop_length=max_loop_length):
        grouped.setdefault(loop.edge, []).append(loop)
    return grouped
