"""Edge-indexed vector timestamps and the paper's ``advance`` / ``merge`` / ``J``.

The algorithm of Section 3.3 equips every replica ``i`` with a vector
timestamp ``τ_i`` indexed by the edges of its timestamp graph ``E_i``
(:mod:`repro.core.timestamp_graph`).  The three protocol operations are:

``advance(i, τ_i, x, v)``
    On a local write of register ``x``, increment ``τ_i[e_ik]`` for every
    tracked outgoing edge ``e_ik`` whose head ``k`` also stores ``x``.

``merge(i, τ_i, k, T)``
    On applying a remote update issued by ``k`` with timestamp ``T``, take
    the element-wise maximum over the commonly tracked edges ``E_i ∩ E_k``
    and keep ``τ_i`` elsewhere.

``J(i, τ_i, k, T)``
    A pending update from ``k`` may be applied once
    ``τ_i[e_ki] = T[e_ki] − 1`` (it is the next update ``k`` sent to ``i``)
    and ``τ_i[e_ji] ≥ T[e_ji]`` for every other commonly tracked incoming
    edge ``e_ji`` (all causal predecessors that must arrive over those edges
    have already been applied).

Different replicas track different edge sets, so two timestamps generally
have different lengths and index sets; the operations above are defined to
cope with that non-uniformity exactly as in the paper.

Two notes on how the library applies these definitions in practice:

* Predicate ``J`` is *not* evaluated by rescanning the whole pending buffer
  after every apply (the naive reading of step 4 of the prototype, and how
  the seed implementation worked).  Since PR 1, replicas evaluate the
  predicate once per recheck through
  :meth:`~repro.core.protocol.CausalReplica.blocking_key`, park each
  blocked message under the exact conjunct that failed (a ``("seq", e_ki,
  n)`` or ``("ge", e_ji)`` wake key), and re-examine only the messages a
  later merge plausibly unblocked.  The functions below remain the
  readable reference semantics and are what the differential tests check
  the indexed path against.
* Under dynamic membership (:mod:`repro.sim.reconfig`) the index set of a
  timestamp changes between epochs: :meth:`EdgeTimestamp.migrated` projects
  a timestamp onto a new edge set, keeping surviving counters, dropping
  counters of removed edges and zero-initialising new ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from .._speedups import tsops
from .errors import ProtocolError
from .registers import Register, ReplicaId
from .share_graph import Edge, ShareGraph
from .timestamp_graph import TimestampGraph


@dataclass(frozen=True)
class EdgeTimestamp:
    """An immutable edge-indexed vector timestamp.

    The timestamp is a mapping from directed share-graph edges to
    non-negative integers.  All protocol operations return new instances;
    replicas simply rebind their current timestamp.

    Attributes
    ----------
    counters:
        Mapping ``edge -> count``.  Every edge in the owning replica's
        timestamp graph is present (missing edges behave as zero for reads
        but are materialised at construction time so that serialized sizes
        are faithful).
    """

    counters: Mapping[Edge, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: Dict[Edge, int] = {}
        for e, value in dict(self.counters).items():
            if len(e) != 2:
                raise ProtocolError(f"timestamp index {e!r} is not a directed edge")
            if value < 0:
                raise ProtocolError(f"negative counter for edge {e!r}: {value}")
            clean[(e[0], e[1])] = int(value)
        object.__setattr__(self, "counters", clean)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, edges: Iterable[Edge]) -> "EdgeTimestamp":
        """The all-zero timestamp over an index set (initial replica state)."""
        return cls({e: 0 for e in edges})

    @classmethod
    def _from_validated(cls, counters: Dict[Edge, int]) -> "EdgeTimestamp":
        """Fast internal constructor for counters derived from a validated
        instance (functional updates run on every write/apply, so they skip
        re-validating each entry)."""
        instance = object.__new__(cls)
        object.__setattr__(instance, "counters", counters)
        return instance

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __getitem__(self, e: Edge) -> int:
        return self.counters.get(e, 0)

    def get(self, e: Edge, default: int = 0) -> int:
        """Counter for ``e``, or ``default`` when the edge is not indexed."""
        return self.counters.get(e, default)

    def __contains__(self, e: object) -> bool:
        return e in self.counters

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.counters)

    def __len__(self) -> int:
        return len(self.counters)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The index set of this timestamp (cached; the instance is immutable)."""
        cached = self.__dict__.get("_edges")
        if cached is None:
            cached = frozenset(self.counters)
            object.__setattr__(self, "_edges", cached)
        return cached

    def items(self) -> Iterable[Tuple[Edge, int]]:
        """Iterate over ``(edge, count)`` pairs."""
        return self.counters.items()

    def total(self) -> int:
        """Sum of all counters (handy in tests and monotonicity checks)."""
        return sum(self.counters.values())

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def incremented(self, edges: Iterable[Edge]) -> "EdgeTimestamp":
        """Return a copy with the given indexed edges incremented by one."""
        counters = dict(self.counters)
        for e in edges:
            if e in counters:
                counters[e] += 1
        return EdgeTimestamp._from_validated(counters)

    def migrated(self, edges: Iterable[Edge]) -> "EdgeTimestamp":
        """Project this timestamp onto a new index set (epoch migration).

        Surviving edges keep their counters, edges absent from ``edges``
        are dropped (the garbage-collection half of a *leave* or edge
        removal), and new edges start at zero (the widening half of a
        *join* or edge addition) — new edges carried no updates in any
        earlier epoch, so zero is their true count.
        """
        counters = self.counters
        return EdgeTimestamp._from_validated(
            {(e[0], e[1]): counters.get(e, 0) for e in edges}
        )

    def merged_with(self, other: "EdgeTimestamp",
                    shared_edges: Optional[Iterable[Edge]] = None) -> "EdgeTimestamp":
        """Element-wise maximum over ``shared_edges`` (default: all common edges)."""
        counters = dict(self.counters)
        if shared_edges is None:
            # Iterate the other side's entries directly instead of
            # materialising the index-set intersection (hot path: one merge
            # per apply).
            for e, value in other.counters.items():
                current = counters.get(e)
                if current is not None and value > current:
                    counters[e] = value
        else:
            for e in shared_edges:
                if e in counters:
                    counters[e] = max(counters[e], other.get(e))
        return EdgeTimestamp._from_validated(counters)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def dominates(self, other: "EdgeTimestamp") -> bool:
        """``True`` iff this timestamp is ≥ ``other`` on every common edge."""
        return all(self.get(e) >= other.get(e) for e in other.edges & self.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeTimestamp):
            return NotImplemented
        return dict(self.counters) == dict(other.counters)

    def __hash__(self) -> int:
        # Cached on the instance: timestamps are immutable and hashed
        # repeatedly (dedup sets, snapshot comparisons) but the frozenset
        # build is linear in the index set.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(frozenset(self.counters.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_counters(self) -> int:
        """Number of integer counters carried (the paper's metadata measure)."""
        return len(self.counters)

    def size_bits(self, max_updates: Optional[int] = None) -> float:
        """Size in bits.

        If ``max_updates`` is given every counter is charged
        ``log2(max_updates + 1)`` bits; otherwise each counter is charged its
        own ``log2(count + 1)`` bits (a best-case variable-length encoding).
        """
        if max_updates is not None:
            return len(self.counters) * math.log2(max_updates + 1)
        return sum(math.log2(v + 1) for v in self.counters.values()) or float(
            len(self.counters)
        ) * 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"e_{a}{b}={v}" for (a, b), v in sorted(self.counters.items())
        )
        return f"<{parts}>"


# ----------------------------------------------------------------------
# The paper's protocol operations (Section 3.3)
# ----------------------------------------------------------------------

def advance(
    graph: ShareGraph,
    tgraph: TimestampGraph,
    tau: EdgeTimestamp,
    register: Register,
) -> EdgeTimestamp:
    """``advance(i, τ_i, x, v)``: timestamp attached to a local write.

    Increments the counter of every tracked outgoing edge ``e_ik`` such that
    the head ``k`` also stores ``register``.  The value ``v`` being written
    is irrelevant to the metadata and therefore not a parameter.
    """
    i = tgraph.replica_id
    bumped = [
        (i, k)
        for (j, k) in tgraph.edges
        if j == i and register in graph.shared_registers(i, k)
    ]
    return tau.incremented(bumped)


def merge(
    tgraph_i: TimestampGraph,
    tau_i: EdgeTimestamp,
    tgraph_k: TimestampGraph,
    tau_k: EdgeTimestamp,
) -> EdgeTimestamp:
    """``merge(i, τ_i, k, T)``: new timestamp of ``i`` after applying ``k``'s update.

    Takes the element-wise maximum over the commonly tracked edges
    ``E_i ∩ E_k`` and leaves the rest of ``τ_i`` unchanged.
    """
    shared = tgraph_i.edges & tgraph_k.edges
    return tau_i.merged_with(tau_k, shared_edges=shared)


def delivery_predicate(
    tgraph_i: TimestampGraph,
    tau_i: EdgeTimestamp,
    sender: ReplicaId,
    tgraph_k: TimestampGraph,
    tau_k: EdgeTimestamp,
) -> bool:
    """Predicate ``J(i, τ_i, k, T)`` deciding whether a pending update applies.

    ``True`` iff ``τ_i[e_ki] = T[e_ki] − 1`` and, for every other commonly
    tracked incoming edge ``e_ji`` (``j ≠ k``), ``τ_i[e_ji] ≥ T[e_ji]``.
    """
    i = tgraph_i.replica_id
    if sender == i:
        raise ProtocolError("the delivery predicate is only defined for remote updates")
    ki = (sender, i)
    if tau_i.get(ki) != tau_k.get(ki) - 1:
        return False
    shared = tgraph_i.edges & tgraph_k.edges
    for e in shared:
        j, head = e
        if head != i or j == sender:
            continue
        if tau_i.get(e) < tau_k.get(e):
            return False
    return True


# ----------------------------------------------------------------------
# Classical vector clocks (used by the full-replication baseline)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VectorTimestamp:
    """A classical replica-indexed vector timestamp (Fidge/Mattern style).

    Used by the full-replication baseline (Lazy Replication [21]); under full
    replication a vector of length ``R`` suffices for causal consistency, and
    the paper notes the edge-indexed timestamp compresses down to this.
    """

    counters: Mapping[ReplicaId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean = {int(r): int(v) for r, v in dict(self.counters).items()}
        for r, v in clean.items():
            if v < 0:
                raise ProtocolError(f"negative vector-clock entry for replica {r}")
        object.__setattr__(self, "counters", clean)

    @classmethod
    def zero(cls, replica_ids: Iterable[ReplicaId]) -> "VectorTimestamp":
        """The all-zero vector over the given replicas."""
        return cls({r: 0 for r in replica_ids})

    @classmethod
    def _from_validated(cls, counters: Dict[ReplicaId, int]) -> "VectorTimestamp":
        """Fast internal constructor for counters derived from a validated
        instance (one merge runs per apply, so functional updates skip the
        per-entry coercion of ``__post_init__``)."""
        instance = object.__new__(cls)
        object.__setattr__(instance, "counters", counters)
        return instance

    def __getitem__(self, replica_id: ReplicaId) -> int:
        return self.counters.get(replica_id, 0)

    def get(self, replica_id: ReplicaId, default: int = 0) -> int:
        """Entry for ``replica_id`` or ``default``."""
        return self.counters.get(replica_id, default)

    def __len__(self) -> int:
        return len(self.counters)

    def items(self) -> Iterable[Tuple[ReplicaId, int]]:
        """Iterate over ``(replica, count)`` pairs."""
        return self.counters.items()

    def total(self) -> int:
        """Sum of all entries (cached; the instance is immutable).

        Feeds the fused delivery check's no-scan accept
        (:func:`repro._speedups._tsops_py.vector_try_apply`): with the FIFO
        conjunct pinning the sender entry, the total determines whether any
        other entry can be nonzero.
        """
        cached = self.__dict__.get("_total")
        if cached is None:
            cached = sum(self.counters.values())
            object.__setattr__(self, "_total", cached)
        return cached

    def incremented(self, replica_id: ReplicaId) -> "VectorTimestamp":
        """Return a copy with ``replica_id``'s entry incremented."""
        counters = dict(self.counters)
        counters[int(replica_id)] = counters.get(replica_id, 0) + 1
        return VectorTimestamp._from_validated(counters)

    def merged_with(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Element-wise maximum (over the union of index sets)."""
        merged, _ = tsops.merge_union(self.counters, other.counters)
        return VectorTimestamp._from_validated(merged)

    def dominates(self, other: "VectorTimestamp") -> bool:
        """``True`` iff every entry is ≥ the corresponding entry of ``other``."""
        return all(self.get(r) >= v for r, v in other.items())

    def size_counters(self) -> int:
        """Number of integer counters carried."""
        return len(self.counters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        return dict(self.counters) == dict(other.counters)

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(frozenset(self.counters.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{r}={v}" for r, v in sorted(self.counters.items()))
        return f"[{parts}]"
