"""The host-agnostic replica-host surface shared by the simulator and the
live runtime.

Historically everything in this module lived inside :mod:`repro.sim.engine`,
welded to the discrete-event kernel.  The live asyncio runtime
(:mod:`repro.net`) runs the *same* protocol instances
(:class:`~repro.core.protocol.CausalReplica`) against real TCP streams and a
wall clock, so the parts of the old ``SimulationHost`` that never actually
depended on simulated time were extracted here:

* :class:`ReplicaHost` — the protocol surface a deployment exposes: who owns
  which replica, how a client operation is executed, the apply loop with its
  metric recording, the event-trace collection and the
  :meth:`~ReplicaHost.check_consistency` entry point.  The simulator's
  :class:`~repro.sim.engine.SimulationHost` and the live runtime's node host
  are both subclasses, which is what lets the differential harness
  (``tests/differential``) replay one workload through both and compare the
  verdicts — the simulator as the executable spec for the live system.
* :class:`RunMetrics` and its helpers (:class:`LatencySummary`,
  :func:`throughput_timeline`, :class:`QueueDepthSample` /
  :class:`QueueDepthStats`, :class:`FaultRecord`) — one metrics structure
  filled by simulated and live runs alike.  Timestamps are *host time*:
  simulated time units in the simulator, wall-clock seconds in the live
  runtime; the bucketing helpers accept both (see
  :func:`throughput_timeline`'s ``origin`` parameter for wall-clock epochs).

Everything here is re-exported from :mod:`repro.sim.engine`, so existing
imports keep working.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .consistency import ConsistencyChecker, ConsistencyReport
from .errors import SimulationError, UnknownReplicaError
from .protocol import CausalReplica, ReplicaEvent, Update, UpdateId, UpdateMessage
from .registers import Register, ReplicaId
from .share_graph import ShareGraph


# ======================================================================
# Latency / throughput helpers
# ======================================================================

@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency sample set."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarise samples with nearest-rank percentiles (empty → zeros)."""
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        ordered = sorted(samples)
        n = len(ordered)

        def rank(q: float) -> float:
            return ordered[min(n - 1, max(0, int(q * n + 0.5) - 1))]

        return cls(
            count=n,
            mean=sum(ordered) / n,
            p50=rank(0.50),
            p90=rank(0.90),
            p99=rank(0.99),
            max=ordered[-1],
        )


#: Hard ceiling on the number of buckets one timeline may materialise.  A
#: caller bucketing raw wall-clock epoch seconds against the default origin
#: of 0 would otherwise allocate ~1.7 billion buckets; failing with a
#: diagnostic beats an out-of-memory kill.
_MAX_TIMELINE_BUCKETS = 10_000_000


def throughput_timeline(
    times: Sequence[float],
    bucket_width: float,
    origin: Optional[float] = 0.0,
) -> List[Tuple[float, int]]:
    """Bucket event times into ``(bucket start, count)`` pairs.

    Buckets run from ``origin`` to the latest event; empty intermediate
    buckets are included so the timeline plots directly.

    ``origin`` defaults to 0 — the simulator's convention, where every run
    starts at simulated time 0.  Live runs feed *wall-clock* timestamps
    whose epoch is arbitrary (and whose first event is nowhere near 0):
    pass ``origin=None`` to anchor the timeline at the earliest event,
    rounded down to a bucket boundary, or pass the run's start time
    explicitly.  Events before ``origin`` (clock adjustments, samples taken
    during setup) are clamped into the first bucket rather than silently
    dropped.  A span that would materialise an absurd number of buckets —
    the classic symptom of bucketing wall-clock epochs against origin 0 —
    raises :class:`~repro.core.errors.SimulationError` instead of
    exhausting memory.
    """
    if bucket_width <= 0:
        raise SimulationError("bucket_width must be positive")
    if not times:
        return []
    if origin is None:
        origin = math.floor(min(times) / bucket_width) * bucket_width
    buckets: Dict[int, int] = {}
    for t in times:
        index = max(0, int((t - origin) // bucket_width))
        buckets[index] = buckets.get(index, 0) + 1
    last = max(buckets)
    if last + 1 > _MAX_TIMELINE_BUCKETS:
        raise SimulationError(
            f"timeline would span {last + 1} buckets of width {bucket_width} "
            f"from origin {origin}; for wall-clock timestamps pass "
            "origin=None (or the run's start time) instead of bucketing "
            "against 0"
        )
    return [(origin + index * bucket_width, buckets.get(index, 0))
            for index in range(last + 1)]


@dataclass(frozen=True)
class QueueDepthSample:
    """One sampled pending-buffer depth at one replica."""

    time: float
    replica_id: ReplicaId
    depth: int


@dataclass(frozen=True)
class QueueDepthStats:
    """Mean/peak pending-buffer occupancy of one replica."""

    samples: int
    mean: float
    peak: int


@dataclass(frozen=True)
class FaultRecord:
    """One fault-subsystem event on the availability timeline."""

    time: float
    kind: str  # "crash" | "restart" | "partition" | "heal" | "slowdown" | …
    detail: str = ""


@dataclass
class RunMetrics:
    """Everything a host records while driving a run.

    One structure is filled by the peer-to-peer host, the client–server
    host *and* the live runtime, and consumed by :mod:`repro.sim.metrics`,
    the evaluation harness and the benchmarks.  Times are host time:
    simulated units in the simulator, seconds (relative to the run start)
    in the live runtime.
    """

    writes: int = 0
    reads: int = 0
    applies: int = 0
    #: Host time from issue to remote apply, one sample per apply.
    apply_latencies: List[float] = field(default_factory=list)
    #: Maximum pending-buffer occupancy observed per replica.
    max_pending: Dict[ReplicaId, int] = field(default_factory=dict)
    #: Host time of every remote apply (throughput over time).
    apply_times: List[float] = field(default_factory=list)
    #: ``(time, kind)`` of every submitted client operation.
    operation_times: List[Tuple[float, str]] = field(default_factory=list)
    #: Client-observed blocking time per operation (nonzero only when an
    #: operation had to wait, e.g. behind the client–server predicate J1/J2).
    operation_latencies: List[float] = field(default_factory=list)
    #: Periodic pending-buffer depth samples (open-loop runs).
    queue_samples: List[QueueDepthSample] = field(default_factory=list)
    # -- fault subsystem -------------------------------------------------
    #: Replica crashes / restarts injected during the run.
    crashes: int = 0
    restarts: int = 0
    #: Client operations rejected because their target replica was down.
    rejected_operations: int = 0
    #: Every fault event, in firing order (the availability timeline).
    fault_timeline: List[FaultRecord] = field(default_factory=list)
    #: Completed downtime intervals per replica: ``[(down_at, up_at), …]``.
    downtime: Dict[ReplicaId, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Host time from each restart until the replica had re-applied every
    #: update it missed while down (one sample per recovery).
    recovery_latencies: List[float] = field(default_factory=list)
    # -- reconfiguration subsystem ---------------------------------------
    #: Configuration changes committed during the run.
    reconfigs: int = 0
    #: Every reconfiguration step (window open / commit / transfer done),
    #: in firing order.
    reconfig_timeline: List[FaultRecord] = field(default_factory=list)
    #: Completed migration windows ``(opened_at, committed_at)``; client
    #: operations at the replicas a change affects are rejected inside its
    #: window, which is where any reconfiguration availability dip lives.
    migration_windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Pending messages the commit flush had to apply by coordinator order
    #: (normally zero: the flush plus the apply fixpoint drain everything).
    reconfig_forced_applies: int = 0

    @property
    def mean_apply_latency(self) -> float:
        """Mean remote-apply latency in host time units."""
        if not self.apply_latencies:
            return 0.0
        return sum(self.apply_latencies) / len(self.apply_latencies)

    def apply_latency_summary(self) -> LatencySummary:
        """Percentiles of the remote-apply latency distribution."""
        return LatencySummary.from_samples(self.apply_latencies)

    def operation_latency_summary(self) -> LatencySummary:
        """Percentiles of the client-observed operation latency."""
        return LatencySummary.from_samples(self.operation_latencies)

    def apply_throughput(
        self, bucket_width: float, origin: Optional[float] = 0.0
    ) -> List[Tuple[float, int]]:
        """Remote applies per time bucket (propagation throughput).

        ``origin`` as in :func:`throughput_timeline`: leave at 0 for
        simulated runs, pass ``None`` (or the run start) for wall-clock
        apply times.
        """
        return throughput_timeline(self.apply_times, bucket_width, origin=origin)

    def operation_throughput(
        self, bucket_width: float, origin: Optional[float] = 0.0
    ) -> List[Tuple[float, int]]:
        """Submitted operations per time bucket (offered load)."""
        return throughput_timeline(
            [t for t, _ in self.operation_times], bucket_width, origin=origin
        )

    def recovery_latency_summary(self) -> LatencySummary:
        """Percentiles of the crash-recovery (restart → caught-up) latency."""
        return LatencySummary.from_samples(self.recovery_latencies)

    def availability(
        self, horizon: float, replica_ids: Iterable[ReplicaId]
    ) -> Dict[ReplicaId, float]:
        """Fraction of ``[0, horizon]`` each replica was up.

        Computed from the completed intervals in :attr:`downtime`; a replica
        still down has its open interval closed by
        :meth:`~repro.sim.faults.FaultInjector.finalize_downtime`.  A
        non-positive horizon (an empty run that never advanced the clock)
        is well-defined: no time was observed, so every replica reports
        full availability instead of raising.
        """
        if horizon <= 0:
            return {rid: 1.0 for rid in replica_ids}
        out: Dict[ReplicaId, float] = {}
        for rid in replica_ids:
            down = sum(
                min(up_at, horizon) - min(down_at, horizon)
                for down_at, up_at in self.downtime.get(rid, [])
            )
            out[rid] = max(0.0, 1.0 - down / horizon)
        return out

    def queue_depth_summary(self) -> Dict[ReplicaId, QueueDepthStats]:
        """Mean/peak sampled queue depth per replica."""
        grouped: Dict[ReplicaId, List[int]] = {}
        for sample in self.queue_samples:
            grouped.setdefault(sample.replica_id, []).append(sample.depth)
        return {
            rid: QueueDepthStats(
                samples=len(depths),
                mean=sum(depths) / len(depths),
                peak=max(depths),
            )
            for rid, depths in grouped.items()
        }


# ======================================================================
# The host surface
# ======================================================================

class ReplicaHost:
    """Base class for every deployment of :class:`CausalReplica` instances.

    A *host* owns a set of protocol replicas and executes client operations
    against them; everything else — how messages travel, what the clock is —
    is the concrete runtime's business.  Two runtimes exist:

    * :class:`~repro.sim.engine.SimulationHost` drives the replicas over the
      discrete-event kernel (simulated clock, :class:`Transport` channels);
    * :class:`~repro.net.node.LiveNodeHost` drives a single replica inside a
      live asyncio process (wall clock, TCP channels), one host per process.

    The shared surface is what makes the simulator the executable spec for
    the live system: both record the same :class:`RunMetrics`, trace the
    same :class:`~repro.core.protocol.ReplicaEvent` streams, and validate
    through the same :meth:`check_consistency` entry point.

    Subclasses must implement :meth:`_replica_map` (who owns which replica
    id), :meth:`submit_operation` (how a client operation addressed to a
    replica is executed) and the :attr:`now` clock; the optional hooks
    default to no-ops.
    """

    def __init__(self, share_graph: ShareGraph) -> None:
        self.share_graph = share_graph
        self.metrics = RunMetrics()
        self._issue_times: Dict[UpdateId, float] = {}
        #: The attached fault injector, if any (set by
        #: :class:`~repro.sim.faults.FaultInjector`); ``None`` on the
        #: fault-free fast path, which every hook below checks first.
        self.fault_injector: Optional["Any"] = None
        #: The attached reconfiguration coordinator, if any (set by
        #: :class:`~repro.sim.reconfig.ReconfigManager`); ``None`` on the
        #: static-membership fast path.
        self.reconfig_manager: Optional["Any"] = None
        #: The current configuration epoch (bumped at every commit).
        self.epoch: int = 0
        #: ``(start time, share graph)`` per epoch, in order; drives the
        #: epoch-aware consistency check and the E17 analyses.
        self.epoch_history: List[Tuple[float, ShareGraph]] = [(0.0, share_graph)]
        #: Event traces of replicas that have left the configuration —
        #: their history stays part of the checked execution.
        self._retired_events: Dict[ReplicaId, Tuple[ReplicaEvent, ...]] = {}
        #: The attached :class:`~repro.obs.trace.TraceRecorder`, if any;
        #: ``None`` on the untraced fast path (one ``is not None`` check
        #: per hook — the overhead contract the E19 benchmark gates).
        self.tracer: Optional["Any"] = None

    @property
    def now(self) -> float:
        """Current host time (simulated units, or wall-clock seconds)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hooks for concrete deployments
    # ------------------------------------------------------------------
    def _replica_map(self) -> Mapping[ReplicaId, CausalReplica]:
        """Replica id → protocol instance (servers, in the client–server case)."""
        raise NotImplementedError

    def submit_operation(self, operation: "Any") -> Any:
        """Execute one client operation (a :class:`~repro.sim.workloads.Operation`).

        Every host implements this, which is what lets one workload —
        closed-loop replay, open-loop arrivals, or a live client stream —
        drive any deployment.
        """
        raise NotImplementedError

    def _after_delivery(self, replica: CausalReplica) -> None:
        """Architecture-specific work after a delivery (e.g. serving clients)."""

    def _quiescent_hook(self, replica: CausalReplica) -> bool:
        """Extra per-replica pass at quiescence; returns ``True`` on progress."""
        return False

    def _extra_happened_before(self) -> Optional[Sequence[Tuple[UpdateId, UpdateId]]]:
        """Additional ``↪`` edges for the checker (client sessions)."""
        return None

    # ------------------------------------------------------------------
    # Membership hooks (dynamic reconfiguration)
    # ------------------------------------------------------------------
    def _add_member(self, replica_id: ReplicaId, new_graph: ShareGraph,
                    epoch: int) -> CausalReplica:
        """Create the protocol instance for a joining replica (at commit)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support dynamic membership"
        )

    def _remove_member(self, replica_id: ReplicaId) -> None:
        """Retire a leaving replica, keeping its trace for the checker."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support dynamic membership"
        )

    def _migrate_members(self, new_graph: ShareGraph, epoch: int) -> None:
        """Migrate every surviving replica to the new configuration."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support dynamic membership"
        )

    def _retire_trace(self, replica_id: ReplicaId) -> None:
        """Capture a leaver's event trace before it is dropped."""
        replica = self._replica(replica_id)
        self._retired_events[replica_id] = tuple(replica.events)

    def is_member(self, replica_id: ReplicaId) -> bool:
        """``True`` while ``replica_id`` is part of the current configuration."""
        return replica_id in self._replica_map()

    def replica_down(self, replica_id: ReplicaId) -> bool:
        """``True`` while the fault injector holds ``replica_id`` crashed."""
        injector = self.fault_injector
        return injector is not None and injector.is_down(replica_id)

    def operation_rejected(self, replica_id: ReplicaId) -> bool:
        """Whether a client operation addressed to ``replica_id`` is rejected.

        Operations are rejected at non-members (left, or not yet joined),
        at crashed replicas, and at replicas inside a migration window or
        still receiving a state-transfer stream — the availability cost of
        faults and reconfiguration.  Under static membership (no
        reconfiguration manager) an unknown replica id stays a caller
        error: the subsequent lookup raises ``UnknownReplicaError``.
        """
        if replica_id not in self._replica_map():
            return self.reconfig_manager is not None
        if self.replica_down(replica_id):
            return True
        manager = self.reconfig_manager
        return manager is not None and manager.rejecting(replica_id)

    # ------------------------------------------------------------------
    # Bookkeeping helpers for subclasses
    # ------------------------------------------------------------------
    def _replica(self, replica_id: ReplicaId) -> CausalReplica:
        try:
            return self._replica_map()[replica_id]
        except KeyError:
            raise UnknownReplicaError(replica_id) from None

    def _record_operation(self, kind: str, at: Optional[float] = None) -> None:
        """Count one client operation; ``at`` overrides the recorded time.

        Callers that serve an operation after stepping the simulation (the
        client–server blocking path) pass the submission time so the
        offered-load timeline stays comparable across architectures.
        """
        if kind == "write":
            self.metrics.writes += 1
        elif kind == "read":
            self.metrics.reads += 1
        self.metrics.operation_times.append(
            (self.now if at is None else at, kind)
        )

    def _note_issue(self, update: Update) -> None:
        self._issue_times[update.uid] = self.now
        if self.tracer is not None:
            self.tracer.record("issue", update.uid, update.uid[0],
                               update.uid[0], self.now)

    def _apply_ready(self, replica: CausalReplica, force: bool = False) -> List[Update]:
        """Run a replica's apply loop and record the unified metrics."""
        applied = replica.apply_ready(sim_time=self.now, force=force)
        replayed = replica.bootstrap_replayed
        for update in applied:
            self.metrics.applies += 1
            self.metrics.apply_times.append(self.now)
            issued_at = self._issue_times.get(update.uid)
            # State-transfer replays measure the history's age, not
            # propagation: they are applies but not latency samples.
            if issued_at is not None and update.uid not in replayed:
                self.metrics.apply_latencies.append(self.now - issued_at)
        if self.tracer is not None:
            for update in applied:
                self.tracer.record("apply", update.uid, update.uid[0],
                                   replica.replica_id, self.now)
        if applied and self.fault_injector is not None:
            self.fault_injector.note_applies(replica.replica_id, applied, self.now)
        if applied and self.reconfig_manager is not None:
            self.reconfig_manager.note_applies(replica.replica_id, applied, self.now)
        pending = replica.pending_count()
        previous = self.metrics.max_pending.get(replica.replica_id, 0)
        self.metrics.max_pending[replica.replica_id] = max(previous, pending)
        return applied

    def _apply_batch(
        self, replica: CausalReplica, messages: Sequence[UpdateMessage]
    ) -> List[Update]:
        """Buffer and drain a whole delivered batch, recording the unified
        metrics.

        The batched twin of ``receive()``-per-message followed by
        :meth:`_apply_ready`: one
        :meth:`~repro.core.protocol.CausalReplica.apply_batch` call replaces
        the per-message receive churn, and the metric accounting below is
        literally the same block, so ``RunMetrics`` cannot tell the two
        delivery paths apart.
        """
        applied = replica.apply_batch(messages, sim_time=self.now)
        replayed = replica.bootstrap_replayed
        for update in applied:
            self.metrics.applies += 1
            self.metrics.apply_times.append(self.now)
            issued_at = self._issue_times.get(update.uid)
            if issued_at is not None and update.uid not in replayed:
                self.metrics.apply_latencies.append(self.now - issued_at)
        if self.tracer is not None:
            for update in applied:
                self.tracer.record("apply", update.uid, update.uid[0],
                                   replica.replica_id, self.now)
        if applied and self.fault_injector is not None:
            self.fault_injector.note_applies(replica.replica_id, applied, self.now)
        if applied and self.reconfig_manager is not None:
            self.reconfig_manager.note_applies(replica.replica_id, applied, self.now)
        pending = replica.pending_count()
        previous = self.metrics.max_pending.get(replica.replica_id, 0)
        self.metrics.max_pending[replica.replica_id] = max(previous, pending)
        return applied

    def sample_queue_depths(self) -> None:
        """Record one pending-buffer depth sample per replica."""
        for rid, replica in self._replica_map().items():
            self.metrics.queue_samples.append(
                QueueDepthSample(time=self.now, replica_id=rid,
                                 depth=replica.pending_count())
            )

    # ------------------------------------------------------------------
    # Shared introspection, checking and metrics
    # ------------------------------------------------------------------
    def events_by_replica(self) -> Dict[ReplicaId, Sequence[ReplicaEvent]]:
        """Each replica's local issue/apply/read trace.

        Replicas that left the configuration contribute the trace they had
        accumulated up to their removal: a leave does not erase history
        from the checked execution.
        """
        out = {rid: tuple(r.events) for rid, r in self._replica_map().items()}
        for rid, events in self._retired_events.items():
            out.setdefault(rid, events)
        return out

    def check_consistency(self, check_liveness: bool = True) -> ConsistencyReport:
        """Validate the execution so far against the paper's Definition 2/26.

        Under dynamic membership the checker receives the whole epoch
        history, so safety is judged against the configuration active when
        each event happened and liveness against the final configuration.
        """
        history = self.epoch_history if len(self.epoch_history) > 1 else None
        checker = ConsistencyChecker(self.share_graph, epoch_history=history)
        return checker.check(
            self.events_by_replica(),
            check_liveness=check_liveness,
            extra_happened_before=self._extra_happened_before(),
        )

    def pending_updates(self) -> int:
        """Updates buffered but not yet applied, summed over replicas."""
        return sum(r.pending_count() for r in self._replica_map().values())

    def metadata_sizes(self) -> Dict[ReplicaId, int]:
        """Current per-replica metadata size in counters."""
        return {rid: r.metadata_size() for rid, r in sorted(self._replica_map().items())}

    def values(self, register: Register) -> Dict[ReplicaId, Any]:
        """The current value of ``register`` at every replica storing it."""
        replicas = self._replica_map()
        return {
            rid: replicas[rid].store[register]
            for rid in self.share_graph.replicas_storing(register)
        }
