"""Hélary–Milani hoops and the paper's correction (Section 3.2, Appendix A).

Hélary and Milani [15, 28] characterised the metadata needed for causally
consistent partial replication in terms of *minimal x-hoops*:

* an **x-hoop** between two replicas ``ra, rb ∈ C(x)`` (the replicas storing
  ``x``) is a share-graph path ``ra = r_0, r_1, ..., r_k = rb`` whose
  internal vertices do not store ``x`` and whose consecutive pairs each share
  some register different from ``x`` (Definitions 9/17);
* the hoop is **minimal** (original Definition 10/18) if its edges can be
  labelled with pairwise distinct registers none of which is shared by both
  ``ra`` and ``rb``;
* the **modified** notion considered in Appendix A (Definition 20) instead
  requires that no chosen label is stored by more than two replicas of the
  hoop.

Their Lemma 11/19 claims a replica must transmit information about ``x`` iff
it stores ``x`` or belongs to a minimal x-hoop.  The paper shows this is not
accurate: on counterexample 1 (Figure 6/8a) the original definition demands
tracking that Theorem 8 proves unnecessary, and on counterexample 2
(Figure 8b) the modified definition waives tracking that Theorem 8 proves
necessary.  This module implements both notions so the discrepancy can be
recomputed mechanically (experiments E2/E3).

The hoop criterion is also runnable as a protocol: the
:class:`~repro.baselines.hoop_tracking.HoopTrackingReplica` baseline plugs
:func:`hoop_tracked_edges` into the edge-indexed timestamp machinery via
:meth:`~repro.core.timestamp_graph.TimestampGraph.from_edges`.  It therefore
rides the same indexed pending-buffer apply path as the paper's algorithm
(``blocking_key`` wake keys, not the seed implementation's full rescan of
the pending buffer after every apply) — the two baselines differ only in
which edge set they index.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .registers import Register, ReplicaId
from .share_graph import Edge, ShareGraph


@dataclass(frozen=True)
class Hoop:
    """An x-hoop: a path between two replicas storing ``x`` avoiding ``C(x)``.

    Attributes
    ----------
    register:
        The register ``x`` the hoop is about.
    path:
        The replica path ``(ra = r_0, ..., r_k = rb)``.
    """

    register: Register
    path: Tuple[ReplicaId, ...]

    @property
    def endpoints(self) -> Tuple[ReplicaId, ReplicaId]:
        """``(ra, rb)``."""
        return (self.path[0], self.path[-1])

    @property
    def internal(self) -> Tuple[ReplicaId, ...]:
        """The internal vertices ``r_1 .. r_{k-1}``."""
        return self.path[1:-1]

    @property
    def edges(self) -> Tuple[Tuple[ReplicaId, ReplicaId], ...]:
        """The consecutive pairs of the path."""
        return tuple(zip(self.path[:-1], self.path[1:]))

    def __len__(self) -> int:
        return len(self.path)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chain = " - ".join(str(r) for r in self.path)
        return f"{self.register}-hoop: {chain}"


# ----------------------------------------------------------------------
# Hoop enumeration
# ----------------------------------------------------------------------

def iter_hoops(
    graph: ShareGraph,
    register: Register,
    max_length: Optional[int] = None,
) -> Iterator[Hoop]:
    """Enumerate every x-hoop of the share graph for ``register``.

    Hoops are yielded once per unordered endpoint pair and path (the reversed
    path is not repeated).
    """
    owners = set(graph.replicas_storing(register))
    undirected = graph.to_networkx(directed=False)
    cutoff = max_length - 1 if max_length is not None else None
    for ra, rb in combinations(sorted(owners), 2):
        # Internal vertices must avoid every replica that stores the register.
        allowed = (set(graph.replica_ids) - owners) | {ra, rb}
        sub = undirected.subgraph(allowed)
        if ra not in sub or rb not in sub:
            continue
        for path in nx.all_simple_paths(sub, ra, rb, cutoff=cutoff):
            if len(path) < 2:
                continue
            if _is_hoop_path(graph, register, path):
                yield Hoop(register=register, path=tuple(path))


def _is_hoop_path(graph: ShareGraph, register: Register,
                  path: Sequence[ReplicaId]) -> bool:
    """Check conditions (i)–(ii) of the hoop definition for a candidate path."""
    owners = set(graph.replicas_storing(register))
    for internal in path[1:-1]:
        if internal in owners:
            return False
    for a, b in zip(path[:-1], path[1:]):
        labels = graph.shared_registers(a, b) - {register}
        if not labels:
            return False
    return True


# ----------------------------------------------------------------------
# Minimality (original and modified definitions)
# ----------------------------------------------------------------------

def _distinct_labelling_exists(
    edge_label_sets: Sequence[FrozenSet[Register]],
) -> bool:
    """Does a system of distinct representatives exist for the edge label sets?

    Solved as bipartite maximum matching between edges and registers.
    """
    if any(not labels for labels in edge_label_sets):
        return False
    bipartite = nx.Graph()
    edge_nodes = [("edge", idx) for idx in range(len(edge_label_sets))]
    for idx, labels in enumerate(edge_label_sets):
        for label in labels:
            bipartite.add_edge(("edge", idx), ("reg", label))
    matching = nx.bipartite.maximum_matching(bipartite, top_nodes=edge_nodes)
    matched_edges = sum(1 for node in matching if node[0] == "edge")
    return matched_edges == len(edge_label_sets)


def is_minimal_hoop(
    graph: ShareGraph,
    hoop: Hoop,
    modified: bool = False,
) -> bool:
    """Is the hoop minimal, under the original or the modified definition?

    Parameters
    ----------
    modified:
        ``False`` (default) applies the original Definition 10/18 — labels
        must be pairwise distinct and no label may be shared by both hoop
        endpoints.  ``True`` applies the Appendix-A modification
        (Definition 20) — labels must be pairwise distinct and no label may
        be stored by more than two replicas of the hoop.
    """
    ra, rb = hoop.endpoints
    x = hoop.register
    hoop_vertices = set(hoop.path)
    forbidden_shared = graph.registers_at(ra) & graph.registers_at(rb)

    label_sets: List[FrozenSet[Register]] = []
    for a, b in hoop.edges:
        candidates = set(graph.shared_registers(a, b)) - {x}
        if modified:
            candidates = {
                r
                for r in candidates
                if sum(1 for v in hoop_vertices if r in graph.registers_at(v)) <= 2
            }
        else:
            candidates -= forbidden_shared
        label_sets.append(frozenset(candidates))
    return _distinct_labelling_exists(label_sets)


def minimal_hoops(
    graph: ShareGraph,
    register: Register,
    modified: bool = False,
    max_length: Optional[int] = None,
) -> List[Hoop]:
    """All minimal x-hoops of the share graph for ``register``."""
    return [
        hoop
        for hoop in iter_hoops(graph, register, max_length=max_length)
        if is_minimal_hoop(graph, hoop, modified=modified)
    ]


# ----------------------------------------------------------------------
# The Hélary–Milani tracking requirement
# ----------------------------------------------------------------------

def must_transmit(
    graph: ShareGraph,
    replica_id: ReplicaId,
    register: Register,
    modified: bool = False,
) -> bool:
    """Hélary–Milani's Lemma 11/19 criterion for one replica and register.

    ``True`` iff the replica stores the register or belongs to some minimal
    x-hoop (under the chosen minimality definition).  The paper shows this
    criterion is not the right one; compare against
    :func:`repro.core.timestamp_graph.timestamp_edges`.
    """
    if graph.placement.stores_register(replica_id, register):
        return True
    for hoop in iter_hoops(graph, register):
        if replica_id in hoop.path and is_minimal_hoop(graph, hoop, modified=modified):
            return True
    return False


def hoop_tracked_registers(
    graph: ShareGraph,
    replica_id: ReplicaId,
    modified: bool = False,
) -> FrozenSet[Register]:
    """Every register the Hélary–Milani criterion asks ``replica_id`` to track."""
    return frozenset(
        register
        for register in graph.placement.registers
        if must_transmit(graph, replica_id, register, modified=modified)
    )


def hoop_tracked_edges(
    graph: ShareGraph,
    replica_id: ReplicaId,
    modified: bool = False,
) -> FrozenSet[Edge]:
    """Translate the Hélary–Milani criterion into a directed-edge set.

    If replica ``i`` must track register ``x`` (because it stores ``x`` or
    lies on a minimal x-hoop), the edge-level reading used throughout the
    paper's Section 3.2 discussion is that ``i`` must track updates on every
    share-graph edge ``e_jk`` whose label set contains ``x``.  This function
    returns that edge set so it can be compared head-to-head with the
    timestamp graph ``E_i`` of Definition 5 (experiments E2/E3).
    """
    tracked = hoop_tracked_registers(graph, replica_id, modified=modified)
    edges: Set[Edge] = set()
    for e in graph.edges:
        if graph.edge_registers(e) & tracked:
            edges.add(e)
    return frozenset(edges)


@dataclass(frozen=True)
class HoopComparison:
    """Head-to-head comparison of Theorem 8 against the Hélary–Milani criterion.

    Attributes
    ----------
    replica_id:
        The observer replica ``i``.
    theorem8_edges:
        The timestamp-graph edge set ``E_i`` (necessary and sufficient).
    hoop_edges:
        The edges the hoop criterion (original or modified) would track.
    only_hoop:
        Edges demanded by the hoop criterion but proven unnecessary by
        Theorem 8 (non-empty on counterexample 1 with the original
        definition).
    only_theorem8:
        Edges required by Theorem 8 but waived by the hoop criterion
        (non-empty on counterexample 2 with the modified definition —
        i.e. the modified criterion is unsafe).
    """

    replica_id: ReplicaId
    theorem8_edges: FrozenSet[Edge]
    hoop_edges: FrozenSet[Edge]

    @property
    def only_hoop(self) -> FrozenSet[Edge]:
        return self.hoop_edges - self.theorem8_edges

    @property
    def only_theorem8(self) -> FrozenSet[Edge]:
        return self.theorem8_edges - self.hoop_edges


def compare_with_theorem8(
    graph: ShareGraph,
    replica_id: ReplicaId,
    modified: bool = False,
) -> HoopComparison:
    """Build the comparison record for one replica (experiments E2/E3)."""
    from .timestamp_graph import timestamp_edges

    return HoopComparison(
        replica_id=replica_id,
        theorem8_edges=timestamp_edges(graph, replica_id),
        hoop_edges=hoop_tracked_edges(graph, replica_id, modified=modified),
    )
