"""Core machinery: the paper's primary contribution.

This subpackage contains the combinatorial objects (share graph,
``(i, e_jk)``-loops, timestamp graphs), the edge-indexed timestamp algorithm
of Section 3.3, the causality model and the execution checker, plus the
Hélary–Milani hoop machinery the paper corrects.
"""

from .causal import (
    CausalDependencyGraph,
    CausalPast,
    HappenedBefore,
    causal_past_of,
    dependency_graph_of,
)
from .consistency import (
    ConsistencyChecker,
    ConsistencyReport,
    LivenessViolation,
    SafetyViolation,
    check_execution,
)
from .errors import (
    ConfigurationError,
    ConsistencyViolationError,
    LivenessViolationError,
    ProtocolError,
    RegisterNotStoredError,
    ReproError,
    SimulationError,
    UnknownRegisterError,
    UnknownReplicaError,
)
from .hoops import (
    Hoop,
    HoopComparison,
    compare_with_theorem8,
    hoop_tracked_edges,
    hoop_tracked_registers,
    is_minimal_hoop,
    iter_hoops,
    minimal_hoops,
    must_transmit,
)
from .loops import Loop, find_loop, has_loop, iter_loops, loop_edges, loops_by_edge
from .protocol import (
    CausalReplica,
    EventKind,
    ReplicaEvent,
    Update,
    UpdateId,
    UpdateMessage,
)
from .registers import Register, RegisterPlacement, ReplicaId
from .replica import EdgeIndexedReplica
from .share_graph import Edge, ShareGraph, edge, reverse
from .timestamp_graph import (
    TimestampGraph,
    build_all_timestamp_graphs,
    metadata_summary,
    timestamp_edges,
)
from .timestamps import (
    EdgeTimestamp,
    VectorTimestamp,
    advance,
    delivery_predicate,
    merge,
)

__all__ = [
    "CausalDependencyGraph",
    "CausalPast",
    "CausalReplica",
    "ConfigurationError",
    "ConsistencyChecker",
    "ConsistencyReport",
    "ConsistencyViolationError",
    "Edge",
    "EdgeIndexedReplica",
    "EdgeTimestamp",
    "EventKind",
    "HappenedBefore",
    "Hoop",
    "HoopComparison",
    "LivenessViolation",
    "LivenessViolationError",
    "Loop",
    "ProtocolError",
    "Register",
    "RegisterNotStoredError",
    "RegisterPlacement",
    "ReplicaEvent",
    "ReplicaId",
    "ReproError",
    "SafetyViolation",
    "ShareGraph",
    "SimulationError",
    "TimestampGraph",
    "UnknownRegisterError",
    "UnknownReplicaError",
    "Update",
    "UpdateId",
    "UpdateMessage",
    "VectorTimestamp",
    "advance",
    "build_all_timestamp_graphs",
    "causal_past_of",
    "check_execution",
    "compare_with_theorem8",
    "delivery_predicate",
    "dependency_graph_of",
    "edge",
    "find_loop",
    "has_loop",
    "hoop_tracked_edges",
    "hoop_tracked_registers",
    "is_minimal_hoop",
    "iter_hoops",
    "iter_loops",
    "loop_edges",
    "loops_by_edge",
    "merge",
    "metadata_summary",
    "minimal_hoops",
    "must_transmit",
    "reverse",
    "timestamp_edges",
]
