"""Replica-centric causal consistency checking (Definition 2 of the paper).

The checker validates an execution *after the fact*, purely from the
replicas' issue/apply traces:

* **Safety** — whenever a replica ``i`` applied an update ``u1`` on a
  register it stores, every update ``u2 ↪ u1`` on a register stored at ``i``
  had already been applied at ``i`` at that moment.
* **Liveness** — at quiescence (all messages delivered, all pending buffers
  drained), every update issued on register ``x`` has been applied at every
  replica that stores ``x``.

The happened-before relation is recomputed independently of the protocol
under test (:mod:`repro.core.causal`), so the checker catches protocols whose
metadata is too weak — which is exactly what the necessity experiments (E4)
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .causal import HappenedBefore
from .errors import ConsistencyViolationError, LivenessViolationError
from .protocol import EventKind, ReplicaEvent, Update, UpdateId
from .registers import ReplicaId
from .share_graph import ShareGraph

# (Optional/Tuple are used in the checker's signature below.)


@dataclass(frozen=True)
class SafetyViolation:
    """One detected violation of the safety property.

    Replica ``replica_id`` applied ``applied`` while its causal predecessor
    ``missing`` (also on a register stored at the replica) had not been
    applied yet.
    """

    replica_id: ReplicaId
    applied: Update
    missing: Update
    position: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"replica {self.replica_id} applied {self.applied} at local position "
            f"{self.position} before its causal dependency {self.missing}"
        )


@dataclass(frozen=True)
class LivenessViolation:
    """One update that was never applied at a replica that stores its register."""

    replica_id: ReplicaId
    update: Update

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"update {self.update} was never applied at replica {self.replica_id} "
            f"although the replica stores register {self.update.register!r}"
        )


@dataclass
class ConsistencyReport:
    """The full verdict of the checker over one execution."""

    safety_violations: List[SafetyViolation] = field(default_factory=list)
    liveness_violations: List[LivenessViolation] = field(default_factory=list)
    checked_applications: int = 0
    checked_updates: int = 0

    @property
    def is_safe(self) -> bool:
        """``True`` iff no safety violation was found."""
        return not self.safety_violations

    @property
    def is_live(self) -> bool:
        """``True`` iff no liveness violation was found."""
        return not self.liveness_violations

    @property
    def is_causally_consistent(self) -> bool:
        """``True`` iff the execution satisfies Definition 2 end to end."""
        return self.is_safe and self.is_live

    def raise_on_violation(self) -> None:
        """Raise a descriptive exception if any violation was recorded."""
        if self.safety_violations:
            raise ConsistencyViolationError(
                f"{len(self.safety_violations)} safety violation(s); first: "
                f"{self.safety_violations[0]}",
                self.safety_violations,
            )
        if self.liveness_violations:
            raise LivenessViolationError(
                f"{len(self.liveness_violations)} liveness violation(s); first: "
                f"{self.liveness_violations[0]}",
                self.liveness_violations,
            )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"checked {self.checked_applications} applications of "
            f"{self.checked_updates} updates: "
            f"{len(self.safety_violations)} safety violation(s), "
            f"{len(self.liveness_violations)} liveness violation(s)"
        )


class ConsistencyChecker:
    """Validates executions against replica-centric causal consistency.

    Parameters
    ----------
    share_graph:
        The share graph of the system under test; used to know which
        registers each replica stores (safety is only required for registers
        in ``X_i``) and which replicas must eventually apply each update
        (liveness).
    """

    def __init__(self, share_graph: ShareGraph) -> None:
        self.share_graph = share_graph

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def check(
        self,
        events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
        check_liveness: bool = True,
        extra_happened_before: Optional[Sequence[Tuple[UpdateId, UpdateId]]] = None,
    ) -> ConsistencyReport:
        """Check a complete execution given each replica's local event trace.

        ``extra_happened_before`` adds direct ``↪`` edges beyond those implied
        by the replica traces.  The client–server architecture uses this to
        inject the dependencies a client propagates by accessing several
        replicas (condition (ii) of Definition 25's ``↪'``).
        """
        relation = HappenedBefore.from_events(events_by_replica)
        if extra_happened_before:
            for u1, u2 in extra_happened_before:
                if u1 != u2:
                    relation.direct_edges.add((u1, u2))
            relation._closure = None
        report = ConsistencyReport()
        report.checked_updates = len(relation.updates)

        for replica_id, events in events_by_replica.items():
            self._check_replica_safety(replica_id, events, relation, report)

        if check_liveness:
            self._check_liveness(events_by_replica, relation, report)
        return report

    # ------------------------------------------------------------------
    # Safety
    # ------------------------------------------------------------------
    def _check_replica_safety(
        self,
        replica_id: ReplicaId,
        events: Sequence[ReplicaEvent],
        relation: HappenedBefore,
        report: ConsistencyReport,
    ) -> None:
        stored = self.share_graph.registers_at(replica_id)
        applied_so_far: set = set()
        for position, event in enumerate(events):
            if event.kind not in (EventKind.ISSUE, EventKind.APPLY):
                continue
            update = event.update
            if update is None:
                continue
            report.checked_applications += 1
            # Safety only constrains applications of updates to registers the
            # replica stores; metadata-only applications (dummy registers) are
            # exempt from the "u1 for register x in X_i" premise but still
            # extend the applied set used for later checks.
            if update.register in stored:
                for missing_uid in relation.predecessors(update.uid):
                    missing = relation.updates[missing_uid]
                    if missing.register not in stored:
                        continue
                    if missing_uid not in applied_so_far:
                        report.safety_violations.append(
                            SafetyViolation(
                                replica_id=replica_id,
                                applied=update,
                                missing=missing,
                                position=position,
                            )
                        )
            applied_so_far.add(update.uid)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def _check_liveness(
        self,
        events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
        relation: HappenedBefore,
        report: ConsistencyReport,
    ) -> None:
        applied_at: Dict[ReplicaId, set] = {}
        for replica_id, events in events_by_replica.items():
            applied_at[replica_id] = {
                e.update.uid
                for e in events
                if e.kind in (EventKind.ISSUE, EventKind.APPLY) and e.update is not None
            }
        for update in relation.all_updates():
            try:
                owners = self.share_graph.replicas_storing(update.register)
            except Exception:
                # Registers unknown to the share graph (e.g. virtual registers
                # introduced by optimizations) impose no liveness obligation.
                continue
            for replica_id in owners:
                if replica_id not in events_by_replica:
                    continue
                if update.uid not in applied_at.get(replica_id, set()):
                    report.liveness_violations.append(
                        LivenessViolation(replica_id=replica_id, update=update)
                    )


def check_execution(
    share_graph: ShareGraph,
    events_by_replica: Mapping[ReplicaId, Sequence[ReplicaEvent]],
    check_liveness: bool = True,
) -> ConsistencyReport:
    """Convenience wrapper: build a checker and validate one execution."""
    return ConsistencyChecker(share_graph).check(
        events_by_replica, check_liveness=check_liveness
    )
